"""Parallel batch execution and design-space exploration for the flow.

The ROADMAP north-star is throughput across many designs and scenarios;
the map-reduce shape of parallel controller synthesis (Alimguzhin et
al.) fits the COOL flow directly because every (graph, architecture,
partitioner, options) job is independent:

* :class:`FlowJob` -- one fully-specified flow invocation, given either
  a built :class:`~repro.graph.taskgraph.TaskGraph` or a compact
  :class:`~repro.workloads.WorkloadSpec` built in-worker;
* :class:`BatchRunner` -- streams a job list across
  :mod:`concurrent.futures` workers (threads by default, processes,
  sharded worker processes or strictly serial on request): jobs are
  submitted individually and consumed ``as_completed``, outcomes are
  reassembled into input order, an optional ``progress`` callback
  observes each completion as it happens, and a per-job ``job_timeout``
  turns stragglers into failed outcomes instead of stalling the sweep.
  Failures are isolated per job, so one bad design can never sink a
  sweep; for the process-boundary backends, *pickling* problems are
  caught at submission time by :func:`payload_check` with an error
  naming the offending job field instead of a mid-sweep ``TypeError``
  from the pool;
* :class:`DesignSpaceExplorer` -- sweeps designs x architectures x
  partitioners x deadlines and ranks the implementations on the classic
  co-design Pareto axes: makespan, CLB area, communication memory words.

Jobs deep-copy their partitioner before running so stateful engines
(e.g. the genetic algorithm's RNG) start identically whether the batch
runs serially or on four workers -- batch results are reproducible by
construction.  A :class:`~repro.flow.pipeline.StageCache` passed to the
runner is shared by every job of the sweep (thread/serial backends), so
jobs that revisit a (graph, architecture) pair -- deadline sweeps,
repeated suites -- reuse each other's stage results.

Choosing a backend
------------------
Every backend emits one ``repro.obs`` span per job when a tracer is
active (:func:`repro.obs.activate`), so backend choice never costs
visibility -- only the span *fidelity* differs, as noted per backend.
``"serial"``
    Fastest for sub-second jobs (no pool overhead) and the reference
    semantics every other backend must reproduce bit-identically.
    Per-job spans nest fully: each job span contains its flow, stage
    and store spans.
``"thread"``
    Buys *orchestration*, not speed: per-job failure isolation,
    streaming progress and ``job_timeout`` on a shared address space
    (one shared ``stage_cache`` serves every job).  The flow is pure
    Python, so threads serialize on the GIL -- a thread sweep measures
    at or below serial throughput (``BENCH_workload_sweep.json``).
    Per-job spans are recorded at completion time from the outcome's
    measured duration (worker threads run outside the sweep tracer).
``"process"``
    True parallelism, paid for per *job*: every job payload is pickled
    in and every (large, ~75 KB) ``FlowResult`` is pickled back, so it
    only wins when per-job compute (minute-scale MILP solves) dwarfs
    the result-pickling cost.  Payloads must pass :func:`payload_check`.
    Per-job spans are completion-time records, like ``"thread"``.
``"shard"``
    True parallelism for *sweeps*: jobs are reduced to compact payloads
    (ideally a :class:`~repro.workloads.WorkloadSpec` built in-worker),
    partitioned into deterministic shards by content fingerprint, run
    against a per-worker-process stage cache initialized once, and
    returned as compact :class:`DesignPoint` summaries -- no fat
    artifact pickling on the hot path.  Results are bit-identical to
    ``"serial"`` (see :mod:`repro.flow.shard`); wall-clock speedup
    scales with cores (``BENCH_shard_sweep.json``).  Use ``shards=`` to
    control the partition count.  The trade: outcomes carry summaries,
    not ``FlowResult`` artifacts -- rank and reduce, don't introspect.
    Per-job (and nested stage/store) spans are recorded *inside* the
    worker processes, shipped back compactly in ``ShardOutcome.spans``
    and re-parented into the coordinator's trace under per-shard spans.
"""

from __future__ import annotations

import copy
import os
import pickle
import time
import warnings
from concurrent.futures import (FIRST_COMPLETED, CancelledError, Future,
                                ProcessPoolExecutor, ThreadPoolExecutor,
                                wait)
from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Iterable, Mapping, Sequence

from ..graph.taskgraph import TaskGraph
from ..obs import record as obs_record
from ..obs import span as obs_span
from ..partition.base import Partitioner
from ..platform.architecture import TargetArchitecture
from ..store import ArtifactStore, PersistentCache, TieredCache
from ..workloads.generators import WorkloadSpec
from .cool import CoolFlow, FlowResult
from .pipeline import CacheTier, StageCache

__all__ = ["FlowJob", "JobOutcome", "BatchRunner", "DesignPoint",
           "ExplorationResult", "DesignSpaceExplorer",
           "JOB_TIMEOUT_SEMANTICS", "payload_check", "design_point_of"]

#: Signature of the streaming progress hook:
#: ``callback(outcome, done_count, total)``, invoked in completion order.
ProgressCallback = Callable[["JobOutcome", int, int], None]


class _ProgressGuard:
    """Isolate ``progress`` callback failures from the sweep itself.

    A progress hook is an *observer*: a bug in it must not abort a sweep
    whose jobs all succeeded.  Every backend routes its callback through
    this wrapper, which swallows callback exceptions, warns on the first
    failure only, and keeps invoking the callback for later completions
    (a hook may choke on one outcome yet handle the rest fine).
    """

    __slots__ = ("_callback", "_warned")

    def __init__(self, callback: ProgressCallback) -> None:
        self._callback = callback
        self._warned = False

    def __call__(self, outcome: "JobOutcome", done: int, total: int) -> None:
        try:
            self._callback(outcome, done, total)
        except Exception as exc:
            if not self._warned:
                self._warned = True
                warnings.warn(
                    f"progress callback raised {type(exc).__name__}: {exc} "
                    f"-- the sweep continues; further callback errors are "
                    f"suppressed silently", RuntimeWarning, stacklevel=2)

#: Per-backend semantics of ``BatchRunner(job_timeout=...)`` -- the one
#: authoritative record; docstrings, the shard layer and the tests all
#: defer to this table.  Pure-Python jobs cannot be preempted, so no
#: backend ever interrupts a running job: "fails" means the sweep
#: reports a failed :class:`JobOutcome` and moves on.
JOB_TIMEOUT_SEMANTICS: Mapping[str, str] = {
    "serial": "ignored: the single in-process job cannot be preempted,"
              " so there is nothing the budget could buy",
    "thread": "per job, measured from the moment the job starts"
              " executing; an expired job fails but its worker thread"
              " runs on until the job body really returns",
    "process": "per job, measured from the moment the job starts"
               " executing; an expired job fails while its worker"
               " process runs on, and once every worker is held by an"
               " expired job the queued jobs fail as starved -- the"
               " sweep always finishes in bounded time",
    "shard": "per job, checked when the job returns: an over-budget job"
             " is reported failed and its result discarded, then the"
             " shard continues with its next job (a job that never"
             " returns stalls its shard -- pair with small shards)",
}


@dataclass(frozen=True)
class FlowJob:
    """One flow invocation: design, target, engine and options.

    The design is given either as a built ``graph`` or as a compact
    ``workload`` spec (exactly one of the two); a spec-based job builds
    its graph inside the worker, which is what keeps shard/process
    payloads small -- a :class:`~repro.workloads.WorkloadSpec` pickles
    at ~200 bytes where its built graph costs kilobytes.
    """

    graph: TaskGraph | None = None
    arch: TargetArchitecture | None = None
    partitioner: Partitioner | None = None
    deadline: int | None = None
    stimuli: Mapping[str, list[int]] | None = None
    reuse_memory: bool = True
    allow_direct_comm: bool = True
    label: str = ""
    workload: WorkloadSpec | None = None

    def __post_init__(self) -> None:
        if self.arch is None:
            raise ValueError("FlowJob needs an architecture (arch=)")
        if (self.graph is None) == (self.workload is None):
            raise ValueError(
                "FlowJob needs exactly one design source: either a built "
                "graph= or a workload= spec built in-worker")

    @property
    def design_name(self) -> str:
        """The design's display name without forcing a spec build."""
        return self.graph.name if self.graph is not None \
            else self.workload.label

    @property
    def name(self) -> str:
        """Display name: the label, or design@arch."""
        if self.label:
            return self.label
        # derive the default label from the flow's actual default engine
        # so the displayed algorithm can never drift from behaviour
        algo = self.partitioner.name if self.partitioner is not None \
            else CoolFlow.default_partitioner().name
        return f"{self.design_name}@{self.arch.name}/{algo}"


@dataclass
class JobOutcome:
    """Result (or failure) of one batch job.

    ``result`` carries the full :class:`~repro.flow.cool.FlowResult` on
    the in-process backends; the shard backend ships only the compact
    ``point`` summary back from its workers (``result`` stays ``None``
    even for successful jobs -- check ``ok``, not ``result``).
    """

    job: FlowJob
    result: FlowResult | None = None
    error: str | None = None
    seconds: float = 0.0
    point: "DesignPoint | None" = None

    @property
    def ok(self) -> bool:
        return self.error is None


#: Job fields shipped across a process boundary, in validation order.
_PAYLOAD_FIELDS = ("graph", "workload", "arch", "partitioner", "deadline",
                   "stimuli")


def payload_check(job: FlowJob) -> str | None:
    """Submission-time pickling validation for process-boundary backends.

    Returns ``None`` for a shippable job, otherwise an actionable error
    naming the offending field.  The process and shard backends run this
    *before* submitting, so an un-picklable job fails fast as its own
    outcome instead of surfacing as a mid-sweep ``TypeError`` from the
    pool -- and the message says which field to fix rather than where
    the pool happened to choke.
    """
    for name in _PAYLOAD_FIELDS:
        value = getattr(job, name)
        try:
            pickle.dumps(value)
        except Exception as exc:
            return (f"unpicklable job payload: field {name!r} "
                    f"({type(value).__name__}) cannot cross the process "
                    f"boundary -- {type(exc).__name__}: {exc}. Use a "
                    f"picklable {name} (for designs, submit a compact "
                    f"workload= spec and let the worker build it).")
    return None


def _materialize_graph(job: FlowJob) -> TaskGraph:
    """The job's task graph, building a spec-based design in-worker."""
    return job.graph if job.graph is not None else job.workload.build()


def _normalize_store(store: "str | os.PathLike | ArtifactStore | "
                            "PersistentCache | None",
                     ) -> tuple[PersistentCache | None, str | None]:
    """``(persistent_cache, store_root_path)`` from any store spec.

    The cache handle serves the in-process backends directly; the root
    path is what crosses the process boundary for the pooled backends.
    """
    if store is None:
        return None, None
    if isinstance(store, PersistentCache):
        return store, os.fspath(store.store.root)
    if isinstance(store, ArtifactStore):
        return PersistentCache(store), os.fspath(store.root)
    if not isinstance(store, (str, os.PathLike)):
        raise TypeError(f"store must be a path, ArtifactStore or "
                        f"PersistentCache, got {type(store).__name__}")
    return PersistentCache(ArtifactStore(store)), os.fspath(store)


def _run_job(job: FlowJob, stage_cache: CacheTier | None) -> FlowResult:
    """Execute one job in a fresh flow (module-level for process pools)."""
    partitioner = copy.deepcopy(job.partitioner) \
        if job.partitioner is not None else None
    flow = CoolFlow(job.arch, partitioner=partitioner,
                    reuse_memory=job.reuse_memory,
                    allow_direct_comm=job.allow_direct_comm,
                    stage_cache=stage_cache)
    return flow.run(_materialize_graph(job), stimuli=job.stimuli,
                    deadline=job.deadline)


#: Per-process memo of the tiers built by :func:`_store_tier`: one tier
#: per store root, so every job a process-pool worker executes shares
#: one L1 over the store instead of rebuilding handles per job.
_STORE_TIERS: dict[str, TieredCache] = {}


def _store_tier(store_path: str) -> TieredCache:
    """The worker-local cache tier over a shared on-disk store.

    The process backend cannot ship a live cache across its boundary,
    so it ships the store *root path* instead and each worker process
    lazily builds (and memoizes) its own L1-over-L2 tier on first use.
    """
    tier = _STORE_TIERS.get(store_path)
    if tier is None:
        tier = TieredCache(StageCache(),
                           PersistentCache(ArtifactStore(store_path)))
        _STORE_TIERS[store_path] = tier
    return tier


def _run_outcome(job: FlowJob,
                 stage_cache: CacheTier | None = None,
                 store_path: str | None = None) -> JobOutcome:
    started = time.perf_counter()
    if stage_cache is None and store_path is not None:
        stage_cache = _store_tier(store_path)
    try:
        result = _run_job(job, stage_cache)
    except Exception as exc:  # isolate failures per job
        return JobOutcome(job, error=f"{type(exc).__name__}: {exc}",
                          seconds=time.perf_counter() - started)
    return JobOutcome(job, result=result,
                      seconds=time.perf_counter() - started)


class BatchRunner:
    """Run many flow jobs, optionally in parallel, streaming completions.

    Parameters
    ----------
    max_workers:
        Worker count for the pool backends; ``None`` lets
        :mod:`concurrent.futures` pick.
    backend:
        ``"thread"`` (default), ``"process"`` (payloads must pass
        :func:`payload_check`), ``"shard"`` (map-reduce over worker
        processes, see :mod:`repro.flow.shard`) or ``"serial"``.
    stage_cache:
        Optional :class:`~repro.flow.pipeline.StageCache` shared by every
        job of the batch (it is lock-protected).  Sweeps that revisit a
        (graph, architecture) pair -- several deadlines over one design,
        a suite run twice -- are then served stage results across jobs
        instead of recomputing them.  Ignored by the ``"process"`` and
        ``"shard"`` backends: their workers live in separate address
        spaces (the shard backend keeps one cache per worker process
        instead, initialized once and reused across its shards).
    store:
        Optional persistent artifact store (a path, an
        :class:`~repro.store.ArtifactStore` or a
        :class:`~repro.store.PersistentCache`) attached as the L2 tier
        under the stage cache -- on *every* backend.  Serial and thread
        sweeps run against a :class:`~repro.store.TieredCache` wrapping
        ``stage_cache`` (or a fresh L1); the process and shard backends
        ship the store root to their workers, which build their own L1
        over the shared disk.  Cached stage results then survive the
        process: a later sweep -- any backend, any worker count --
        warm-starts from the store with bit-identical results.
    job_timeout:
        Optional per-job budget in seconds; the per-backend semantics
        are recorded once in :data:`JOB_TIMEOUT_SEMANTICS`.  In short:
        pool backends start the clock when the job starts executing and
        report expiry as a failed :class:`JobOutcome` without preempting
        the worker; the shard backend checks the budget when each job
        returns; the serial backend ignores it.
    shards:
        Shard count for the ``"shard"`` backend (defaults to
        ``max_workers``, falling back to the CPU count).  Setting it
        with the default backend selects ``"shard"`` implicitly, so
        ``BatchRunner(shards=4)`` is the one-knob parallel sweep.

    Note on speed: the flow is pure Python, so threads serialize on the
    GIL, and a naive process pool must pickle every (large)
    ``FlowResult`` back -- for the bundled (sub-second) jobs both
    measure at or below ``"serial"`` throughput (see
    ``BENCH_flow_pipeline.json``).  Real multi-core speedup comes from
    the ``"shard"`` backend, which ships compact payloads in and
    summaries out (``BENCH_shard_sweep.json``); reach for plain
    ``"process"`` only when per-job compute (e.g. minute-scale MILP
    solves) dwarfs the result-pickling cost and the full ``FlowResult``
    is needed.  For repeated sweeps over unchanged designs a shared
    ``stage_cache`` on the ``"serial"``/``"thread"`` backends buys far
    more than worker parallelism: unchanged (graph, arch) pairs
    collapse to dictionary lookups (see ``BENCH_workload_sweep.json``).
    """

    def __init__(self, max_workers: int | None = None,
                 backend: str = "thread",
                 stage_cache: StageCache | None = None,
                 job_timeout: float | None = None,
                 shards: int | None = None,
                 store: "str | os.PathLike | ArtifactStore | "
                        "PersistentCache | None" = None) -> None:
        if shards is not None and backend == "thread":
            backend = "shard"  # the one-knob spelling: BatchRunner(shards=4)
        if backend not in ("thread", "process", "serial", "shard"):
            raise ValueError(f"unknown batch backend {backend!r}")
        if shards is not None and backend != "shard":
            raise ValueError(f"shards= only applies to the shard backend, "
                             f"not {backend!r}")
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError(f"job_timeout must be positive, got "
                             f"{job_timeout}")
        self.max_workers = max_workers
        self.backend = backend
        l2, self.store_path = _normalize_store(store)
        self.stage_cache: CacheTier | None = stage_cache
        if l2 is not None and backend in ("serial", "thread"):
            # in-process backends tier immediately; the process/shard
            # backends ship store_path and tier inside their workers
            self.stage_cache = TieredCache(
                stage_cache if stage_cache is not None else StageCache(), l2)
        self.job_timeout = job_timeout
        self.shards = shards
        #: Map-reduce evidence of the most recent ``"shard"`` run
        #: (:class:`repro.flow.shard.ShardSweepStats`): per-shard
        #: timings, worker pids and merged cache statistics.
        self.shard_stats = None

    # ------------------------------------------------------------------
    def run(self, jobs: Iterable[FlowJob],
            progress: ProgressCallback | None = None) -> list[JobOutcome]:
        """Execute all jobs; outcomes come back in input order.

        ``progress`` is invoked once per job *in completion order* as
        ``progress(outcome, done_count, total)`` -- the streaming view
        of the sweep -- while the returned list is reassembled into
        input order.
        """
        jobs = list(jobs)
        total = len(jobs)
        if progress is not None and not isinstance(progress, _ProgressGuard):
            progress = _ProgressGuard(progress)
        # only the serial backend runs in-process: the pool backends
        # keep their semantics (timeout, pickling isolation, no shared
        # cache across processes) even for single-job or single-worker
        # batches
        if self.backend == "serial" or total == 0:
            outcomes = []
            for done, job in enumerate(jobs, start=1):
                with obs_span("job", kind="job", job=job.name,
                              backend="serial") as job_span:
                    outcome = _run_outcome(job, self.stage_cache)
                    job_span.set("ok", outcome.ok)
                outcomes.append(outcome)
                if progress is not None:
                    progress(outcome, done, total)
            return outcomes
        if self.backend == "shard":
            return self._run_sharded(jobs, progress)
        return self._run_pooled(jobs, progress)

    def _run_sharded(self, jobs: list[FlowJob],
                     progress: ProgressCallback | None) -> list[JobOutcome]:
        # deferred import: shard builds on this module's job/outcome types
        from .shard import sharded_sweep
        outcomes, self.shard_stats = sharded_sweep(
            jobs, shards=self.shards, max_workers=self.max_workers,
            job_timeout=self.job_timeout, progress=progress,
            store_path=self.store_path)
        return outcomes

    #: How often the timeout loop re-checks for queued jobs entering
    #: execution (their budget clock starts only then).
    _TIMEOUT_POLL_S = 0.05

    def _run_pooled(self, jobs: list[FlowJob],
                    progress: ProgressCallback | None) -> list[JobOutcome]:
        pool_cls = ThreadPoolExecutor if self.backend == "thread" \
            else ProcessPoolExecutor
        # the process backend cannot share a live cache, but it can
        # share the store: workers rebuild their own tier from the root
        cache = self.stage_cache if self.backend != "process" else None
        store_path = self.store_path if self.backend == "process" else None
        outcomes: list[JobOutcome | None] = [None] * len(jobs)
        done_count = 0
        abandoned = False
        # submission-time payload validation (process boundary only):
        # an un-shippable job becomes its own failed outcome *now*, with
        # the offending field named, and is never handed to the pool
        rejected: list[int] = []
        if self.backend == "process":
            for index, job in enumerate(jobs):
                error = payload_check(job)
                if error is not None:
                    outcomes[index] = JobOutcome(job, error=error)
                    rejected.append(index)
        pool = pool_cls(max_workers=self.max_workers)
        try:
            for index in rejected:
                done_count += 1
                obs_record("job", kind="job", duration=0.0,
                           job=outcomes[index].job.name,
                           backend=self.backend, ok=False, rejected=True)
                if progress is not None:
                    progress(outcomes[index], done_count, len(jobs))
            index_of: dict[Future, int] = {}
            for index, job in enumerate(jobs):
                if outcomes[index] is None:
                    index_of[pool.submit(_run_outcome, job, cache,
                                         store_path)] = index
            pending = set(index_of)
            started_at: dict[Future, float] = {}
            stuck: set[Future] = set()    # timed out but still on a worker
            starved: set[Future] = set()  # queued, clock started anyway

            def emit(future: Future, outcome: JobOutcome) -> None:
                nonlocal done_count
                outcomes[index_of[future]] = outcome
                done_count += 1
                # pool workers run outside this thread's tracer, so the
                # per-job span is recorded at completion time from the
                # outcome's own measured duration
                obs_record("job", kind="job", duration=outcome.seconds,
                           job=outcome.job.name, backend=self.backend,
                           ok=outcome.ok)
                if progress is not None:
                    progress(outcome, done_count, len(jobs))

            while pending:
                now = time.perf_counter()
                if self.job_timeout is None:
                    timeout = None
                else:
                    # the budget clock of a job starts when its future
                    # enters execution; queued jobs normally accrue none
                    # (a job that waited gets its full budget on start)
                    for future in pending:
                        if future.running() and (future not in started_at
                                                 or future in starved):
                            started_at[future] = now
                            starved.discard(future)
                    # a timed-out job cannot be preempted: its worker
                    # frees up only when the job really returns.  Once
                    # *every* worker is held by such a job, queued jobs
                    # start accruing budget too -- otherwise a straggler
                    # that never returns would stall the sweep forever.
                    stuck = {f for f in stuck if not f.done()}
                    if len(stuck) >= pool._max_workers:
                        for future in pending:
                            if future not in started_at:
                                started_at[future] = now
                                starved.add(future)
                    elif starved:
                        # the pool recovered (a timed-out job finally
                        # returned): queued jobs stop accruing budget
                        for future in starved:
                            started_at.pop(future, None)
                        starved.clear()
                    expired = [f for f in pending
                               if f in started_at and now - started_at[f]
                               >= self.job_timeout]
                    for future in expired:
                        pending.discard(future)
                        if future.done():
                            emit(future,
                                 self._outcome_of(future,
                                                  jobs[index_of[future]]))
                            continue
                        if not future.cancel():
                            stuck.add(future)
                            abandoned = True
                        if future in starved:
                            error = (f"TimeoutError: no worker became "
                                     f"available within {self.job_timeout}s "
                                     f"(pool saturated by timed-out jobs)")
                        else:
                            error = (f"TimeoutError: job exceeded "
                                     f"{self.job_timeout}s budget")
                        emit(future, JobOutcome(
                            jobs[index_of[future]], error=error,
                            seconds=now - started_at[future]))
                    if not pending:
                        break
                    deadlines = [started_at[f] + self.job_timeout - now
                                 for f in pending if f in started_at]
                    if any(f not in started_at for f in pending) or stuck:
                        deadlines.append(self._TIMEOUT_POLL_S)
                    timeout = max(min(deadlines), 0.0)
                done, pending = wait(pending, timeout=timeout,
                                     return_when=FIRST_COMPLETED)
                for future in done:
                    emit(future, self._outcome_of(future,
                                                  jobs[index_of[future]]))
        finally:
            # abandoned workers may still be executing a timed-out job;
            # don't block the sweep on them
            pool.shutdown(wait=not abandoned, cancel_futures=True)
        completed = [o for o in outcomes if o is not None]
        assert len(completed) == len(outcomes), \
            "every job must have an outcome"
        return completed

    @staticmethod
    def _outcome_of(future: Future, job: FlowJob) -> JobOutcome:
        """Convert a finished future into an outcome.

        ``future.result()`` can raise even though ``_run_outcome`` never
        does: the process backend pickles the job on submission and the
        outcome on return, and either step can fail *outside* the job
        body (unpicklable partitioner, graph or ``FlowResult``), or the
        pool itself can break.  Those failures belong to this job alone.
        """
        try:
            return future.result()
        except CancelledError:
            return JobOutcome(job, error="CancelledError: job cancelled")
        except Exception as exc:
            return JobOutcome(job, error=f"{type(exc).__name__}: {exc}")


# ----------------------------------------------------------------------
# design-space exploration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DesignPoint:
    """One implementation in the explored space, reduced to its metrics."""

    label: str
    algorithm: str
    arch: str
    deadline: int | None
    makespan: int
    total_clbs: int
    memory_words: int
    hw_nodes: int
    sw_nodes: int
    feasible: bool
    area_repairs: int = 0
    #: Name of the task graph this point implements (multi-graph sweeps
    #: compare points only within one graph).
    graph: str = ""

    @property
    def metrics(self) -> tuple[int, int, int]:
        """The minimized objective vector (makespan, CLBs, memory)."""
        return (self.makespan, self.total_clbs, self.memory_words)

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance: no worse on every axis, better on one."""
        return (all(a <= b for a, b in zip(self.metrics, other.metrics))
                and self.metrics != other.metrics)


@dataclass
class ExplorationResult:
    """Outcome of one design-space sweep."""

    points: list[DesignPoint] = field(default_factory=list)
    failures: list[JobOutcome] = field(default_factory=list)
    outcomes: list[JobOutcome] = field(default_factory=list)

    def feasible_points(self) -> list[DesignPoint]:
        """Implementations that meet all their constraints."""
        return [p for p in self.points if p.feasible]

    def by_graph(self) -> dict[str, list[DesignPoint]]:
        """Points grouped by the task graph they implement."""
        groups: dict[str, list[DesignPoint]] = {}
        for point in self.points:
            groups.setdefault(point.graph, []).append(point)
        return groups

    def pareto(self) -> list[DesignPoint]:
        """The non-dominated *feasible* implementations.

        An implementation that violates its own constraints (deadline,
        area, memory) is not a design anyone can pick, however good its
        metrics look, so infeasible points never enter the front.  In a
        multi-graph sweep dominance is judged per graph: implementations
        of different designs are not alternatives to one another.
        """
        feasible_of = {graph: [p for p in points if p.feasible]
                       for graph, points in self.by_graph().items()}
        return [p for p in self.feasible_points()
                if not any(q.dominates(p) for q in feasible_of[p.graph])]

    def ranked(self, front: set[DesignPoint] | None = None
               ) -> list[DesignPoint]:
        """All points: feasible before infeasible, Pareto front first,
        each tier by normalized score.

        Scores are normalized against the worst *feasible* point of the
        same graph (falling back to all of its points only when none is
        feasible): an arbitrarily bad infeasible outlier would otherwise
        flatten every score that orders the feasible tier.
        """
        if front is None:
            front = set(self.pareto())
        worst_of: dict[str, list[int]] = {}
        for graph, points in self.by_graph().items():
            pool = [p for p in points if p.feasible] or points
            worst_of[graph] = [max(p.metrics[axis] for p in pool)
                               for axis in range(3)]

        def score(point: DesignPoint) -> float:
            worst = worst_of[point.graph]
            return sum(point.metrics[axis] / worst[axis]
                       for axis in range(3) if worst[axis])

        return sorted(self.points,
                      key=lambda p: (not p.feasible, p not in front,
                                     score(p), p.label))

    def table(self) -> str:
        """Ranked text table (Pareto points ``*``, infeasible ``!``)."""
        front = set(self.pareto())
        ranked = self.ranked(front)
        header = (f"{'':2} {'label':<28} {'algorithm':<14} {'deadline':>8} "
                  f"{'makespan':>8} {'CLBs':>6} {'mem[w]':>7} {'hw/sw':>6}")
        lines = [header, "-" * len(header)]
        for point in ranked:
            mark = "*" if point in front else \
                ("!" if not point.feasible else " ")
            deadline = point.deadline if point.deadline is not None else "-"
            lines.append(
                f"{mark:2} {point.label:<28} {point.algorithm:<14} "
                f"{deadline!s:>8} {point.makespan:>8} {point.total_clbs:>6} "
                f"{point.memory_words:>7} "
                f"{point.hw_nodes}/{point.sw_nodes:<4}")
        for failure in self.failures:
            lines.append(f"!  {failure.job.name:<28} failed: {failure.error}")
        return "\n".join(lines)


def design_point_of(result: FlowResult, label: str,
                    deadline: int | None) -> DesignPoint:
    """Reduce a full flow result to its compact metrics summary.

    This is the projection the explorer ranks on -- and the *only*
    thing a shard worker ships back, so it must stay cheap to pickle.
    """
    summary = result.partition_result.summary()
    return DesignPoint(
        label=label,
        algorithm=summary["algorithm"],
        arch=result.arch.name,
        deadline=deadline,
        makespan=result.makespan,
        total_clbs=sum(result.clbs_per_fpga.values()),
        memory_words=result.plan.memory_map.words_used,
        hw_nodes=summary["hw_nodes"],
        sw_nodes=summary["sw_nodes"],
        feasible=result.partition_result.feasibility.feasible,
        area_repairs=result.partition_result.stats.get("area_repairs", 0),
        graph=result.graph.name,
    )


def _point_from(outcome: JobOutcome) -> DesignPoint:
    if outcome.point is not None:  # compact summary from a shard worker
        return outcome.point
    assert outcome.result is not None
    return design_point_of(outcome.result, outcome.job.name,
                           outcome.job.deadline)


class DesignSpaceExplorer:
    """Sweep designs x architectures x partitioners x deadlines.

    ``graphs`` may be a single :class:`~repro.graph.taskgraph.TaskGraph`
    (the classic one-design exploration) or a sequence of designs -- in
    which case the cross-product additionally fans over the designs and
    every label is prefixed with the design name.  Each entry is either
    a built graph or a compact :class:`~repro.workloads.WorkloadSpec`
    (e.g. straight from :func:`~repro.workloads.workload_suite`); spec
    entries are built inside the worker, which is what the shard
    backend's compact-payload contract wants.  ``explore()`` drives the
    jobs through a :class:`BatchRunner` and reduces every successful
    implementation to a :class:`DesignPoint`; the
    :class:`ExplorationResult` ranks them and computes the per-graph
    Pareto front over (makespan, CLB area, memory words).
    """

    def __init__(self, graphs: TaskGraph | WorkloadSpec |
                 Sequence[TaskGraph | WorkloadSpec],
                 architectures: Sequence[TargetArchitecture],
                 partitioners: Sequence[Partitioner],
                 deadlines: Sequence[int | None] = (None,),
                 runner: BatchRunner | None = None) -> None:
        if isinstance(graphs, (TaskGraph, WorkloadSpec)):
            graphs = [graphs]
        self.graphs = list(graphs)
        if not self.graphs:
            raise ValueError("need at least one graph")
        if not architectures or not partitioners:
            raise ValueError("need at least one architecture and partitioner")
        names = [self._design_name(g) for g in self.graphs]
        if len(set(names)) != len(names):
            raise ValueError(f"design names must be unique, got {names}")
        self.architectures = list(architectures)
        self.partitioners = list(partitioners)
        self.deadlines = list(deadlines) or [None]
        self.runner = runner if runner is not None else BatchRunner()

    @property
    def graph(self) -> TaskGraph:
        """The first (historically: only) explored graph."""
        return self.graphs[0]

    @staticmethod
    def _design_name(design: TaskGraph | WorkloadSpec) -> str:
        """Display name of a design entry without forcing a spec build."""
        return design.name if isinstance(design, TaskGraph) else design.label

    def _partitioner_labels(self) -> list[str]:
        """One display name per partitioner, disambiguated on collision.

        Two instances of the same engine with different configuration
        (e.g. ``GreedyPartitioner()`` and ``GreedyPartitioner(max_moves=3)``)
        share a ``name``; suffix an index so their design points stay
        distinguishable in the ranked table.
        """
        counts: dict[str, int] = {}
        for p in self.partitioners:
            counts[p.name] = counts.get(p.name, 0) + 1
        seen: dict[str, int] = {}
        labels = []
        for p in self.partitioners:
            if counts[p.name] > 1:
                seen[p.name] = seen.get(p.name, 0) + 1
                labels.append(f"{p.name}#{seen[p.name]}")
            else:
                labels.append(p.name)
        return labels

    def jobs(self) -> list[FlowJob]:
        labels = self._partitioner_labels()
        multi = len(self.graphs) > 1
        out = []
        for design, arch, (partitioner, plabel), deadline in product(
                self.graphs, self.architectures,
                zip(self.partitioners, labels), self.deadlines):
            tag = f"@{deadline}" if deadline is not None else ""
            prefix = f"{self._design_name(design)}@" if multi else ""
            built = isinstance(design, TaskGraph)
            out.append(FlowJob(
                graph=design if built else None,
                workload=None if built else design,
                arch=arch, partitioner=partitioner,
                deadline=deadline,
                label=f"{prefix}{arch.name}/{plabel}{tag}"))
        return out

    def explore(self, progress: ProgressCallback | None = None
                ) -> ExplorationResult:
        outcomes = self.runner.run(self.jobs(), progress=progress)
        result = ExplorationResult(outcomes=outcomes)
        for outcome in outcomes:
            if outcome.ok:
                result.points.append(_point_from(outcome))
            else:
                result.failures.append(outcome)
        return result
