"""Parallel batch execution and design-space exploration for the flow.

The ROADMAP north-star is throughput across many designs and scenarios;
the map-reduce shape of parallel controller synthesis (Alimguzhin et
al.) fits the COOL flow directly because every (graph, architecture,
partitioner, options) job is independent:

* :class:`FlowJob` -- one fully-specified flow invocation;
* :class:`BatchRunner` -- streams a job list across
  :mod:`concurrent.futures` workers (threads by default, processes or
  strictly serial on request): jobs are submitted individually and
  consumed ``as_completed``, outcomes are reassembled into input order,
  an optional ``progress`` callback observes each completion as it
  happens, and a per-job ``job_timeout`` turns stragglers into failed
  outcomes instead of stalling the sweep.  Failures -- including
  *pickling* failures of the process backend, which surface on the
  future rather than inside the job body -- are isolated per job, so
  one bad design can never sink a sweep;
* :class:`DesignSpaceExplorer` -- sweeps graphs x architectures x
  partitioners x deadlines and ranks the implementations on the classic
  co-design Pareto axes: makespan, CLB area, communication memory words.

Jobs deep-copy their partitioner before running so stateful engines
(e.g. the genetic algorithm's RNG) start identically whether the batch
runs serially or on four workers -- batch results are reproducible by
construction.  A :class:`~repro.flow.pipeline.StageCache` passed to the
runner is shared by every job of the sweep (thread/serial backends), so
jobs that revisit a (graph, architecture) pair -- deadline sweeps,
repeated suites -- reuse each other's stage results.
"""

from __future__ import annotations

import copy
import time
from concurrent.futures import (FIRST_COMPLETED, CancelledError, Future,
                                ProcessPoolExecutor, ThreadPoolExecutor,
                                wait)
from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Iterable, Mapping, Sequence

from ..graph.taskgraph import TaskGraph
from ..partition.base import Partitioner
from ..platform.architecture import TargetArchitecture
from .cool import CoolFlow, FlowResult
from .pipeline import StageCache

__all__ = ["FlowJob", "JobOutcome", "BatchRunner", "DesignPoint",
           "ExplorationResult", "DesignSpaceExplorer"]

#: Signature of the streaming progress hook:
#: ``callback(outcome, done_count, total)``, invoked in completion order.
ProgressCallback = Callable[["JobOutcome", int, int], None]


@dataclass(frozen=True)
class FlowJob:
    """One flow invocation: design, target, engine and options."""

    graph: TaskGraph
    arch: TargetArchitecture
    partitioner: Partitioner | None = None
    deadline: int | None = None
    stimuli: Mapping[str, list[int]] | None = None
    reuse_memory: bool = True
    allow_direct_comm: bool = True
    label: str = ""

    @property
    def name(self) -> str:
        """Display name: the label, or graph@arch."""
        if self.label:
            return self.label
        # derive the default label from the flow's actual default engine
        # so the displayed algorithm can never drift from behaviour
        algo = self.partitioner.name if self.partitioner is not None \
            else CoolFlow.default_partitioner().name
        return f"{self.graph.name}@{self.arch.name}/{algo}"


@dataclass
class JobOutcome:
    """Result (or failure) of one batch job."""

    job: FlowJob
    result: FlowResult | None = None
    error: str | None = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


def _run_job(job: FlowJob, stage_cache: StageCache | None) -> FlowResult:
    """Execute one job in a fresh flow (module-level for process pools)."""
    partitioner = copy.deepcopy(job.partitioner) \
        if job.partitioner is not None else None
    flow = CoolFlow(job.arch, partitioner=partitioner,
                    reuse_memory=job.reuse_memory,
                    allow_direct_comm=job.allow_direct_comm,
                    stage_cache=stage_cache)
    return flow.run(job.graph, stimuli=job.stimuli, deadline=job.deadline)


def _run_outcome(job: FlowJob,
                 stage_cache: StageCache | None = None) -> JobOutcome:
    started = time.perf_counter()
    try:
        result = _run_job(job, stage_cache)
    except Exception as exc:  # isolate failures per job
        return JobOutcome(job, error=f"{type(exc).__name__}: {exc}",
                          seconds=time.perf_counter() - started)
    return JobOutcome(job, result=result,
                      seconds=time.perf_counter() - started)


class BatchRunner:
    """Run many flow jobs, optionally in parallel, streaming completions.

    Parameters
    ----------
    max_workers:
        Worker count for the pool backends; ``None`` lets
        :mod:`concurrent.futures` pick.
    backend:
        ``"thread"`` (default), ``"process"`` (jobs and results must be
        picklable) or ``"serial"``.
    stage_cache:
        Optional :class:`~repro.flow.pipeline.StageCache` shared by every
        job of the batch (it is lock-protected).  Sweeps that revisit a
        (graph, architecture) pair -- several deadlines over one design,
        a suite run twice -- are then served stage results across jobs
        instead of recomputing them.  Ignored by the ``"process"``
        backend: workers live in separate address spaces.
    job_timeout:
        Optional per-job budget in seconds, measured from the moment
        the job *starts executing* (queued jobs do not accrue budget).
        On the pool backends an expired job is reported as a failed
        :class:`JobOutcome`; pure-Python work cannot be preempted, so
        its worker stays occupied until the job really returns.  Should
        *every* worker end up held by a timed-out job, the queued jobs
        start accruing budget too and eventually fail as starved --
        the sweep always finishes in bounded time, even when a
        straggler never returns.  The serial backend cannot preempt the
        single in-process job and ignores the budget.

    Note on speed: the flow is pure Python, so threads serialize on the
    GIL, and a process pool must pickle every (large) ``FlowResult``
    back -- for the bundled (sub-second) jobs both pools measure
    *slower* than ``"serial"`` (see ``BENCH_flow_pipeline.json``).
    Choose the backend for orchestration semantics -- per-job failure
    isolation, streaming progress and deterministic fan-out -- and reach
    for ``"process"`` only when per-job compute (e.g. the bnb MILP
    backend, minute-scale solves) dwarfs the result-pickling cost.  For
    repeated sweeps over the same designs a shared ``stage_cache`` on
    the ``"serial"``/``"thread"`` backends buys far more than worker
    parallelism: unchanged (graph, arch) pairs collapse to dictionary
    lookups (see ``BENCH_workload_sweep.json``).
    """

    def __init__(self, max_workers: int | None = None,
                 backend: str = "thread",
                 stage_cache: StageCache | None = None,
                 job_timeout: float | None = None) -> None:
        if backend not in ("thread", "process", "serial"):
            raise ValueError(f"unknown batch backend {backend!r}")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError(f"job_timeout must be positive, got "
                             f"{job_timeout}")
        self.max_workers = max_workers
        self.backend = backend
        self.stage_cache = stage_cache
        self.job_timeout = job_timeout

    # ------------------------------------------------------------------
    def run(self, jobs: Iterable[FlowJob],
            progress: ProgressCallback | None = None) -> list[JobOutcome]:
        """Execute all jobs; outcomes come back in input order.

        ``progress`` is invoked once per job *in completion order* as
        ``progress(outcome, done_count, total)`` -- the streaming view
        of the sweep -- while the returned list is reassembled into
        input order.
        """
        jobs = list(jobs)
        total = len(jobs)
        # only the serial backend runs in-process: the pool backends
        # keep their semantics (timeout, pickling isolation, no shared
        # cache across processes) even for single-job or single-worker
        # batches
        if self.backend == "serial" or total == 0:
            outcomes = []
            for done, job in enumerate(jobs, start=1):
                outcome = _run_outcome(job, self.stage_cache)
                outcomes.append(outcome)
                if progress is not None:
                    progress(outcome, done, total)
            return outcomes
        return self._run_pooled(jobs, progress)

    #: How often the timeout loop re-checks for queued jobs entering
    #: execution (their budget clock starts only then).
    _TIMEOUT_POLL_S = 0.05

    def _run_pooled(self, jobs: list[FlowJob],
                    progress: ProgressCallback | None) -> list[JobOutcome]:
        pool_cls = ThreadPoolExecutor if self.backend == "thread" \
            else ProcessPoolExecutor
        cache = self.stage_cache if self.backend != "process" else None
        outcomes: list[JobOutcome | None] = [None] * len(jobs)
        done_count = 0
        abandoned = False
        pool = pool_cls(max_workers=self.max_workers)
        try:
            index_of: dict[Future, int] = {}
            for index, job in enumerate(jobs):
                index_of[pool.submit(_run_outcome, job, cache)] = index
            pending = set(index_of)
            started_at: dict[Future, float] = {}
            stuck: set[Future] = set()    # timed out but still on a worker
            starved: set[Future] = set()  # queued, clock started anyway

            def emit(future: Future, outcome: JobOutcome) -> None:
                nonlocal done_count
                outcomes[index_of[future]] = outcome
                done_count += 1
                if progress is not None:
                    progress(outcome, done_count, len(jobs))

            while pending:
                now = time.perf_counter()
                if self.job_timeout is None:
                    timeout = None
                else:
                    # the budget clock of a job starts when its future
                    # enters execution; queued jobs normally accrue none
                    # (a job that waited gets its full budget on start)
                    for future in pending:
                        if future.running() and (future not in started_at
                                                 or future in starved):
                            started_at[future] = now
                            starved.discard(future)
                    # a timed-out job cannot be preempted: its worker
                    # frees up only when the job really returns.  Once
                    # *every* worker is held by such a job, queued jobs
                    # start accruing budget too -- otherwise a straggler
                    # that never returns would stall the sweep forever.
                    stuck = {f for f in stuck if not f.done()}
                    if len(stuck) >= pool._max_workers:
                        for future in pending:
                            if future not in started_at:
                                started_at[future] = now
                                starved.add(future)
                    elif starved:
                        # the pool recovered (a timed-out job finally
                        # returned): queued jobs stop accruing budget
                        for future in starved:
                            started_at.pop(future, None)
                        starved.clear()
                    expired = [f for f in pending
                               if f in started_at and now - started_at[f]
                               >= self.job_timeout]
                    for future in expired:
                        pending.discard(future)
                        if future.done():
                            emit(future,
                                 self._outcome_of(future,
                                                  jobs[index_of[future]]))
                            continue
                        if not future.cancel():
                            stuck.add(future)
                            abandoned = True
                        if future in starved:
                            error = (f"TimeoutError: no worker became "
                                     f"available within {self.job_timeout}s "
                                     f"(pool saturated by timed-out jobs)")
                        else:
                            error = (f"TimeoutError: job exceeded "
                                     f"{self.job_timeout}s budget")
                        emit(future, JobOutcome(
                            jobs[index_of[future]], error=error,
                            seconds=now - started_at[future]))
                    if not pending:
                        break
                    deadlines = [started_at[f] + self.job_timeout - now
                                 for f in pending if f in started_at]
                    if any(f not in started_at for f in pending) or stuck:
                        deadlines.append(self._TIMEOUT_POLL_S)
                    timeout = max(min(deadlines), 0.0)
                done, pending = wait(pending, timeout=timeout,
                                     return_when=FIRST_COMPLETED)
                for future in done:
                    emit(future, self._outcome_of(future,
                                                  jobs[index_of[future]]))
        finally:
            # abandoned workers may still be executing a timed-out job;
            # don't block the sweep on them
            pool.shutdown(wait=not abandoned, cancel_futures=True)
        assert all(o is not None for o in outcomes)
        return outcomes  # type: ignore[return-value]

    @staticmethod
    def _outcome_of(future: Future, job: FlowJob) -> JobOutcome:
        """Convert a finished future into an outcome.

        ``future.result()`` can raise even though ``_run_outcome`` never
        does: the process backend pickles the job on submission and the
        outcome on return, and either step can fail *outside* the job
        body (unpicklable partitioner, graph or ``FlowResult``), or the
        pool itself can break.  Those failures belong to this job alone.
        """
        try:
            return future.result()
        except CancelledError:
            return JobOutcome(job, error="CancelledError: job cancelled")
        except Exception as exc:
            return JobOutcome(job, error=f"{type(exc).__name__}: {exc}")


# ----------------------------------------------------------------------
# design-space exploration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DesignPoint:
    """One implementation in the explored space, reduced to its metrics."""

    label: str
    algorithm: str
    arch: str
    deadline: int | None
    makespan: int
    total_clbs: int
    memory_words: int
    hw_nodes: int
    sw_nodes: int
    feasible: bool
    area_repairs: int = 0
    #: Name of the task graph this point implements (multi-graph sweeps
    #: compare points only within one graph).
    graph: str = ""

    @property
    def metrics(self) -> tuple[int, int, int]:
        """The minimized objective vector (makespan, CLBs, memory)."""
        return (self.makespan, self.total_clbs, self.memory_words)

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance: no worse on every axis, better on one."""
        return (all(a <= b for a, b in zip(self.metrics, other.metrics))
                and self.metrics != other.metrics)


@dataclass
class ExplorationResult:
    """Outcome of one design-space sweep."""

    points: list[DesignPoint] = field(default_factory=list)
    failures: list[JobOutcome] = field(default_factory=list)
    outcomes: list[JobOutcome] = field(default_factory=list)

    def feasible_points(self) -> list[DesignPoint]:
        """Implementations that meet all their constraints."""
        return [p for p in self.points if p.feasible]

    def by_graph(self) -> dict[str, list[DesignPoint]]:
        """Points grouped by the task graph they implement."""
        groups: dict[str, list[DesignPoint]] = {}
        for point in self.points:
            groups.setdefault(point.graph, []).append(point)
        return groups

    def pareto(self) -> list[DesignPoint]:
        """The non-dominated *feasible* implementations.

        An implementation that violates its own constraints (deadline,
        area, memory) is not a design anyone can pick, however good its
        metrics look, so infeasible points never enter the front.  In a
        multi-graph sweep dominance is judged per graph: implementations
        of different designs are not alternatives to one another.
        """
        feasible_of = {graph: [p for p in points if p.feasible]
                       for graph, points in self.by_graph().items()}
        return [p for p in self.feasible_points()
                if not any(q.dominates(p) for q in feasible_of[p.graph])]

    def ranked(self, front: set[DesignPoint] | None = None
               ) -> list[DesignPoint]:
        """All points: feasible before infeasible, Pareto front first,
        each tier by normalized score.

        Scores are normalized against the worst *feasible* point of the
        same graph (falling back to all of its points only when none is
        feasible): an arbitrarily bad infeasible outlier would otherwise
        flatten every score that orders the feasible tier.
        """
        if front is None:
            front = set(self.pareto())
        worst_of: dict[str, list[int]] = {}
        for graph, points in self.by_graph().items():
            pool = [p for p in points if p.feasible] or points
            worst_of[graph] = [max(p.metrics[axis] for p in pool)
                               for axis in range(3)]

        def score(point: DesignPoint) -> float:
            worst = worst_of[point.graph]
            return sum(point.metrics[axis] / worst[axis]
                       for axis in range(3) if worst[axis])

        return sorted(self.points,
                      key=lambda p: (not p.feasible, p not in front,
                                     score(p), p.label))

    def table(self) -> str:
        """Ranked text table (Pareto points ``*``, infeasible ``!``)."""
        front = set(self.pareto())
        ranked = self.ranked(front)
        header = (f"{'':2} {'label':<28} {'algorithm':<14} {'deadline':>8} "
                  f"{'makespan':>8} {'CLBs':>6} {'mem[w]':>7} {'hw/sw':>6}")
        lines = [header, "-" * len(header)]
        for point in ranked:
            mark = "*" if point in front else \
                ("!" if not point.feasible else " ")
            deadline = point.deadline if point.deadline is not None else "-"
            lines.append(
                f"{mark:2} {point.label:<28} {point.algorithm:<14} "
                f"{deadline!s:>8} {point.makespan:>8} {point.total_clbs:>6} "
                f"{point.memory_words:>7} "
                f"{point.hw_nodes}/{point.sw_nodes:<4}")
        for failure in self.failures:
            lines.append(f"!  {failure.job.name:<28} failed: {failure.error}")
        return "\n".join(lines)


def _point_from(outcome: JobOutcome) -> DesignPoint:
    result = outcome.result
    assert result is not None
    summary = result.partition_result.summary()
    return DesignPoint(
        label=outcome.job.name,
        algorithm=summary["algorithm"],
        arch=result.arch.name,
        deadline=outcome.job.deadline,
        makespan=result.makespan,
        total_clbs=sum(result.clbs_per_fpga.values()),
        memory_words=result.plan.memory_map.words_used,
        hw_nodes=summary["hw_nodes"],
        sw_nodes=summary["sw_nodes"],
        feasible=result.partition_result.feasibility.feasible,
        area_repairs=result.partition_result.stats.get("area_repairs", 0),
        graph=result.graph.name,
    )


class DesignSpaceExplorer:
    """Sweep graphs x architectures x partitioners x deadlines.

    ``graphs`` may be a single :class:`~repro.graph.taskgraph.TaskGraph`
    (the classic one-design exploration) or a sequence of graphs -- e.g.
    a generated :func:`~repro.workloads.workload_suite` -- in which case
    the cross-product additionally fans over the designs and every label
    is prefixed with the graph name.  ``explore()`` drives the jobs
    through a :class:`BatchRunner` and reduces every successful
    implementation to a :class:`DesignPoint`; the
    :class:`ExplorationResult` ranks them and computes the per-graph
    Pareto front over (makespan, CLB area, memory words).
    """

    def __init__(self, graphs: TaskGraph | Sequence[TaskGraph],
                 architectures: Sequence[TargetArchitecture],
                 partitioners: Sequence[Partitioner],
                 deadlines: Sequence[int | None] = (None,),
                 runner: BatchRunner | None = None) -> None:
        if isinstance(graphs, TaskGraph):
            graphs = [graphs]
        self.graphs = list(graphs)
        if not self.graphs:
            raise ValueError("need at least one graph")
        if not architectures or not partitioners:
            raise ValueError("need at least one architecture and partitioner")
        names = [g.name for g in self.graphs]
        if len(set(names)) != len(names):
            raise ValueError(f"graph names must be unique, got {names}")
        self.architectures = list(architectures)
        self.partitioners = list(partitioners)
        self.deadlines = list(deadlines) or [None]
        self.runner = runner if runner is not None else BatchRunner()

    @property
    def graph(self) -> TaskGraph:
        """The first (historically: only) explored graph."""
        return self.graphs[0]

    def _partitioner_labels(self) -> list[str]:
        """One display name per partitioner, disambiguated on collision.

        Two instances of the same engine with different configuration
        (e.g. ``GreedyPartitioner()`` and ``GreedyPartitioner(max_moves=3)``)
        share a ``name``; suffix an index so their design points stay
        distinguishable in the ranked table.
        """
        counts: dict[str, int] = {}
        for p in self.partitioners:
            counts[p.name] = counts.get(p.name, 0) + 1
        seen: dict[str, int] = {}
        labels = []
        for p in self.partitioners:
            if counts[p.name] > 1:
                seen[p.name] = seen.get(p.name, 0) + 1
                labels.append(f"{p.name}#{seen[p.name]}")
            else:
                labels.append(p.name)
        return labels

    def jobs(self) -> list[FlowJob]:
        labels = self._partitioner_labels()
        multi = len(self.graphs) > 1
        out = []
        for graph, arch, (partitioner, plabel), deadline in product(
                self.graphs, self.architectures,
                zip(self.partitioners, labels), self.deadlines):
            tag = f"@{deadline}" if deadline is not None else ""
            prefix = f"{graph.name}@" if multi else ""
            out.append(FlowJob(
                graph=graph, arch=arch, partitioner=partitioner,
                deadline=deadline,
                label=f"{prefix}{arch.name}/{plabel}{tag}"))
        return out

    def explore(self, progress: ProgressCallback | None = None
                ) -> ExplorationResult:
        outcomes = self.runner.run(self.jobs(), progress=progress)
        result = ExplorationResult(outcomes=outcomes)
        for outcome in outcomes:
            if outcome.ok:
                result.points.append(_point_from(outcome))
            else:
                result.failures.append(outcome)
        return result
