"""Parallel batch execution and design-space exploration for the flow.

The ROADMAP north-star is throughput across many designs and scenarios;
the map-reduce shape of parallel controller synthesis (Alimguzhin et
al.) fits the COOL flow directly because every (graph, architecture,
partitioner, options) job is independent:

* :class:`FlowJob` -- one fully-specified flow invocation;
* :class:`BatchRunner` -- fans a job list across
  :mod:`concurrent.futures` workers (threads by default, processes or
  strictly serial on request) and returns per-job outcomes in input
  order, isolating failures so one bad design cannot sink a sweep;
* :class:`DesignSpaceExplorer` -- sweeps partitioners x deadlines x
  architectures over one task graph and ranks the implementations on
  the classic co-design Pareto axes: makespan, CLB area, communication
  memory words.

Jobs deep-copy their partitioner before running so stateful engines
(e.g. the genetic algorithm's RNG) start identically whether the batch
runs serially or on four workers -- batch results are reproducible by
construction.
"""

from __future__ import annotations

import copy
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from itertools import product
from typing import Iterable, Mapping, Sequence

from ..graph.taskgraph import TaskGraph
from ..partition.base import Partitioner
from ..platform.architecture import TargetArchitecture
from .cool import CoolFlow, FlowResult

__all__ = ["FlowJob", "JobOutcome", "BatchRunner", "DesignPoint",
           "ExplorationResult", "DesignSpaceExplorer"]


@dataclass(frozen=True)
class FlowJob:
    """One flow invocation: design, target, engine and options."""

    graph: TaskGraph
    arch: TargetArchitecture
    partitioner: Partitioner | None = None
    deadline: int | None = None
    stimuli: Mapping[str, list[int]] | None = None
    reuse_memory: bool = True
    allow_direct_comm: bool = True
    label: str = ""

    @property
    def name(self) -> str:
        """Display name: the label, or graph@arch."""
        if self.label:
            return self.label
        algo = self.partitioner.name if self.partitioner is not None \
            else "milp"
        return f"{self.graph.name}@{self.arch.name}/{algo}"


@dataclass
class JobOutcome:
    """Result (or failure) of one batch job."""

    job: FlowJob
    result: FlowResult | None = None
    error: str | None = None
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


def _run_job(job: FlowJob) -> FlowResult:
    """Execute one job in a fresh flow (module-level for process pools)."""
    partitioner = copy.deepcopy(job.partitioner) \
        if job.partitioner is not None else None
    flow = CoolFlow(job.arch, partitioner=partitioner,
                    reuse_memory=job.reuse_memory,
                    allow_direct_comm=job.allow_direct_comm)
    return flow.run(job.graph, stimuli=job.stimuli, deadline=job.deadline)


def _run_outcome(job: FlowJob) -> JobOutcome:
    started = time.perf_counter()
    try:
        result = _run_job(job)
    except Exception as exc:  # isolate failures per job
        return JobOutcome(job, error=f"{type(exc).__name__}: {exc}",
                          seconds=time.perf_counter() - started)
    return JobOutcome(job, result=result,
                      seconds=time.perf_counter() - started)


class BatchRunner:
    """Run many flow jobs, optionally in parallel.

    Parameters
    ----------
    max_workers:
        Worker count for the pool backends; ``None`` lets
        :mod:`concurrent.futures` pick.
    backend:
        ``"thread"`` (default), ``"process"`` (jobs and results must be
        picklable) or ``"serial"``.

    Note on speed: the flow is pure Python, so threads serialize on the
    GIL, and a process pool must pickle every (large) ``FlowResult``
    back -- for the bundled workloads both pools measure *slower* than
    ``"serial"`` (see ``BENCH_flow_pipeline.json``).  Choose the
    backend for orchestration semantics -- per-job failure isolation
    and deterministic fan-out -- and reach for ``"process"`` only when
    per-job compute (e.g. the bnb MILP backend, minute-scale solves)
    dwarfs the result-pickling cost.
    """

    def __init__(self, max_workers: int | None = None,
                 backend: str = "thread") -> None:
        if backend not in ("thread", "process", "serial"):
            raise ValueError(f"unknown batch backend {backend!r}")
        self.max_workers = max_workers
        self.backend = backend

    def run(self, jobs: Iterable[FlowJob]) -> list[JobOutcome]:
        """Execute all jobs; outcomes come back in input order."""
        jobs = list(jobs)
        if (self.backend == "serial" or len(jobs) <= 1
                or (self.max_workers is not None and self.max_workers <= 1)):
            return [_run_outcome(job) for job in jobs]
        pool_cls = ThreadPoolExecutor if self.backend == "thread" \
            else ProcessPoolExecutor
        with pool_cls(max_workers=self.max_workers) as pool:
            return list(pool.map(_run_outcome, jobs))


# ----------------------------------------------------------------------
# design-space exploration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DesignPoint:
    """One implementation in the explored space, reduced to its metrics."""

    label: str
    algorithm: str
    arch: str
    deadline: int | None
    makespan: int
    total_clbs: int
    memory_words: int
    hw_nodes: int
    sw_nodes: int
    feasible: bool
    area_repairs: int = 0

    @property
    def metrics(self) -> tuple[int, int, int]:
        """The minimized objective vector (makespan, CLBs, memory)."""
        return (self.makespan, self.total_clbs, self.memory_words)

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance: no worse on every axis, better on one."""
        return (all(a <= b for a, b in zip(self.metrics, other.metrics))
                and self.metrics != other.metrics)


@dataclass
class ExplorationResult:
    """Outcome of one design-space sweep."""

    points: list[DesignPoint] = field(default_factory=list)
    failures: list[JobOutcome] = field(default_factory=list)
    outcomes: list[JobOutcome] = field(default_factory=list)

    def feasible_points(self) -> list[DesignPoint]:
        """Implementations that meet all their constraints."""
        return [p for p in self.points if p.feasible]

    def pareto(self) -> list[DesignPoint]:
        """The non-dominated *feasible* implementations.

        An implementation that violates its own constraints (deadline,
        area, memory) is not a design anyone can pick, however good its
        metrics look, so infeasible points never enter the front.
        """
        feasible = self.feasible_points()
        return [p for p in feasible
                if not any(q.dominates(p) for q in feasible)]

    def ranked(self, front: set[DesignPoint] | None = None
               ) -> list[DesignPoint]:
        """All points: feasible before infeasible, Pareto front first,
        each tier by normalized score."""
        if front is None:
            front = set(self.pareto())
        worst = [max((p.metrics[axis] for p in self.points), default=0)
                 for axis in range(3)]

        def score(point: DesignPoint) -> float:
            return sum(point.metrics[axis] / worst[axis]
                       for axis in range(3) if worst[axis])

        return sorted(self.points,
                      key=lambda p: (not p.feasible, p not in front,
                                     score(p), p.label))

    def table(self) -> str:
        """Ranked text table (Pareto points ``*``, infeasible ``!``)."""
        front = set(self.pareto())
        ranked = self.ranked(front)
        header = (f"{'':2} {'label':<28} {'algorithm':<14} {'deadline':>8} "
                  f"{'makespan':>8} {'CLBs':>6} {'mem[w]':>7} {'hw/sw':>6}")
        lines = [header, "-" * len(header)]
        for point in ranked:
            mark = "*" if point in front else \
                ("!" if not point.feasible else " ")
            deadline = point.deadline if point.deadline is not None else "-"
            lines.append(
                f"{mark:2} {point.label:<28} {point.algorithm:<14} "
                f"{deadline!s:>8} {point.makespan:>8} {point.total_clbs:>6} "
                f"{point.memory_words:>7} "
                f"{point.hw_nodes}/{point.sw_nodes:<4}")
        for failure in self.failures:
            lines.append(f"!  {failure.job.name:<28} failed: {failure.error}")
        return "\n".join(lines)


def _point_from(outcome: JobOutcome) -> DesignPoint:
    result = outcome.result
    assert result is not None
    summary = result.partition_result.summary()
    return DesignPoint(
        label=outcome.job.name,
        algorithm=summary["algorithm"],
        arch=result.arch.name,
        deadline=outcome.job.deadline,
        makespan=result.makespan,
        total_clbs=sum(result.clbs_per_fpga.values()),
        memory_words=result.plan.memory_map.words_used,
        hw_nodes=summary["hw_nodes"],
        sw_nodes=summary["sw_nodes"],
        feasible=result.partition_result.feasibility.feasible,
        area_repairs=result.partition_result.stats.get("area_repairs", 0),
    )


class DesignSpaceExplorer:
    """Sweep partitioners x deadlines x architectures over one graph.

    ``explore()`` fans the cross-product through a :class:`BatchRunner`
    and reduces every successful implementation to a
    :class:`DesignPoint`; the :class:`ExplorationResult` ranks them and
    computes the Pareto front over (makespan, CLB area, memory words).
    """

    def __init__(self, graph: TaskGraph,
                 architectures: Sequence[TargetArchitecture],
                 partitioners: Sequence[Partitioner],
                 deadlines: Sequence[int | None] = (None,),
                 runner: BatchRunner | None = None) -> None:
        if not architectures or not partitioners:
            raise ValueError("need at least one architecture and partitioner")
        self.graph = graph
        self.architectures = list(architectures)
        self.partitioners = list(partitioners)
        self.deadlines = list(deadlines) or [None]
        self.runner = runner if runner is not None else BatchRunner()

    def _partitioner_labels(self) -> list[str]:
        """One display name per partitioner, disambiguated on collision.

        Two instances of the same engine with different configuration
        (e.g. ``GreedyPartitioner()`` and ``GreedyPartitioner(max_moves=3)``)
        share a ``name``; suffix an index so their design points stay
        distinguishable in the ranked table.
        """
        counts: dict[str, int] = {}
        for p in self.partitioners:
            counts[p.name] = counts.get(p.name, 0) + 1
        seen: dict[str, int] = {}
        labels = []
        for p in self.partitioners:
            if counts[p.name] > 1:
                seen[p.name] = seen.get(p.name, 0) + 1
                labels.append(f"{p.name}#{seen[p.name]}")
            else:
                labels.append(p.name)
        return labels

    def jobs(self) -> list[FlowJob]:
        labels = self._partitioner_labels()
        out = []
        for arch, (partitioner, plabel), deadline in product(
                self.architectures, zip(self.partitioners, labels),
                self.deadlines):
            tag = f"@{deadline}" if deadline is not None else ""
            out.append(FlowJob(
                graph=self.graph, arch=arch, partitioner=partitioner,
                deadline=deadline,
                label=f"{arch.name}/{plabel}{tag}"))
        return out

    def explore(self) -> ExplorationResult:
        outcomes = self.runner.run(self.jobs())
        result = ExplorationResult(outcomes=outcomes)
        for outcome in outcomes:
            if outcome.ok:
                result.points.append(_point_from(outcome))
            else:
                result.failures.append(outcome)
        return result
