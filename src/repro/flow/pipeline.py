"""Stage-graph pipeline engine underlying the COOL flow.

The paper's design flow (Fig. 1) is a staged pipeline: partitioning,
co-synthesis, controller synthesis, HLS, code generation.  This module
gives that structure a first-class runtime:

* :class:`Stage` -- one pipeline step with *declared* input and output
  artifact keys and a pure ``run(ctx)`` body;
* :class:`FlowContext` -- a typed artifact store that records a content
  fingerprint for every artifact at insertion time (``TaskGraph``,
  ``Partition``, ``Schedule``, ``Stg`` and ``TargetArchitecture`` all
  provide stable ``fingerprint()`` hooks);
* :class:`PipelineExecutor` -- a demand-driven executor: requesting a
  set of output keys runs exactly the stages whose fingerprinted inputs
  changed since they last ran, skipping everything that is still fresh;
* :class:`StageCache` -- an optional cross-run memo of stage outputs
  keyed by ``(stage name, input fingerprints)`` so re-running the flow
  on an unchanged (graph, architecture) pair costs a dictionary lookup.

The executor accepts any :class:`~repro.store.tiered.CacheTier`, not
just a :class:`StageCache`: the in-memory cache is the L1 tier of the
stack, and wrapping it in a :class:`~repro.store.tiered.TieredCache`
over a :class:`~repro.store.tiered.PersistentCache` makes stage outputs
survive the process (see :mod:`repro.store`).

Artifacts are treated as immutable once stored: a stage must never
mutate an input in place, it returns fresh outputs instead.  The
executor relies on that contract -- fingerprints are computed once at
``put`` time and cached stage outputs are shared by reference.
"""

from __future__ import annotations

import threading
import time
import weakref
from itertools import count
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, fields, is_dataclass
from enum import Enum
from typing import Any, Callable, Iterable, Iterator, Mapping

from ..fingerprint import content_hash
from ..obs import MetricsRegistry
from ..obs import span as obs_span
from ..store.tiered import CacheTier

__all__ = ["PipelineError", "stage_timer", "fingerprint_of", "Stage",
           "FlowContext", "StageCache", "CacheTier", "PipelineExecutor"]


class PipelineError(RuntimeError):
    """Raised for malformed pipelines: missing inputs, bad stage outputs."""


@contextmanager
def stage_timer(stage: str, sink: dict[str, float]) -> Iterator[None]:
    """Accumulate the wall-clock seconds of the ``with`` body into ``sink``.

    Repeated entries for the same stage add up, so a driver loop that
    revisits a stage reports the total time spent in it -- the same
    semantics the old ad-hoc ``_Timer`` inner class of ``CoolFlow.run``
    had, now shared by the pipeline executor and the flow driver.
    """
    started = time.perf_counter()
    try:
        yield
    finally:
        sink[stage] = sink.get(stage, 0.0) + time.perf_counter() - started


# ----------------------------------------------------------------------
# content fingerprints
# ----------------------------------------------------------------------
def fingerprint_of(value: Any) -> str:
    """Content fingerprint of an artifact.

    Objects exposing a ``fingerprint()`` method (task graphs, partitions,
    schedules, STGs, architectures, partitioners) are asked directly;
    plain containers and dataclasses are hashed structurally.  Anything
    else falls back to an identity token drawn from a monotonic
    registry: unlike a raw ``id()``, a token is never reused for a
    different object, so a stale cache key can never alias a new
    artifact that happens to land on a recycled address.
    """
    hook = getattr(value, "fingerprint", None)
    if callable(hook):
        return hook()
    return content_hash(_canonical(value))


def _canonical(value: Any) -> str:
    """Deterministic string form of ``value`` for hashing."""
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return f"{type(value).__name__}:{value!r}"
    hook = getattr(value, "fingerprint", None)
    if callable(hook):
        return f"fp:{hook()}"
    if isinstance(value, Enum):
        return f"enum:{type(value).__qualname__}.{value.name}"
    if isinstance(value, (tuple, list)):
        body = ",".join(_canonical(v) for v in value)
        return f"{type(value).__name__}[{body}]"
    if isinstance(value, (set, frozenset)):
        body = ",".join(sorted(_canonical(v) for v in value))
        return f"set[{body}]"
    if isinstance(value, Mapping):
        items = sorted((_canonical(k), _canonical(v))
                       for k, v in value.items())
        body = ",".join(f"{k}={v}" for k, v in items)
        return f"map[{body}]"
    if is_dataclass(value) and not isinstance(value, type):
        body = ",".join(f"{f.name}={_canonical(getattr(value, f.name))}"
                        for f in fields(value))
        return f"{type(value).__qualname__}({body})"
    return f"@{type(value).__qualname__}:{_identity_token(value)}"


_IDENTITY_COUNTER = count()
_identity_registry: dict[int, tuple[int, Callable[[], Any]]] = {}
_identity_lock = threading.Lock()


def _identity_token(value: Any) -> int:
    """A process-unique token for ``value``, never reused after its death.

    Weakref-able objects are tracked with a finalizer that retires the
    token when they are collected; objects that cannot be weak-referenced
    are pinned by the registry instead, which equally guarantees their
    token (and address) outlives every cache key mentioning it.
    """
    # repro-lint: ignore[DET102] -- identity tokens are process-local by
    # design: they key same-process cache entries for unfingerprintable
    # values and never reach a shard payload or cross-process fingerprint
    key = id(value)
    with _identity_lock:
        entry = _identity_registry.get(key)
        if entry is not None and entry[1]() is value:
            return entry[0]
        token = next(_IDENTITY_COUNTER)
        try:
            ref: Callable[[], Any] = weakref.ref(
                value, lambda _, key=key: _identity_registry.pop(key, None))
        except TypeError:
            ref = (lambda value=value: value)  # pin: id can never recycle
        _identity_registry[key] = (token, ref)
        return token


# ----------------------------------------------------------------------
# artifacts
# ----------------------------------------------------------------------
class FlowContext:
    """Typed artifact store with content fingerprints.

    Keys are artifact names (``"graph"``, ``"schedule"``, ...); the
    fingerprint of each artifact is computed once when it is stored and
    is what the executor compares to decide whether a stage must re-run.
    """

    def __init__(self, **artifacts: Any) -> None:
        self._values: dict[str, Any] = {}
        self._fingerprints: dict[str, str] = {}
        for key, value in artifacts.items():
            self.put(key, value)

    def put(self, key: str, value: Any) -> None:
        """Store (or replace) an artifact, fingerprinting its content."""
        self._values[key] = value
        self._fingerprints[key] = fingerprint_of(value)

    def put_fingerprinted(self, key: str, value: Any,
                          fingerprint: str) -> None:
        """Store an artifact whose fingerprint is already known (cache)."""
        self._values[key] = value
        self._fingerprints[key] = fingerprint

    def get(self, key: str) -> Any:
        try:
            return self._values[key]
        except KeyError:
            raise PipelineError(f"unknown artifact {key!r}") from None

    def fingerprint(self, key: str) -> str:
        try:
            return self._fingerprints[key]
        except KeyError:
            raise PipelineError(f"unknown artifact {key!r}") from None

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def keys(self) -> list[str]:
        return list(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlowContext({sorted(self._values)})"


@dataclass(frozen=True)
class Stage:
    """One pipeline step with declared inputs and outputs.

    ``run(ctx)`` must be pure with respect to the declared ``inputs``:
    it reads them from the context and returns a mapping containing at
    least every declared output key.  Undeclared reads break caching.
    """

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    run: Callable[[FlowContext], Mapping[str, Any]]

    def __post_init__(self) -> None:
        if not self.outputs:
            raise PipelineError(f"stage {self.name!r} declares no outputs")


class StageCache:
    """Cross-run LRU memo: ``(stage, input fingerprints) -> outputs``.

    Cached output values are shared by reference between runs, which is
    safe because pipeline artifacts are immutable by contract.  The
    cache is lock-protected so a :class:`~repro.flow.batch.BatchRunner`
    can share one instance across worker threads.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries <= 0:
            raise PipelineError("stage cache needs max_entries >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, dict[str, tuple[Any, str]]] = \
            OrderedDict()
        self._lock = threading.Lock()
        self.metrics = MetricsRegistry()
        self._hits = self.metrics.counter("hits")
        self._misses = self.metrics.counter("misses")

    @property
    def hits(self) -> int:
        """Lifetime hit count (alias onto the metrics registry)."""
        return self._hits.value

    @property
    def misses(self) -> int:
        """Lifetime miss count (alias onto the metrics registry)."""
        return self._misses.value

    def get(self, stage: str,
            signature: tuple[str, ...]) -> dict[str, tuple[Any, str]] | None:
        key = (stage, signature)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses.inc()
                return None
            self._entries.move_to_end(key)
            self._hits.inc()
            return entry

    def put(self, stage: str, signature: tuple[str, ...],
            outputs: dict[str, tuple[Any, str]]) -> None:
        key = (stage, signature)
        with self._lock:
            self._entries[key] = outputs
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def snapshot(self) -> dict[str, int]:
        """Counter snapshot marking the start of a measurement window.

        Pass the returned mapping to :meth:`stats` as ``since`` to get
        the *delta* view of everything that happened after this call.
        Benchmarks use this to report a warm re-sweep's hit rate
        honestly: the lifetime counters accumulate across the cold and
        warm passes (a fully-warm pass reads ~0.5 overall), while the
        windowed view isolates the warm pass itself (~1.0).
        """
        with self._lock:
            return {"hits": self.hits, "misses": self.misses}

    def stats(self, since: Mapping[str, int] | None = None) -> dict:
        """Consistent snapshot of occupancy and hit counters.

        Batch sweeps sharing one cache across worker threads read this
        for their reports; taking the lock keeps the numbers coherent
        mid-sweep.  With ``since`` (a :meth:`snapshot`), the hit/miss
        counters and the hit rate cover only the window after the
        snapshot was taken; occupancy is always current.
        """
        with self._lock:
            hits, misses = self.hits, self.misses
            if since is not None:
                hits -= since["hits"]
                misses -= since["misses"]
            total = hits + misses
            return {"entries": len(self._entries),
                    "max_entries": self.max_entries,
                    "hits": hits, "misses": misses,
                    "hit_rate": round(hits / total, 4) if total else 0.0}

    @staticmethod
    def merge_stats(stats: Iterable[Mapping]) -> dict:
        """Aggregate several :meth:`stats` dicts into one summary.

        Sharded sweeps run one cache per worker process; the reduce
        stage merges their per-shard windows into a single sweep-wide
        report.  The merge is shape-generic so tiered views fold too:
        numeric counters are summed (per-process caches are disjoint;
        a *shared* L2 store's occupancy therefore appears once per
        worker view), nested per-tier mappings (``l1``/``l2``) are
        merged recursively, the hit rate is recomputed over the merged
        counters, and ``caches`` records how many views were merged.
        """
        merged: dict = {"entries": 0, "max_entries": 0,
                        "hits": 0, "misses": 0}
        nested: dict[str, list[Mapping]] = {}
        caches = 0
        for entry in stats:
            caches += 1
            for key, value in entry.items():
                if key in ("hit_rate", "caches"):
                    continue  # recomputed / recounted below
                if isinstance(value, Mapping):
                    nested.setdefault(key, []).append(value)
                elif isinstance(value, (int, float)):
                    merged[key] = merged.get(key, 0) + value
        for key, views in nested.items():
            merged[key] = StageCache.merge_stats(views)
        total = merged["hits"] + merged["misses"]
        merged["hit_rate"] = round(merged["hits"] / total, 4) if total \
            else 0.0
        merged["caches"] = caches
        return merged

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class PipelineExecutor:
    """Demand-driven executor over an ordered list of stages.

    ``request(ctx, keys)`` walks the stage list backwards from the
    requested artifact keys to find the producing stages, then executes
    them in declared order.  A stage actually runs only when the
    fingerprints of its inputs differ from the last execution; otherwise
    its previous outputs (still in the context, or in the cross-run
    cache tier) are reused.  ``stage_runs`` counts real executions,
    ``stage_seconds`` accumulates wall-clock per stage -- cache hits
    cost only their lookup time.

    ``cache`` may be any :class:`~repro.store.tiered.CacheTier`: a bare
    :class:`StageCache` (memory only) or a
    :class:`~repro.store.tiered.TieredCache` whose persistent tier makes
    warm starts survive the process.
    """

    def __init__(self, stages: Iterable[Stage],
                 cache: CacheTier | None = None) -> None:
        self._order: list[Stage] = []
        self._producer: dict[str, Stage] = {}
        self._by_name: dict[str, Stage] = {}
        for stage in stages:
            if stage.name in self._by_name:
                raise PipelineError(f"duplicate stage name {stage.name!r}")
            for key in stage.outputs:
                if key in self._producer:
                    raise PipelineError(
                        f"artifact {key!r} produced by both "
                        f"{self._producer[key].name!r} and {stage.name!r}")
                self._producer[key] = stage
            self._by_name[stage.name] = stage
            self._order.append(stage)
        self.cache = cache
        self.stage_seconds: dict[str, float] = {}
        self.stage_runs: dict[str, int] = {s.name: 0 for s in self._order}
        self.cache_hits: dict[str, int] = {s.name: 0 for s in self._order}
        self._last_inputs: dict[str, tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    def request(self, ctx: FlowContext, outputs: Iterable[str]) -> None:
        """Bring every requested artifact up to date in ``ctx``."""
        outputs = list(outputs)
        unknown = [k for k in outputs
                   if k not in self._producer and k not in ctx]
        if unknown:
            raise PipelineError(f"no stage produces requested artifacts "
                                f"{unknown}")
        needed_keys = set(outputs)
        needed: list[Stage] = []
        for stage in reversed(self._order):
            if needed_keys & set(stage.outputs):
                needed.append(stage)
                needed_keys |= set(stage.inputs)
        for stage in reversed(needed):
            self._execute(ctx, stage)

    def commit_outputs(self, ctx: FlowContext, stage_name: str) -> None:
        """Overwrite the cache entry of a stage with the context's artifacts.

        For drivers that *refine* a stage's outputs after running it
        (the HLS area-repair loop replaces the partitioning results with
        the converged mapping): committing stores the refined artifacts
        under the stage's current input signature, so the next run with
        the same inputs is served the converged solution directly
        instead of repeating the refinement.
        """
        try:
            stage = self._by_name[stage_name]
        except KeyError:
            raise PipelineError(f"unknown stage {stage_name!r}") from None
        signature = self._signature(ctx, stage)
        self._last_inputs[stage.name] = signature
        if self.cache is not None:
            self.cache.put(stage.name, signature,
                           {k: (ctx.get(k), ctx.fingerprint(k))
                            for k in stage.outputs})

    # ------------------------------------------------------------------
    def _signature(self, ctx: FlowContext, stage: Stage) -> tuple[str, ...]:
        missing = [k for k in stage.inputs
                   if k not in ctx and k not in self._producer]
        if missing:
            raise PipelineError(f"stage {stage.name!r}: missing inputs "
                                f"{missing} (not in context, no producer)")
        return tuple(ctx.fingerprint(k) for k in stage.inputs)

    def _execute(self, ctx: FlowContext, stage: Stage) -> None:
        signature = self._signature(ctx, stage)
        if (self._last_inputs.get(stage.name) == signature
                and all(k in ctx for k in stage.outputs)):
            return  # still fresh from an earlier request of this run
        if self.cache is not None:
            cached = self.cache.get(stage.name, signature)
            if cached is not None:
                with obs_span(stage.name, kind="stage", cache="hit"):
                    with stage_timer(stage.name, self.stage_seconds):
                        for key, (value, fp) in cached.items():
                            ctx.put_fingerprinted(key, value, fp)
                self._last_inputs[stage.name] = signature
                self.cache_hits[stage.name] += 1
                return
        with obs_span(stage.name, kind="stage", cache="miss"):
            with stage_timer(stage.name, self.stage_seconds):
                produced = stage.run(ctx)
            missing = [k for k in stage.outputs if k not in produced]
            if missing:
                raise PipelineError(f"stage {stage.name!r} did not produce "
                                    f"declared outputs {missing}")
            for key in stage.outputs:
                ctx.put(key, produced[key])
            self._last_inputs[stage.name] = signature
            self.stage_runs[stage.name] = \
                self.stage_runs.get(stage.name, 0) + 1
            if self.cache is not None:
                self.cache.put(stage.name, signature,
                               {k: (ctx.get(k), ctx.fingerprint(k))
                                for k in stage.outputs})
