"""Design-time model: where does implementation time go?

The paper's headline process result: "the time to execute the complete
design flow from system specification to an implementation on the
prototyping board took not more than about 60 minutes.  The
time-consuming factor was always the hardware synthesis which consumed
more than 90% of the design time."

We obviously cannot run 1998's OSCAR + Synopsys + XACT place&route, so
the flow reports two kinds of time:

* **measured** -- real wall-clock seconds of every reproduced stage
  (partitioning, co-synthesis, code generation, co-simulation);
* **modelled** -- the downstream tool times, calibrated to mid-90s
  workstation throughput: logic synthesis + place&route at
  :data:`SYNTHESIS_SECONDS_PER_CLB` per occupied CLB plus a fixed
  per-device overhead, and C compilation per processor.

The fuzzy-controller benchmark checks the *shape*: total below ~60
minutes and hardware synthesis above 90 % of the total.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DesignTimeModel", "DesignTimeReport",
           "SYNTHESIS_SECONDS_PER_CLB"]

#: Logic synthesis + technology mapping + place&route throughput
#: (Synopsys + XACT on a mid-90s workstation), seconds per occupied CLB.
SYNTHESIS_SECONDS_PER_CLB = 8.0
#: Fixed per-FPGA overhead: netlist I/O, bitstream generation, download.
PER_DEVICE_OVERHEAD_S = 150.0
#: C compilation + linking + download per processor.
SW_COMPILE_SECONDS = 45.0
#: Board bring-up constant (cabling, memory test).
BOARD_SETUP_SECONDS = 60.0


@dataclass
class DesignTimeReport:
    """Breakdown of one implementation's design time."""

    measured_stages: dict[str, float] = field(default_factory=dict)
    hw_synthesis_s: float = 0.0
    sw_compile_s: float = 0.0
    board_setup_s: float = BOARD_SETUP_SECONDS

    @property
    def measured_total_s(self) -> float:
        return sum(self.measured_stages.values())

    @property
    def total_s(self) -> float:
        return (self.measured_total_s + self.hw_synthesis_s
                + self.sw_compile_s + self.board_setup_s)

    @property
    def hw_fraction(self) -> float:
        total = self.total_s
        return self.hw_synthesis_s / total if total else 0.0

    def rows(self) -> list[tuple[str, float]]:
        out = [(f"flow: {k}", v) for k, v in self.measured_stages.items()]
        out.append(("hw synthesis (modelled)", self.hw_synthesis_s))
        out.append(("sw compile (modelled)", self.sw_compile_s))
        out.append(("board setup (modelled)", self.board_setup_s))
        return out


class DesignTimeModel:
    """Prices the modelled downstream stages of one implementation."""

    def __init__(self,
                 seconds_per_clb: float = SYNTHESIS_SECONDS_PER_CLB,
                 per_device_s: float = PER_DEVICE_OVERHEAD_S,
                 sw_compile_s: float = SW_COMPILE_SECONDS) -> None:
        self.seconds_per_clb = seconds_per_clb
        self.per_device_s = per_device_s
        self.sw_compile_s = sw_compile_s

    def hardware_seconds(self, clbs_per_device: dict[str, int]) -> float:
        """Synthesis time of all FPGAs that host logic."""
        total = 0.0
        for clbs in clbs_per_device.values():
            if clbs > 0:
                total += self.per_device_s + self.seconds_per_clb * clbs
        return total

    def software_seconds(self, n_programs: int) -> float:
        return self.sw_compile_s * n_programs
