"""Sharded map-reduce sweeps on a real multi-core backend.

The thread backend buys isolation, not speed (pure Python, GIL), and a
naive process pool pickles a ~75 KB :class:`~repro.flow.cool.FlowResult`
back per sub-second job -- so before this module a big sweep was serial
in all but name.  Following the map-reduce decomposition of parallel
controller synthesis (Alimguzhin et al., arXiv:1210.2276), a sweep here
is three explicit stages:

**plan**
    :class:`ShardPlanner` partitions the suite into shards
    *deterministically by content fingerprint*: a job's shard depends
    only on what the job computes (design, architecture, engine, knobs),
    never on its position in the suite or the worker count of the run.
    Every shard records the fingerprints of its members, so the reduce
    stage can verify that what came back is what was planned.

**map**
    Each shard runs in a worker process of a
    :class:`~concurrent.futures.ProcessPoolExecutor`.  Job payloads are
    compact and picklable -- ideally a
    :class:`~repro.workloads.WorkloadSpec` whose graph is built
    in-worker -- and each worker process owns one
    :class:`~repro.flow.pipeline.StageCache`, initialized once and
    reused across every shard it executes.  With ``store_path=`` that
    cache becomes the L1 tier over a shared persistent store
    (:mod:`repro.store`), so workers warm-start from previous runs and
    share stage results with each other through the disk.  Workers return
    :class:`JobSummary` values (a :class:`~repro.flow.batch.DesignPoint`
    plus error/timing/cache evidence), never fat flow artifacts.

**reduce**
    Per-shard outcomes are verified against the plan (tampered, stale
    or incomplete shard results raise :class:`ShardError`), reassembled
    into suite order, and the per-shard Pareto fronts, stage-cache
    windows and timings are merged into one sweep-wide view.  The merged
    result is bit-identical to the ``"serial"`` backend: same outcomes,
    same Pareto front, same ranking order, for any shard count and any
    map order.

Entry points: ``BatchRunner(backend="shard", shards=...)`` for the
streaming job API, :func:`map_reduce_sweep` for the one-call sweep that
returns a :class:`SweepResult` (an
:class:`~repro.flow.batch.ExplorationResult` whose ``pareto()`` is
served by the merged per-shard fronts).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..fingerprint import content_hash
from ..graph.taskgraph import TaskGraph
from ..obs import Tracer, activate, current_tracer
from ..obs import span as obs_span
from ..partition.base import Partitioner
from ..platform.architecture import TargetArchitecture
from ..store import ArtifactStore, PersistentCache, TieredCache
from ..workloads.generators import WorkloadSpec
from .batch import (DesignPoint, ExplorationResult, FlowJob, JobOutcome,
                    ProgressCallback, _run_outcome, design_point_of,
                    payload_check)
from .pipeline import CacheTier, StageCache

__all__ = ["ShardError", "JobPayload", "JobSummary", "Shard",
           "ShardPlanner", "ShardOutcome", "ShardSweepStats", "SweepResult",
           "run_shard", "reduce_shards", "sharded_sweep", "map_reduce_sweep",
           "DEFAULT_WORKER_CACHE_ENTRIES"]

#: Capacity of the per-worker-process stage cache (entries, not bytes).
DEFAULT_WORKER_CACHE_ENTRIES = 2048


class ShardError(RuntimeError):
    """Raised when shard results cannot be soundly reduced: a shard
    outcome that does not match the plan (tampered/stale), covers the
    wrong jobs, or arrives for a shard that was never planned."""


# ----------------------------------------------------------------------
# payloads: what crosses the process boundary on the way in
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobPayload:
    """Compact, picklable description of one sweep job.

    This is the *whole* submission: spec-based designs are built inside
    the worker, the partitioner is reconstructed per job by deep copy
    (identical RNG start to the serial backend), and everything here
    must already have passed :func:`~repro.flow.batch.payload_check`.
    ``index`` pins the job's position in the suite so the reduce stage
    can restore input order; it does not participate in the fingerprint.
    """

    index: int
    label: str
    workload: WorkloadSpec | None
    graph: TaskGraph | None
    arch: TargetArchitecture
    partitioner: Partitioner | None
    deadline: int | None
    stimuli: Mapping[str, list[int]] | None
    reuse_memory: bool
    allow_direct_comm: bool

    def fingerprint(self) -> str:
        """Content hash of what the job *computes* (not where it sits).

        Shard assignment keys on this, so a design keeps its shard when
        the suite is reordered or extended -- and so the reduce stage
        can detect a shard outcome that answers a different plan.
        """
        design = self.workload.fingerprint() if self.workload is not None \
            else self.graph.fingerprint()
        engine = self.partitioner.fingerprint() \
            if self.partitioner is not None else None
        stimuli = tuple(sorted((name, tuple(values))
                               for name, values in self.stimuli.items())) \
            if self.stimuli is not None else None
        return content_hash(("job", design, self.arch.fingerprint(), engine,
                             self.deadline, stimuli, self.reuse_memory,
                             self.allow_direct_comm))

    def to_job(self) -> FlowJob:
        """The equivalent :class:`FlowJob`, run through the exact same
        code path as the serial backend (bit-identical by construction)."""
        return FlowJob(graph=self.graph, workload=self.workload,
                       arch=self.arch, partitioner=self.partitioner,
                       deadline=self.deadline, stimuli=self.stimuli,
                       reuse_memory=self.reuse_memory,
                       allow_direct_comm=self.allow_direct_comm,
                       label=self.label)


def payload_of(job: FlowJob, index: int) -> JobPayload:
    """Reduce a :class:`FlowJob` to its compact shard payload."""
    return JobPayload(index=index, label=job.name, workload=job.workload,
                      graph=job.graph, arch=job.arch,
                      partitioner=job.partitioner, deadline=job.deadline,
                      stimuli=job.stimuli, reuse_memory=job.reuse_memory,
                      allow_direct_comm=job.allow_direct_comm)


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Shard:
    """One planned unit of map work: an ordered slice of the suite."""

    index: int
    payloads: tuple[JobPayload, ...]

    @property
    def job_indices(self) -> tuple[int, ...]:
        return tuple(p.index for p in self.payloads)

    def fingerprint(self) -> str:
        """Hash of the member fingerprints *in order* -- the contract a
        worker's :class:`ShardOutcome` must echo to be reducible."""
        return content_hash(("shard", self.index,
                             tuple(p.fingerprint() for p in self.payloads)))


class ShardPlanner:
    """Deterministic suite partitioner: content fingerprint -> shard.

    ``assign`` buckets a payload by its fingerprint modulo the shard
    count, so the plan is a pure function of (suite content, shard
    count): independent of suite order, worker count and map order.
    Within a shard, jobs keep suite order -- together with the
    restore-by-index reduce this is what makes the sharded sweep
    bit-identical to the serial backend.
    """

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ShardError(f"need shards >= 1, got {shards}")
        self.shards = shards

    def assign(self, payload: JobPayload) -> int:
        return int(payload.fingerprint(), 16) % self.shards

    def plan(self, payloads: Sequence[JobPayload]) -> list[Shard]:
        """Partition ``payloads`` into at most ``shards`` non-empty shards."""
        buckets: list[list[JobPayload]] = [[] for _ in range(self.shards)]
        for payload in sorted(payloads, key=lambda p: p.index):
            buckets[self.assign(payload)].append(payload)
        return [Shard(i, tuple(bucket))
                for i, bucket in enumerate(buckets) if bucket]


# ----------------------------------------------------------------------
# map: what crosses the process boundary on the way back
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobSummary:
    """Compact result of one job, as shipped back by a shard worker.

    ``point`` is the ranked projection (None for failed jobs);
    ``stage_runs`` counts pipeline stages that actually executed (0 =
    fully served by the worker's cache).  Nothing here references flow
    artifacts, so a summary pickles in a few hundred bytes.
    """

    index: int
    label: str
    point: DesignPoint | None
    error: str | None
    seconds: float
    stage_runs: int

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class ShardOutcome:
    """Everything one worker returns for one shard.

    Echoes the shard's planned fingerprint and job coverage so the
    reduce stage can verify integrity, and carries the shard-window
    view of the worker's cache (a :meth:`StageCache.stats` delta) plus
    the in-worker wall clock.  ``front_indices`` are the shard-local
    Pareto candidates (job indices) the reduce stage merges.
    """

    shard_index: int
    fingerprint: str
    summaries: tuple[JobSummary, ...]
    seconds: float
    cache_stats: dict
    pid: int
    front_indices: tuple[int, ...] = ()
    #: True when the worker's cache was fabricated on first use because
    #: the pool initializer never ran: the shard executed against a cold
    #: default-size L1 with no persistent tier.  Reduce surfaces the
    #: count as ``cold_fallbacks`` in the merged cache stats.
    cache_fallback: bool = False
    #: Compact in-worker trace rows (:meth:`repro.obs.Tracer.compact`):
    #: the job/flow/stage/store spans this shard recorded inside its
    #: worker process.  Empty unless the coordinator requested tracing
    #: (``run_shard(..., trace=True)``); the coordinator re-parents the
    #: rows into its own trace under a per-shard span.
    spans: tuple = ()


#: Per-process state of a shard worker: one cache tier, initialized
#: once per process and shared by every shard the process executes.
#: With a ``store_path`` the tier is an L1 memory cache over the shared
#: on-disk L2, so workers warm-start from every previous run.
_WORKER_CACHE: CacheTier | None = None
#: True when :func:`_worker_cache` had to fabricate the cache itself
#: (the initializer never ran); echoed in every outcome of the worker.
_WORKER_CACHE_FALLBACK = False


def _build_worker_cache(max_entries: int,
                        store_path: str | None = None) -> CacheTier:
    l1 = StageCache(max_entries=max_entries)
    if store_path is None:
        return l1
    return TieredCache(l1, PersistentCache(ArtifactStore(store_path)))


def _init_worker(max_entries: int, store_path: str | None = None) -> None:
    global _WORKER_CACHE, _WORKER_CACHE_FALLBACK
    _WORKER_CACHE = _build_worker_cache(max_entries, store_path)
    _WORKER_CACHE_FALLBACK = False


def _worker_cache() -> CacheTier:
    global _WORKER_CACHE, _WORKER_CACHE_FALLBACK
    if _WORKER_CACHE is None:
        # the initializer never ran (direct in-process call, or a pool
        # that skipped it): run against a cold default-size cache, but
        # record the fallback -- every ShardOutcome of this process
        # carries ``cache_fallback=True`` so the reduce stage can
        # surface that its shards saw neither warm state nor the store.
        _WORKER_CACHE = StageCache(max_entries=DEFAULT_WORKER_CACHE_ENTRIES)
        _WORKER_CACHE_FALLBACK = True
    return _WORKER_CACHE


def run_shard(shard: Shard,
              job_timeout: float | None = None,
              trace: bool = False) -> ShardOutcome:
    """Execute one shard against the worker-local cache (the map body).

    Jobs run through the same :func:`~repro.flow.batch._run_outcome`
    path as the serial backend; only the compact summary leaves the
    worker.  ``job_timeout`` follows the shard entry of
    :data:`~repro.flow.batch.JOB_TIMEOUT_SEMANTICS`: checked when each
    job returns, expired jobs are reported failed and their results
    discarded, and the shard continues.

    With ``trace=True`` (set by the coordinator when *it* is tracing) a
    worker-local :class:`~repro.obs.Tracer` is active for the duration
    of the shard: every job span -- and the flow/stage/store spans
    nested inside it -- is recorded in-worker and shipped back as
    compact rows in ``ShardOutcome.spans`` for re-parenting.
    """
    tracer = Tracer() if trace else None
    cache = _worker_cache()
    window = cache.snapshot()
    started = time.perf_counter()
    summaries: list[JobSummary] = []
    with activate(tracer) if trace else nullcontext():
        for payload in shard.payloads:
            with obs_span("job", kind="job", job=payload.label,
                          backend="shard",
                          shard=shard.index) as job_span:
                outcome = _run_outcome(payload.to_job(), cache)
                error = outcome.error
                if error is None and job_timeout is not None \
                        and outcome.seconds >= job_timeout:
                    error = (f"TimeoutError: job exceeded {job_timeout}s "
                             f"budget (shard backend is non-preemptive: "
                             f"the job ran to completion in "
                             f"{outcome.seconds:.3f}s and its result "
                             f"was discarded)")
                job_span.set("ok", error is None)
            point = None
            stage_runs = 0
            if error is None:
                point = design_point_of(outcome.result, payload.label,
                                        payload.deadline)
                stage_runs = sum(outcome.result.stage_runs.values())
            summaries.append(JobSummary(index=payload.index,
                                        label=payload.label,
                                        point=point, error=error,
                                        seconds=outcome.seconds,
                                        stage_runs=stage_runs))
    # shard-local Pareto candidates: the reduce stage merges these
    # instead of recomputing dominance over every point from scratch
    points = [s.point for s in summaries if s.point is not None]
    front = set(ExplorationResult(points=points).pareto())
    front_indices = tuple(s.index for s in summaries
                          if s.point is not None and s.point in front)
    cache_stats = cache.stats(since=window)
    # rides through the numeric merge of StageCache.merge_stats, so the
    # sweep-wide view counts how many shards ran on a fallback cache
    cache_stats["cold_fallbacks"] = int(_WORKER_CACHE_FALLBACK)
    return ShardOutcome(shard_index=shard.index,
                        fingerprint=shard.fingerprint(),
                        summaries=tuple(summaries),
                        seconds=time.perf_counter() - started,
                        cache_stats=cache_stats,
                        pid=os.getpid(),
                        front_indices=front_indices,
                        cache_fallback=_WORKER_CACHE_FALLBACK,
                        spans=tracer.compact() if tracer is not None else ())


# ----------------------------------------------------------------------
# reduce
# ----------------------------------------------------------------------
def _check_shard_outcome(shard: Shard, outcome: ShardOutcome) -> None:
    """Verify one shard outcome against its plan entry (tamper guard)."""
    planned = shard.fingerprint()
    if outcome.fingerprint != planned:
        raise ShardError(
            f"shard {shard.index} outcome does not match the plan "
            f"(got fingerprint {outcome.fingerprint}, planned {planned}): "
            f"tampered or stale shard result")
    if tuple(s.index for s in outcome.summaries) != shard.job_indices:
        raise ShardError(
            f"shard {shard.index} outcome covers jobs "
            f"{[s.index for s in outcome.summaries]} but the plan assigns "
            f"{list(shard.job_indices)}: tampered or incomplete shard result")


def reduce_shards(plan: Sequence[Shard],
                  outcomes: Iterable[ShardOutcome],
                  failures: Mapping[int, str] | None = None,
                  ) -> tuple[dict[int, JobSummary], dict, tuple[int, ...]]:
    """Merge per-shard outcomes into suite-wide views (the reduce body).

    Every planned shard must be accounted for, either by a verified
    :class:`ShardOutcome` or by an entry in ``failures`` (worker died);
    anything else -- unknown shards, duplicates, fingerprint or coverage
    mismatches -- raises :class:`ShardError`.  Returns the summaries
    keyed by job index (failed shards synthesize failed summaries for
    their jobs), the merged cache statistics, and the union of the
    shard-local Pareto candidate indices.
    """
    failures = dict(failures or {})
    by_index = {shard.index: shard for shard in plan}
    summaries: dict[int, JobSummary] = {}
    cache_views = []
    front: list[int] = []
    seen: set[int] = set()
    for outcome in outcomes:
        shard = by_index.get(outcome.shard_index)
        if shard is None:
            raise ShardError(f"outcome for unplanned shard "
                             f"{outcome.shard_index}")
        if outcome.shard_index in seen:
            raise ShardError(f"duplicate outcome for shard "
                             f"{outcome.shard_index}")
        seen.add(outcome.shard_index)
        _check_shard_outcome(shard, outcome)
        for summary in outcome.summaries:
            summaries[summary.index] = summary
        cache_views.append(outcome.cache_stats)
        front.extend(outcome.front_indices)
    for shard in plan:
        if shard.index in seen:
            continue
        error = failures.get(shard.index)
        if error is None:
            raise ShardError(f"planned shard {shard.index} produced no "
                             f"outcome and no recorded failure")
        for payload in shard.payloads:
            summaries[payload.index] = JobSummary(
                index=payload.index, label=payload.label, point=None,
                error=f"ShardError: shard {shard.index} worker failed: "
                      f"{error}",
                seconds=0.0, stage_runs=0)
    return summaries, StageCache.merge_stats(cache_views), tuple(front)


@dataclass
class ShardSweepStats:
    """Map-reduce evidence of one sharded sweep."""

    #: Per-shard rows: index, jobs, in-worker seconds, worker pid and
    #: the shard-window cache view.
    shards: list[dict] = field(default_factory=list)
    #: Merged cache statistics across every shard window
    #: (:meth:`StageCache.merge_stats`).
    cache: dict = field(default_factory=dict)
    map_seconds: float = 0.0
    reduce_seconds: float = 0.0
    workers: int = 0
    planned_shards: int = 0
    #: Job indices of the merged per-shard Pareto candidates.
    front_candidates: tuple[int, ...] = ()


# ----------------------------------------------------------------------
# the sweep engine
# ----------------------------------------------------------------------
def sharded_sweep(jobs: Sequence[FlowJob], shards: int | None = None,
                  max_workers: int | None = None,
                  job_timeout: float | None = None,
                  progress: ProgressCallback | None = None,
                  map_order: str = "planned",
                  store_path: str | os.PathLike | None = None,
                  ) -> tuple[list[JobOutcome], ShardSweepStats]:
    """Plan, map and reduce a sweep; outcomes come back in input order.

    Backs ``BatchRunner(backend="shard")``.  Jobs failing
    :func:`~repro.flow.batch.payload_check` become failed outcomes at
    submission time (never planned); ``map_order`` ("planned" or
    "reversed") controls shard submission order and exists to *prove*
    order independence -- results are identical either way.  Progress
    streams per job, in shard completion order.

    ``store_path`` attaches a shared persistent L2 tier (see
    :mod:`repro.store`) under every worker's stage cache: workers of
    *this* run share each other's stage results through the store, and
    a later run -- any process, any shard count -- warm-starts from it.
    Results stay bit-identical to a storeless serial sweep; the merged
    ``stats.cache`` grows nested ``l1``/``l2`` views.
    """
    if map_order not in ("planned", "reversed"):
        raise ShardError(f"unknown map order {map_order!r}")
    jobs = list(jobs)
    total = len(jobs)
    with obs_span("sharded_sweep", kind="flow", backend="shard",
                  jobs=total) as sweep_span:
        outcomes, stats = _sharded_sweep(jobs, shards, max_workers,
                                         job_timeout, progress, map_order,
                                         store_path)
        sweep_span.set("shards", stats.planned_shards)
        sweep_span.set("workers", stats.workers)
        return outcomes, stats


def _sharded_sweep(jobs: list[FlowJob], shards: int | None,
                   max_workers: int | None, job_timeout: float | None,
                   progress: ProgressCallback | None, map_order: str,
                   store_path: str | os.PathLike | None,
                   ) -> tuple[list[JobOutcome], ShardSweepStats]:
    total = len(jobs)
    outcomes: list[JobOutcome | None] = [None] * total
    done_count = 0

    def emit(index: int, outcome: JobOutcome) -> None:
        nonlocal done_count
        outcomes[index] = outcome
        done_count += 1
        if progress is not None:
            progress(outcome, done_count, total)

    # submission-time validation: un-shippable jobs fail fast, named
    payloads: list[JobPayload] = []
    for index, job in enumerate(jobs):
        error = payload_check(job)
        if error is not None:
            emit(index, JobOutcome(job, error=error))
        else:
            payloads.append(payload_of(job, index))

    n_shards = shards or max_workers or os.cpu_count() or 1
    plan = ShardPlanner(n_shards).plan(payloads)
    workers = max_workers or os.cpu_count() or 1
    workers = max(1, min(workers, len(plan) or 1))
    stats = ShardSweepStats(workers=workers, planned_shards=len(plan))

    shard_outcomes: list[ShardOutcome] = []
    failures: dict[int, str] = {}
    map_started = time.perf_counter()
    if plan:
        order = list(plan) if map_order == "planned" \
            else list(reversed(plan))
        store_arg = os.fspath(store_path) if store_path is not None else None
        # when the coordinator is tracing, workers trace too: each shard
        # records its spans locally and ships them back in the outcome
        tracer = current_tracer()
        with ProcessPoolExecutor(
                max_workers=workers, initializer=_init_worker,
                initargs=(DEFAULT_WORKER_CACHE_ENTRIES, store_arg)) as pool:
            shard_of = {pool.submit(run_shard, shard, job_timeout,
                                    tracer is not None): shard
                        for shard in order}
            for future in as_completed(shard_of):
                shard = shard_of[future]
                try:
                    outcome = future.result()
                except Exception as exc:  # worker/pool death: fail the shard
                    failures[shard.index] = f"{type(exc).__name__}: {exc}"
                    continue
                shard_outcomes.append(outcome)
                if tracer is not None:
                    shard_span = tracer.record(
                        f"shard[{outcome.shard_index}]", kind="shard",
                        duration=outcome.seconds, shard=outcome.shard_index,
                        jobs=len(outcome.summaries), pid=outcome.pid)
                    tracer.adopt(outcome.spans,
                                 parent_id=shard_span.span_id,
                                 start_at=shard_span.start)
                # stream per-job progress as each shard completes; the
                # reduce below re-verifies the full plan coverage
                _check_shard_outcome(shard, outcome)
                for summary in outcome.summaries:
                    emit(summary.index, JobOutcome(
                        jobs[summary.index], error=summary.error,
                        seconds=summary.seconds, point=summary.point))
    stats.map_seconds = time.perf_counter() - map_started

    reduce_started = time.perf_counter()
    summaries, stats.cache, stats.front_candidates = \
        reduce_shards(plan, shard_outcomes, failures)
    for index, summary in summaries.items():
        if outcomes[index] is None:  # jobs of failed shards
            emit(index, JobOutcome(jobs[index], error=summary.error,
                                   seconds=summary.seconds,
                                   point=summary.point))
    stats.shards = [{"shard": o.shard_index, "jobs": len(o.summaries),
                     "seconds": round(o.seconds, 6), "pid": o.pid,
                     "cache": o.cache_stats,
                     "cache_fallback": o.cache_fallback}
                    for o in sorted(shard_outcomes,
                                    key=lambda o: o.shard_index)]
    stats.reduce_seconds = time.perf_counter() - reduce_started
    completed = [o for o in outcomes if o is not None]
    assert len(completed) == len(outcomes), "every job must have an outcome"
    return completed, stats


@dataclass
class SweepResult(ExplorationResult):
    """An exploration whose Pareto front is reduce-merged across shards.

    ``pareto()`` filters the union of the per-shard candidate fronts
    instead of re-testing dominance over every point -- the classic
    Pareto merge, which provably yields the same front (a globally
    non-dominated point is non-dominated in its shard; a dominated
    point is dominated by some candidate, by transitivity).  The result
    is bit-identical to :meth:`ExplorationResult.pareto` on the same
    points, which the shard determinism tests assert.
    """

    shard_stats: ShardSweepStats | None = None
    front_candidates: list[DesignPoint] = field(default_factory=list)

    def pareto(self) -> list[DesignPoint]:
        if not self.front_candidates:
            return super().pareto()
        candidates = set(self.front_candidates)
        by_graph: dict[str, list[DesignPoint]] = {}
        for point in self.front_candidates:
            by_graph.setdefault(point.graph, []).append(point)
        return [p for p in self.feasible_points()
                if p in candidates
                and not any(q.dominates(p) for q in by_graph[p.graph])]


def map_reduce_sweep(jobs: Sequence[FlowJob], shards: int | None = None,
                     max_workers: int | None = None,
                     job_timeout: float | None = None,
                     progress: ProgressCallback | None = None,
                     map_order: str = "planned",
                     store_path: str | os.PathLike | None = None,
                     ) -> SweepResult:
    """One-call sharded sweep: jobs in, ranked :class:`SweepResult` out."""
    from .batch import _point_from
    outcomes, stats = sharded_sweep(jobs, shards=shards,
                                    max_workers=max_workers,
                                    job_timeout=job_timeout,
                                    progress=progress, map_order=map_order,
                                    store_path=store_path)
    result = SweepResult(outcomes=outcomes, shard_stats=stats)
    point_of_index: dict[int, DesignPoint] = {}
    for index, outcome in enumerate(outcomes):
        if outcome.ok:
            point = _point_from(outcome)
            result.points.append(point)
            point_of_index[index] = point
        else:
            result.failures.append(outcome)
    result.front_candidates = [point_of_index[i]
                               for i in stats.front_candidates
                               if i in point_of_index]
    return result
