"""The end-to-end COOL design flow (paper Fig. 1) and its pipeline engine."""

from ..store import (ArtifactStore, PersistentCache, TieredCache)
from .pipeline import (CacheTier, FlowContext, PipelineError,
                       PipelineExecutor, Stage, StageCache, fingerprint_of,
                       stage_timer)
from .cool import CoolFlow, FlowResult, build_flow_stages, \
    select_eviction_victim
from .batch import (JOB_TIMEOUT_SEMANTICS, BatchRunner, DesignPoint,
                    DesignSpaceExplorer, ExplorationResult, FlowJob,
                    JobOutcome, design_point_of, payload_check)
from .shard import (Shard, ShardError, ShardOutcome, ShardPlanner,
                    ShardSweepStats, SweepResult, map_reduce_sweep,
                    reduce_shards, sharded_sweep)
from .timing import (DesignTimeModel, DesignTimeReport,
                     SYNTHESIS_SECONDS_PER_CLB)

__all__ = ["CoolFlow", "FlowResult", "build_flow_stages",
           "select_eviction_victim", "DesignTimeModel", "DesignTimeReport",
           "SYNTHESIS_SECONDS_PER_CLB", "Stage", "FlowContext",
           "PipelineExecutor", "PipelineError", "StageCache", "stage_timer",
           "fingerprint_of", "BatchRunner", "FlowJob", "JobOutcome",
           "DesignPoint", "ExplorationResult", "DesignSpaceExplorer",
           "JOB_TIMEOUT_SEMANTICS", "payload_check", "design_point_of",
           "ShardPlanner", "Shard", "ShardError", "ShardOutcome",
           "ShardSweepStats", "SweepResult", "sharded_sweep",
           "reduce_shards", "map_reduce_sweep",
           "CacheTier", "ArtifactStore", "PersistentCache", "TieredCache"]
