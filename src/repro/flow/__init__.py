"""The end-to-end COOL design flow (paper Fig. 1)."""

from .cool import CoolFlow, FlowResult
from .timing import (DesignTimeModel, DesignTimeReport,
                     SYNTHESIS_SECONDS_PER_CLB)

__all__ = ["CoolFlow", "FlowResult", "DesignTimeModel", "DesignTimeReport",
           "SYNTHESIS_SECONDS_PER_CLB"]
