"""The COOL design flow (paper Fig. 1), end to end.

``CoolFlow.run`` drives every reproduced stage on a task graph:

1. graph validation and cost estimation;
2. coupled hardware/software **partitioning** (MILP by default) giving
   the coloured graph + static schedule;
3. **co-synthesis**: STG construction, state minimization, memory
   allocation, communication refinement;
4. **controller synthesis**: system controller, data-path controllers
   (with exact post-HLS latencies), I/O controller, bus arbiter;
5. **high-level synthesis** of every hardware resource (shared
   datapaths) with CLB accounting against the device capacities;
6. **code generation**: VHDL for all hardware pieces, C per processor,
   the board netlist;
7. optional **co-simulation** against a stimulus, checked by the caller
   against the reference interpreter;
8. a **design-time report** combining measured stage times with the
   modelled hardware-synthesis times (:mod:`repro.flow.timing`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

from ..codegen.c import software_to_c
from ..codegen.netlist import Netlist, generate_netlist, netlist_text
from ..codegen.vhdl import datapath_to_vhdl, fsm_to_vhdl
from ..codegen.vhdl_check import check_vhdl
from ..comm.refine import CommPlan, refine_communication
from ..controllers.bus_arbiter import RoundRobinArbiter
from ..controllers.datapath_controller import (DatapathController,
                                               synthesize_datapath_controller)
from ..controllers.io_controller import IoController, synthesize_io_controller
from ..controllers.system_controller import (SystemController,
                                             synthesize_system_controller)
from ..graph.taskgraph import TaskGraph
from ..graph.validate import check_graph
from ..hls.driver import SharedDatapathResult, synthesize_resource
from ..partition.base import Partitioner, PartitionResult
from ..partition.milp import MilpPartitioner
from ..platform.architecture import TargetArchitecture
from ..sim.system import CoSimulation, SimResult
from ..stg.builder import build_stg
from ..stg.minimize import MinimizationReport, minimize_stg
from ..stg.states import Stg
from .timing import DesignTimeModel, DesignTimeReport

__all__ = ["CoolFlow", "FlowResult"]


@dataclass
class FlowResult:
    """Everything one run of the COOL flow produces."""

    graph: TaskGraph
    arch: TargetArchitecture
    partition_result: PartitionResult
    stg_full: Stg
    stg: Stg
    minimization: MinimizationReport
    plan: CommPlan
    controller: SystemController
    io_controller: IoController
    datapath_controllers: dict[str, DatapathController]
    hls_results: dict[str, SharedDatapathResult]
    vhdl_files: dict[str, str]
    c_files: dict[str, str]
    netlist: Netlist
    sim_result: SimResult | None
    stage_seconds: dict[str, float] = field(default_factory=dict)
    design_time: DesignTimeReport | None = None

    @property
    def makespan(self) -> int:
        return self.partition_result.makespan

    @property
    def clbs_per_fpga(self) -> dict[str, int]:
        return {r: h.total_area_clbs for r, h in self.hls_results.items()}

    def report(self) -> str:
        """Multi-paragraph text report of the implementation."""
        lines = [f"COOL flow report for {self.graph.name!r} on "
                 f"{self.arch.name!r}"]
        lines.append("-" * 64)
        summary = self.partition_result.summary()
        lines.append(f"partitioning [{summary['algorithm']}]: "
                     f"{summary['hw_nodes']} HW / {summary['sw_nodes']} SW "
                     f"nodes, {summary['cut_edges']} cut edges, "
                     f"makespan {summary['makespan']} ticks")
        lines.append(f"STG: {self.minimization.states_before} states -> "
                     f"{self.minimization.states_after} after minimization "
                     f"({self.minimization.reduction:.0%} removed)")
        stats = self.plan.stats()
        lines.append(f"communication: {stats['memory_mapped']} memory-mapped"
                     f" + {stats['direct']} direct channels, "
                     f"{stats['memory_words']} memory words")
        for resource, clbs in self.clbs_per_fpga.items():
            cap = self.arch.fpga(resource).clb_capacity
            lines.append(f"hardware {resource}: {clbs}/{cap} CLBs")
        lines.append(f"generated: {len(self.vhdl_files)} VHDL files, "
                     f"{len(self.c_files)} C files, netlist with "
                     f"{len(self.netlist.components)} components / "
                     f"{len(self.netlist.nets)} nets")
        if self.sim_result is not None:
            lines.append(f"co-simulation: {self.sim_result.cycles} cycles, "
                         f"bus busy {self.sim_result.bus_busy_ticks}")
        if self.design_time is not None:
            lines.append(f"design time: {self.design_time.total_s / 60:.1f} "
                         f"min total, {self.design_time.hw_fraction:.0%} in "
                         f"hardware synthesis")
        return "\n".join(lines)


class CoolFlow:
    """Configurable end-to-end driver."""

    def __init__(self, arch: TargetArchitecture,
                 partitioner: Partitioner | None = None,
                 reuse_memory: bool = True,
                 allow_direct_comm: bool = True,
                 design_time_model: DesignTimeModel | None = None) -> None:
        self.arch = arch
        self.partitioner = partitioner if partitioner is not None \
            else MilpPartitioner()
        self.reuse_memory = reuse_memory
        self.allow_direct_comm = allow_direct_comm
        self.design_time_model = design_time_model if design_time_model \
            is not None else DesignTimeModel()

    def run(self, graph: TaskGraph,
            stimuli: Mapping[str, list[int]] | None = None,
            deadline: int | None = None) -> FlowResult:
        """Run the full flow; ``stimuli`` enables co-simulation."""
        from ..partition.base import PartitioningProblem

        stage_seconds: dict[str, float] = {}

        def timed(stage: str):
            class _Timer:
                def __enter__(self_inner):
                    self_inner.start = time.perf_counter()

                def __exit__(self_inner, *exc):
                    stage_seconds[stage] = stage_seconds.get(stage, 0.0) \
                        + time.perf_counter() - self_inner.start
            return _Timer()

        with timed("validate"):
            check_graph(graph)

        with timed("partitioning"):
            problem = PartitioningProblem(graph, self.arch,
                                          deadline=deadline)
            partition_result = self.partitioner.partition(problem)
        partition = partition_result.partition
        schedule = partition_result.schedule

        # co-synthesis with HLS area feedback: partitioning works on the
        # quick estimator; if the *synthesized* datapath of a device
        # overflows its CLB capacity, the largest node is evicted to
        # software and co-synthesis reruns (the estimate-update loop of
        # iterative co-design flows)
        repairs = 0
        while True:
            with timed("stg"):
                stg_full = build_stg(schedule)
                stg, minimization = minimize_stg(stg_full)

            with timed("communication"):
                plan = refine_communication(
                    schedule, self.arch, reuse_memory=self.reuse_memory,
                    allow_direct=self.allow_direct_comm)

            with timed("hls"):
                hls_results: dict[str, SharedDatapathResult] = {}
                for fpga in self.arch.fpgas:
                    hls_results[fpga.name] = synthesize_resource(
                        graph, partition, fpga.name, fpga)

            overflowing = [f for f in self.arch.fpgas
                           if hls_results[f.name].total_area_clbs
                           > f.clb_capacity]
            if not overflowing or not self.arch.processors:
                break
            with timed("partitioning"):
                from ..partition.base import evaluate_mapping
                worst = overflowing[0]
                on_device = partition.nodes_on(worst.name)
                victim = max(
                    on_device,
                    key=lambda v: hls_results[worst.name]
                    .node_results[v].area_clbs)
                mapping = dict(partition.mapping)
                for node in graph.nodes:
                    if node.is_io:
                        mapping.pop(node.name, None)
                mapping[victim] = self.arch.processor_names[0]
                partition, schedule, feasibility = evaluate_mapping(
                    problem, mapping)
                repairs += 1
                partition_result = PartitionResult(
                    partition, schedule, feasibility,
                    partition_result.algorithm,
                    partition_result.runtime_s,
                    {**partition_result.stats, "area_repairs": repairs})
            if repairs > len(graph):
                raise RuntimeError("HLS area repair failed to converge")

        with timed("controllers"):
            controller = synthesize_system_controller(stg)
            io_controller = synthesize_io_controller(graph)
            datapath_controllers: dict[str, DatapathController] = {}
            for fpga in self.arch.fpgas:
                nodes = partition.nodes_on(fpga.name)
                if not nodes:
                    continue
                latencies = hls_results[fpga.name].latencies
                datapath_controllers[fpga.name] = \
                    synthesize_datapath_controller(partition, fpga.name,
                                                   latencies)
            arbiter = RoundRobinArbiter(
                ["sysctl"] + list(partition.resources_used))

        with timed("codegen"):
            vhdl_files: dict[str, str] = {}
            for fsm in controller.fsms:
                vhdl_files[f"{fsm.name}.vhd"] = fsm_to_vhdl(fsm)
            vhdl_files["ioc.vhd"] = fsm_to_vhdl(io_controller.fsm)
            vhdl_files["arbiter.vhd"] = fsm_to_vhdl(arbiter.to_fsm())
            for resource, dpc in datapath_controllers.items():
                vhdl_files[f"dpc_{resource}.vhd"] = fsm_to_vhdl(dpc.fsm)
            for resource, hls in hls_results.items():
                if hls.shared_rtl is not None and hls.node_results:
                    vhdl_files[f"dp_{resource}.vhd"] = \
                        datapath_to_vhdl(hls.shared_rtl)
            for name, text in vhdl_files.items():
                problems = check_vhdl(text)
                if problems:
                    raise ValueError(f"generated VHDL {name} rejected: "
                                     + "; ".join(problems))
            c_files = {}
            for proc in self.arch.processors:
                if partition.nodes_on(proc.name):
                    c_files[f"{proc.name}.c"] = software_to_c(
                        graph, partition, schedule, plan, proc.name)
            netlist = generate_netlist(partition, self.arch, controller,
                                       plan)

        sim_result: SimResult | None = None
        if stimuli is not None:
            with timed("cosim"):
                hls_latencies = {}
                for resource, hls in hls_results.items():
                    if hls.latencies:
                        fpga = self.arch.fpga(resource)
                        ratio = self.arch.bus.clock_hz / fpga.clock_hz
                        hls_latencies[resource] = {
                            n: max(1, round(c * ratio))
                            for n, c in hls.latencies.items()}
                cosim = CoSimulation(graph, partition, schedule, plan,
                                     controller, self.arch, stimuli,
                                     latencies=hls_latencies)
                sim_result = cosim.run()

        design_time = DesignTimeReport(measured_stages=dict(stage_seconds))
        design_time.hw_synthesis_s = self.design_time_model.hardware_seconds(
            {r: h.total_area_clbs for r, h in hls_results.items()})
        design_time.sw_compile_s = self.design_time_model.software_seconds(
            len(c_files))

        return FlowResult(
            graph=graph, arch=self.arch,
            partition_result=partition_result,
            stg_full=stg_full, stg=stg, minimization=minimization,
            plan=plan, controller=controller,
            io_controller=io_controller,
            datapath_controllers=datapath_controllers,
            hls_results=hls_results,
            vhdl_files=vhdl_files, c_files=c_files, netlist=netlist,
            sim_result=sim_result, stage_seconds=stage_seconds,
            design_time=design_time,
        )
