"""The COOL design flow (paper Fig. 1) as a staged pipeline.

The flow is built from dependency-tracked :class:`~repro.flow.pipeline.Stage`
objects executed by a :class:`~repro.flow.pipeline.PipelineExecutor`:

=============== =============================================== ==========================
stage           inputs                                          outputs
=============== =============================================== ==========================
validate        graph                                           validated
partitioning    graph, arch, deadline, partitioner              partition_result, ...
stg             schedule                                        stg_full, stg, minimization
communication   schedule, arch, comm_options                    plan
hls             graph, partition, arch                          hls_results
controllers     graph, stg, partition, hls_results, arch        controller, ioc, dpcs, ...
codegen         graph, partition, schedule, plan, ctrls, hls    vhdl_files, c_files, netlist
cosim           graph, partition, schedule, plan, ctrl, stimuli sim_result
=============== =============================================== ==========================

Every artifact is content-fingerprinted, so a stage re-runs only when an
input actually changed.  The HLS area-repair loop exploits this: it
iterates *partitioning -> hls* alone, and STG construction /
communication refinement run exactly once on the converged schedule
instead of being rebuilt for every discarded intermediate partition
(``FlowResult.stage_runs`` makes this observable).  A per-flow
:class:`~repro.flow.pipeline.StageCache` additionally reuses stage
outputs across ``run`` calls, so re-running an unchanged (graph,
architecture) pair costs dictionary lookups.

:class:`CoolFlow` keeps its historical interface -- construct with an
architecture and options, call :meth:`CoolFlow.run` -- and returns the
same :class:`FlowResult`; it is now a thin facade over the pipeline.
Batch fan-out and design-space exploration on top of this engine live in
:mod:`repro.flow.batch`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..automata import AutomataError
from ..codegen.c import software_to_c
from ..codegen.netlist import Netlist, generate_netlist, netlist_text
from ..codegen.vhdl import (datapath_to_vhdl, fsm_guard_literals,
                            fsm_to_vhdl, guard_literal_count)
from ..codegen.vhdl_check import check_vhdl
from ..controllers.guards import harvest_care_sets
from ..comm.refine import CommPlan, refine_communication
from ..controllers.bus_arbiter import RoundRobinArbiter
from ..controllers.datapath_controller import (DatapathController,
                                               synthesize_datapath_controller)
from ..controllers.io_controller import IoController, synthesize_io_controller
from ..controllers.system_controller import (SystemController,
                                             synthesize_system_controller)
from ..controllers.verify import (DEFAULT_MAX_PRODUCT_STATES,
                                  CompositionCheck, verify_composition)
from ..graph.partition import Partition
from ..graph.taskgraph import TaskGraph
from ..graph.validate import check_graph
from ..hls.driver import SharedDatapathResult, synthesize_resource
from ..obs import span as obs_span
from ..partition.base import (Partitioner, PartitioningProblem,
                              PartitionResult, evaluate_mapping)
from ..partition.milp import MilpPartitioner
from ..platform.architecture import TargetArchitecture
from ..schedule.schedule import Schedule
from ..sim.system import CoSimulation, SimResult
from ..stg.builder import build_stg
from ..stg.minimize import MinimizationReport, minimize_stg
from ..stg.states import Stg
from ..store import ArtifactStore, PersistentCache, TieredCache
from .pipeline import (CacheTier, FlowContext, PipelineExecutor, Stage,
                       StageCache, stage_timer)
from .timing import DesignTimeModel, DesignTimeReport

__all__ = ["CoolFlow", "FlowResult", "build_flow_stages",
           "select_eviction_victim"]


@dataclass
class FlowResult:
    """Everything one run of the COOL flow produces.

    The file dictionaries and partition stats are owned by the caller;
    the deep co-synthesis artifacts (STGs, communication plan, HLS
    results, controllers) may be shared with the flow's stage cache and
    with other results of the same flow -- treat them as read-only.
    """

    graph: TaskGraph
    arch: TargetArchitecture
    partition_result: PartitionResult
    stg_full: Stg
    stg: Stg
    minimization: MinimizationReport
    plan: CommPlan
    controller: SystemController
    io_controller: IoController
    datapath_controllers: dict[str, DatapathController]
    hls_results: dict[str, SharedDatapathResult]
    vhdl_files: dict[str, str]
    c_files: dict[str, str]
    netlist: Netlist
    sim_result: SimResult | None
    #: Product-of-controllers vs minimized-STG equivalence evidence
    #: (None when the flow ran with ``verify_composition=False``).
    composition_check: CompositionCheck | None = None
    #: Guard-simplification evidence of the codegen stage: VHDL guard
    #: literal counts before/after and whether reachability care sets
    #: were harvested (None when ``simplify_guards=False``).
    guard_report: dict | None = None
    stage_seconds: dict[str, float] = field(default_factory=dict)
    design_time: DesignTimeReport | None = None
    #: How often each pipeline stage actually executed during this run
    #: (0 = served entirely from the stage cache).
    stage_runs: dict[str, int] = field(default_factory=dict)
    #: Window view of the flow's cache over this run
    #: (:meth:`StageCache.stats`); tiered flows carry nested ``l1`` /
    #: ``l2`` views plus the promotion count.
    cache_stats: dict | None = None

    @property
    def makespan(self) -> int:
        return self.partition_result.makespan

    @property
    def clbs_per_fpga(self) -> dict[str, int]:
        return {r: h.total_area_clbs for r, h in self.hls_results.items()}

    def report(self) -> str:
        """Multi-paragraph text report of the implementation."""
        lines = [f"COOL flow report for {self.graph.name!r} on "
                 f"{self.arch.name!r}"]
        lines.append("-" * 64)
        summary = self.partition_result.summary()
        lines.append(f"partitioning [{summary['algorithm']}]: "
                     f"{summary['hw_nodes']} HW / {summary['sw_nodes']} SW "
                     f"nodes, {summary['cut_edges']} cut edges, "
                     f"makespan {summary['makespan']} ticks")
        lines.append(f"STG: {self.minimization.states_before} states -> "
                     f"{self.minimization.states_after} after minimization "
                     f"({self.minimization.reduction:.0%} removed)")
        stats = self.plan.stats()
        lines.append(f"communication: {stats['memory_mapped']} memory-mapped"
                     f" + {stats['direct']} direct channels, "
                     f"{stats['memory_words']} memory words")
        for resource, clbs in self.clbs_per_fpga.items():
            cap = self.arch.fpga(resource).clb_capacity
            lines.append(f"hardware {resource}: {clbs}/{cap} CLBs")
        if self.composition_check is not None:
            check = self.composition_check
            verdict = "equivalent" if check.equivalent \
                else "MISMATCH: " + "; ".join(check.mismatches)
            if check.tier == "symbolic":
                oracle = f", explicit oracle {check.oracle}" \
                    if check.oracle else ""
                evidence = (f"symbolic fixpoint, "
                            f"{check.product_states} product states, "
                            f"{check.projections_checked} projections, "
                            f"{check.bdd_nodes} BDD nodes "
                            f"(ite hit rate {check.bdd_ite_hit_rate:.0%})"
                            f"{oracle}, streamed restarts included")
            elif check.tier == "bisimulation":
                evidence = (f"exhaustive bisimulation, "
                            f"{check.product_states} product states, "
                            f"{check.projections_checked} projections, "
                            f"streamed restarts included")
            else:
                evidence = (f"sampled, {check.environments} environments "
                            f"x {check.activations} activations")
            lines.append(f"verified composition: controllers x STG "
                         f"{verdict} ({evidence})")
        if self.guard_report is not None:
            before = self.guard_report["guard_literals_before"]
            after = self.guard_report["guard_literals_after"]
            saved = f" (-{1 - after / before:.0%})" if before else ""
            care = "reachability don't-cares" \
                if self.guard_report["care_sets"] else "structural only"
            lines.append(f"guard simplification: {before} -> {after} VHDL "
                         f"guard literals{saved}, {care}")
        lines.append(f"generated: {len(self.vhdl_files)} VHDL files, "
                     f"{len(self.c_files)} C files, netlist with "
                     f"{len(self.netlist.components)} components / "
                     f"{len(self.netlist.nets)} nets")
        if self.sim_result is not None:
            lines.append(f"co-simulation: {self.sim_result.cycles} cycles, "
                         f"bus busy {self.sim_result.bus_busy_ticks}")
        if self.design_time is not None:
            lines.append(f"design time: {self.design_time.total_s / 60:.1f} "
                         f"min total, {self.design_time.hw_fraction:.0%} in "
                         f"hardware synthesis")
        if self.cache_stats is not None and "l2" in self.cache_stats:
            l1, l2 = self.cache_stats["l1"], self.cache_stats["l2"]
            lines.append(
                f"stage cache: {self.cache_stats['hit_rate']:.0%} of stage "
                f"lookups served "
                f"(L1 memory {l1['hits']}/{l1['hits'] + l1['misses']}, "
                f"L2 store {l2['hits']}/{l2['hits'] + l2['misses']}, "
                f"{self.cache_stats['promotions']} promoted)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# stage bodies (pure with respect to their declared inputs)
# ----------------------------------------------------------------------
def _stage_validate(ctx: FlowContext) -> dict[str, Any]:
    check_graph(ctx.get("graph"))
    return {"validated": True}


def _stage_partition(ctx: FlowContext) -> dict[str, Any]:
    problem = PartitioningProblem(ctx.get("graph"), ctx.get("arch"),
                                  deadline=ctx.get("deadline"))
    result: PartitionResult = ctx.get("partitioner").partition(problem)
    return {"partition_result": result, "partition": result.partition,
            "schedule": result.schedule}


def _stage_stg(ctx: FlowContext) -> dict[str, Any]:
    stg_full = build_stg(ctx.get("schedule"))
    stg, minimization = minimize_stg(stg_full)
    return {"stg_full": stg_full, "stg": stg, "minimization": minimization}


def _stage_communication(ctx: FlowContext) -> dict[str, Any]:
    reuse_memory, allow_direct = ctx.get("comm_options")
    plan = refine_communication(ctx.get("schedule"), ctx.get("arch"),
                                reuse_memory=reuse_memory,
                                allow_direct=allow_direct)
    return {"plan": plan}


def _stage_hls(ctx: FlowContext) -> dict[str, Any]:
    graph, partition = ctx.get("graph"), ctx.get("partition")
    arch: TargetArchitecture = ctx.get("arch")
    hls_results: dict[str, SharedDatapathResult] = {}
    for fpga in arch.fpgas:
        hls_results[fpga.name] = synthesize_resource(graph, partition,
                                                     fpga.name, fpga)
    return {"hls_results": hls_results}


def _stage_controllers(ctx: FlowContext) -> dict[str, Any]:
    graph, partition = ctx.get("graph"), ctx.get("partition")
    arch: TargetArchitecture = ctx.get("arch")
    hls_results = ctx.get("hls_results")
    controller = synthesize_system_controller(ctx.get("stg"))
    io_controller = synthesize_io_controller(graph)
    datapath_controllers: dict[str, DatapathController] = {}
    for fpga in arch.fpgas:
        if not partition.nodes_on(fpga.name):
            continue
        latencies = hls_results[fpga.name].latencies
        datapath_controllers[fpga.name] = \
            synthesize_datapath_controller(partition, fpga.name, latencies)
    arbiter = RoundRobinArbiter(["sysctl"] + list(partition.resources_used))
    return {"controller": controller, "io_controller": io_controller,
            "datapath_controllers": datapath_controllers, "arbiter": arbiter}


def _stage_verify(ctx: FlowContext) -> dict[str, Any]:
    max_states, strategy = ctx.get("verify_options")
    check = verify_composition(ctx.get("stg"), ctx.get("controller"),
                               graph=ctx.get("graph"),
                               max_states=max_states, strategy=strategy)
    return {"composition_check": check}


def _stage_codegen(ctx: FlowContext) -> dict[str, Any]:
    graph, partition = ctx.get("graph"), ctx.get("partition")
    arch: TargetArchitecture = ctx.get("arch")
    hls_results = ctx.get("hls_results")
    controller = ctx.get("controller")
    simplify, guard_max_states = ctx.get("codegen_options")
    care_sets: dict = {}
    care_reason: str | None = None
    if simplify:
        try:
            care_sets = harvest_care_sets(controller,
                                          max_states=guard_max_states)
        except AutomataError as exc:
            # structural simplification still applies; only the
            # reachability don't-cares are lost
            care_reason = str(exc)
    vhdl_files: dict[str, str] = {}
    literals_before = 0

    def emit(fsm) -> str:
        nonlocal literals_before
        if not simplify:
            return fsm_to_vhdl(fsm)
        literals_before += fsm_guard_literals(fsm)
        return fsm_to_vhdl(fsm, simplify=True,
                           care_of=care_sets.get(fsm.name))

    for fsm in controller.fsms:
        vhdl_files[f"{fsm.name}.vhd"] = emit(fsm)
    vhdl_files["ioc.vhd"] = emit(ctx.get("io_controller").fsm)
    vhdl_files["arbiter.vhd"] = emit(ctx.get("arbiter").to_fsm())
    for resource, dpc in ctx.get("datapath_controllers").items():
        vhdl_files[f"dpc_{resource}.vhd"] = emit(dpc.fsm)
    guard_report: dict[str, Any] | None = None
    if simplify:
        guard_report = {
            "simplified": True,
            "care_sets": not care_reason,
            "care_fallback": care_reason,
            "guard_literals_before": literals_before,
            "guard_literals_after": sum(guard_literal_count(text)
                                        for text in vhdl_files.values()),
        }
    for resource, hls in hls_results.items():
        if hls.shared_rtl is not None and hls.node_results:
            vhdl_files[f"dp_{resource}.vhd"] = datapath_to_vhdl(hls.shared_rtl)
    for name, text in vhdl_files.items():
        problems = check_vhdl(text)
        if problems:
            raise ValueError(f"generated VHDL {name} rejected: "
                             + "; ".join(problems))
    c_files: dict[str, str] = {}
    for proc in arch.processors:
        if partition.nodes_on(proc.name):
            c_files[f"{proc.name}.c"] = software_to_c(
                graph, partition, ctx.get("schedule"), ctx.get("plan"),
                proc.name, controller=controller)
    netlist = generate_netlist(partition, arch, controller, ctx.get("plan"))
    return {"vhdl_files": vhdl_files, "c_files": c_files,
            "netlist": netlist, "guard_report": guard_report}


def _stage_cosim(ctx: FlowContext) -> dict[str, Any]:
    arch: TargetArchitecture = ctx.get("arch")
    hls_latencies: dict[str, dict[str, int]] = {}
    for resource, hls in ctx.get("hls_results").items():
        if hls.latencies:
            fpga = arch.fpga(resource)
            ratio = arch.bus.clock_hz / fpga.clock_hz
            hls_latencies[resource] = {n: max(1, round(c * ratio))
                                       for n, c in hls.latencies.items()}
    cosim = CoSimulation(ctx.get("graph"), ctx.get("partition"),
                         ctx.get("schedule"), ctx.get("plan"),
                         ctx.get("controller"), arch, ctx.get("stimuli"),
                         latencies=hls_latencies)
    return {"sim_result": cosim.run()}


def build_flow_stages() -> list[Stage]:
    """The COOL flow as an ordered stage-graph (one entry per Fig. 1 box)."""
    return [
        Stage("validate", ("graph",), ("validated",), _stage_validate),
        Stage("partitioning",
              ("validated", "graph", "arch", "deadline", "partitioner"),
              ("partition_result", "partition", "schedule"),
              _stage_partition),
        Stage("stg", ("schedule",), ("stg_full", "stg", "minimization"),
              _stage_stg),
        Stage("communication", ("schedule", "arch", "comm_options"),
              ("plan",), _stage_communication),
        Stage("hls", ("graph", "partition", "arch"), ("hls_results",),
              _stage_hls),
        Stage("controllers",
              ("graph", "stg", "partition", "hls_results", "arch"),
              ("controller", "io_controller", "datapath_controllers",
               "arbiter"),
              _stage_controllers),
        Stage("verify", ("stg", "controller", "graph", "verify_options"),
              ("composition_check",), _stage_verify),
        Stage("codegen",
              ("graph", "partition", "schedule", "plan", "controller",
               "io_controller", "datapath_controllers", "arbiter",
               "hls_results", "arch", "codegen_options"),
              ("vhdl_files", "c_files", "netlist", "guard_report"),
              _stage_codegen),
        Stage("cosim",
              ("graph", "partition", "schedule", "plan", "controller",
               "hls_results", "arch", "stimuli"),
              ("sim_result",), _stage_cosim),
    ]


# ----------------------------------------------------------------------
# HLS area repair
# ----------------------------------------------------------------------
def select_eviction_victim(problem: PartitioningProblem,
                           partition: Partition, device: str,
                           node_areas: Mapping[str, int], processor: str
                           ) -> tuple[str, Partition, Schedule, Any]:
    """Pick the node to move from ``device`` to ``processor``.

    Candidates are tried in order of decreasing synthesized area (most
    area-saving first); the first eviction that keeps the deadline
    feasible wins.  When every candidate breaks the deadline the
    largest one is evicted anyway -- area repair must make progress, and
    an overfull FPGA is not implementable at any makespan.

    Returns ``(victim, partition, schedule, feasibility)`` for the
    chosen eviction.
    """
    candidates = sorted(node_areas, key=lambda n: (-node_areas[n], n))
    if not candidates:
        raise RuntimeError(
            f"HLS area repair failed to converge: device {device!r} "
            "overflows with no evictable nodes left")
    graph = problem.graph
    base = {name: res for name, res in partition.mapping.items()
            if not graph.node(name).is_io}
    fallback: tuple[str, Partition, Schedule, Any] | None = None
    for victim in candidates:
        mapping = dict(base)
        mapping[victim] = processor
        moved, schedule, report = evaluate_mapping(problem, mapping)
        if fallback is None:
            fallback = (victim, moved, schedule, report)
        if report.deadline_ok:
            return victim, moved, schedule, report
    return fallback


class CoolFlow:
    """Configurable end-to-end driver (facade over the stage pipeline)."""

    @staticmethod
    def default_partitioner() -> Partitioner:
        """The engine used when none is given (the paper's MILP core).

        Single source of truth for the default: batch job labels derive
        the displayed algorithm from here, so the two cannot drift.
        """
        return MilpPartitioner()

    def __init__(self, arch: TargetArchitecture,
                 partitioner: Partitioner | None = None,
                 reuse_memory: bool = True,
                 allow_direct_comm: bool = True,
                 design_time_model: DesignTimeModel | None = None,
                 stage_cache: CacheTier | None = None,
                 verify_composition: bool = True,
                 verify_max_states: int = DEFAULT_MAX_PRODUCT_STATES,
                 verify_strategy: str = "auto",
                 simplify_guards: bool = True,
                 store_path: "str | None" = None) -> None:
        self.arch = arch
        self.partitioner = partitioner if partitioner is not None \
            else self.default_partitioner()
        self.reuse_memory = reuse_memory
        self.allow_direct_comm = allow_direct_comm
        #: Run the ``verify`` stage (product-of-controllers vs minimized
        #: STG equivalence) as part of every flow.
        self.verify_composition = verify_composition
        #: Tier knobs forwarded to
        #: :func:`repro.controllers.verify.verify_composition`:
        #: largest reachable product the *explicit* bisimulation tier
        #: attempts (the default symbolic tier is unbounded), and the
        #: strategy ("auto" | "symbolic" | "exhaustive" | "sampled").
        #: Part of the verify stage's fingerprint, so changing either
        #: re-runs exactly that stage.
        self.verify_max_states = verify_max_states
        self.verify_strategy = verify_strategy
        #: Route the codegen stage's FSM cascades through the symbolic
        #: guard engine (dead-branch pruning, same-successor merging,
        #: reachability don't-cares from the composition product).
        #: Part of the codegen stage's fingerprint, so toggling it
        #: re-runs exactly that stage.
        self.simplify_guards = simplify_guards
        self.design_time_model = design_time_model if design_time_model \
            is not None else DesignTimeModel()
        #: Shared across ``run`` calls of this flow (and across flows
        #: when one cache instance is passed to several of them).  With
        #: ``store_path=`` the cache is tiered over a persistent
        #: artifact store (:mod:`repro.store`): stage results are
        #: fingerprint-keyed on disk, so an unchanged (graph, arch)
        #: pair is served from the store even in a fresh process --
        #: :meth:`FlowResult.report` then shows the per-tier hit rates.
        cache: CacheTier = stage_cache if stage_cache is not None \
            else StageCache()
        if store_path is not None:
            cache = TieredCache(cache,
                                PersistentCache(ArtifactStore(store_path)))
        self.stage_cache = cache

    def run(self, graph: TaskGraph,
            stimuli: Mapping[str, list[int]] | None = None,
            deadline: int | None = None) -> FlowResult:
        """Run the full flow; ``stimuli`` enables co-simulation."""
        with obs_span("flow", kind="flow", graph=graph.name,
                      arch=self.arch.name) as flow_span:
            result = self._run(graph, stimuli, deadline)
            flow_span.set("stages_run", sum(result.stage_runs.values()))
            flow_span.set("cache_hits", result.cache_stats.get("hits", 0))
            return result

    def _run(self, graph: TaskGraph,
             stimuli: Mapping[str, list[int]] | None,
             deadline: int | None) -> FlowResult:
        cache_window = self.stage_cache.snapshot()
        executor = PipelineExecutor(build_flow_stages(),
                                    cache=self.stage_cache)
        ctx = FlowContext(graph=graph, arch=self.arch, deadline=deadline,
                          partitioner=self.partitioner,
                          comm_options=(self.reuse_memory,
                                        self.allow_direct_comm),
                          verify_options=(self.verify_max_states,
                                          self.verify_strategy),
                          codegen_options=(self.simplify_guards,
                                           self.verify_max_states))

        # HLS area feedback: partitioning works on the quick estimator;
        # if the *synthesized* datapath of a device overflows its CLB
        # capacity, a node is evicted to software and HLS reruns (the
        # estimate-update loop of iterative co-design flows).  Only the
        # partitioning/hls artifacts change here, so the executor never
        # touches the STG or communication stages inside this loop.
        problem = PartitioningProblem(graph, self.arch, deadline=deadline)
        repairs = 0
        while True:
            executor.request(ctx, ["hls_results"])
            hls_results: dict[str, SharedDatapathResult] = \
                ctx.get("hls_results")
            overflowing = [f for f in self.arch.fpgas
                           if hls_results[f.name].total_area_clbs
                           > f.clb_capacity]
            if not overflowing or not self.arch.processors:
                break
            with stage_timer("partitioning", executor.stage_seconds):
                worst = overflowing[0]
                partition: Partition = ctx.get("partition")
                node_areas = {
                    name: hls_results[worst.name].node_results[name].area_clbs
                    for name in partition.nodes_on(worst.name)}
                victim, partition, schedule, feasibility = \
                    select_eviction_victim(problem, partition, worst.name,
                                           node_areas,
                                           self.arch.processor_names[0])
                repairs += 1
                previous: PartitionResult = ctx.get("partition_result")
                partition_result = PartitionResult(
                    partition, schedule, feasibility, previous.algorithm,
                    previous.runtime_s,
                    {**previous.stats, "area_repairs": repairs})
            ctx.put("partition_result", partition_result)
            ctx.put("partition", partition)
            ctx.put("schedule", schedule)
            if repairs > len(graph):
                raise RuntimeError("HLS area repair failed to converge")
        if repairs:
            # remember the *converged* mapping for these inputs so the
            # next run with the same (graph, arch, deadline, partitioner)
            # skips the eviction search entirely
            executor.commit_outputs(ctx, "partitioning")

        # co-synthesis of the converged schedule: STG construction,
        # communication refinement, controllers, code generation.
        requested = ["minimization", "plan", "vhdl_files", "c_files",
                     "netlist"]
        if self.verify_composition:
            requested.append("composition_check")
        executor.request(ctx, requested)

        sim_result: SimResult | None = None
        if stimuli is not None:
            ctx.put("stimuli", stimuli)
            executor.request(ctx, ["sim_result"])
            sim_result = ctx.get("sim_result")

        hls_results = ctx.get("hls_results")
        c_files: dict[str, str] = ctx.get("c_files")
        design_time = DesignTimeReport(
            measured_stages=dict(executor.stage_seconds))
        design_time.hw_synthesis_s = self.design_time_model.hardware_seconds(
            {r: h.total_area_clbs for r, h in hls_results.items()})
        design_time.sw_compile_s = self.design_time_model.software_seconds(
            len(c_files))

        # the top-level dict artifacts (and partition stats) are copied
        # so the common caller mutations cannot corrupt the stage cache;
        # the deep co-synthesis artifacts (stg, plan, hls internals) are
        # shared with the cache and must be treated as read-only
        partition_result: PartitionResult = ctx.get("partition_result")
        partition_result = dataclasses.replace(
            partition_result, stats=dict(partition_result.stats))
        return FlowResult(
            graph=graph, arch=self.arch,
            partition_result=partition_result,
            stg_full=ctx.get("stg_full"), stg=ctx.get("stg"),
            minimization=ctx.get("minimization"),
            plan=ctx.get("plan"), controller=ctx.get("controller"),
            io_controller=ctx.get("io_controller"),
            datapath_controllers=dict(ctx.get("datapath_controllers")),
            hls_results=dict(hls_results),
            vhdl_files=dict(ctx.get("vhdl_files")), c_files=dict(c_files),
            netlist=ctx.get("netlist"),
            sim_result=sim_result,
            composition_check=ctx.get("composition_check")
            if self.verify_composition else None,
            guard_report=ctx.get("guard_report"),
            stage_seconds=dict(executor.stage_seconds),
            design_time=design_time,
            stage_runs=dict(executor.stage_runs),
            cache_stats=self.stage_cache.stats(since=cache_window),
        )
