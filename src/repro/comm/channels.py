"""Abstract communication channels.

After partitioning, every cut edge of the coloured graph is an abstract
channel: a producer unit, a consumer unit, a payload shape.  Co-synthesis
replaces these abstractions with concrete mechanisms
(:mod:`repro.comm.refine`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.partition import Partition

__all__ = ["AbstractChannel", "channels_of"]


@dataclass(frozen=True)
class AbstractChannel:
    """One inter-unit data transfer before mechanism selection."""

    edge: str
    producer_unit: str
    consumer_unit: str
    width: int
    words: int

    @property
    def bits(self) -> int:
        return self.width * self.words


def channels_of(partition: Partition) -> list[AbstractChannel]:
    """All abstract channels of a partition, in graph edge order."""
    out = []
    for edge in partition.cut_edges():
        out.append(AbstractChannel(
            edge=edge.name,
            producer_unit=partition.resource_of(edge.src),
            consumer_unit=partition.resource_of(edge.dst),
            width=edge.width,
            words=edge.words,
        ))
    return out
