"""Communication refinement: abstract channels -> concrete mechanisms.

Paper Section 2: "Communication mechanisms for memory mapped I/O and
direct communication are inserted to replace the abstract communication
channels."

Selection rule (matching the paper's board):

* a channel between two *hardware* units (FPGA -> FPGA) becomes a
  **direct** point-to-point register with req/ack handshake -- both
  endpoints are synthesized hardware, so dedicated wires are free and
  the shared bus is relieved;
* every channel with a processor or the I/O controller on either end is
  **memory-mapped**: processors can only talk through load/store, so
  the payload goes through allocated cells in the shared RAM.

The result couples each channel with its mechanism and, for
memory-mapped channels, with its :class:`repro.stg.memory.MemoryCell`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..platform.architecture import TargetArchitecture
from ..schedule.schedule import Schedule
from ..stg.memory import MemoryCell, MemoryMap, allocate_memory
from .channels import AbstractChannel, channels_of
from .protocols import DIRECT, MEMORY_MAPPED, Protocol

__all__ = ["RefinedChannel", "CommPlan", "refine_communication"]


@dataclass(frozen=True)
class RefinedChannel:
    """One channel after mechanism selection."""

    channel: AbstractChannel
    protocol: Protocol
    cell: MemoryCell | None  # populated for memory-mapped channels

    @property
    def edge(self) -> str:
        return self.channel.edge

    @property
    def is_memory_mapped(self) -> bool:
        return self.protocol.name == MEMORY_MAPPED.name

    @property
    def is_direct(self) -> bool:
        return self.protocol.name == DIRECT.name


@dataclass
class CommPlan:
    """The complete communication refinement of one implementation."""

    channels: dict[str, RefinedChannel]
    memory_map: MemoryMap

    def channel(self, edge_name: str) -> RefinedChannel:
        try:
            return self.channels[edge_name]
        except KeyError:
            raise KeyError(f"edge {edge_name!r} has no refined channel") \
                from None

    def memory_mapped(self) -> list[RefinedChannel]:
        return [c for c in self.channels.values() if c.is_memory_mapped]

    def direct(self) -> list[RefinedChannel]:
        return [c for c in self.channels.values() if c.is_direct]

    def stats(self) -> dict:
        return {
            "channels": len(self.channels),
            "memory_mapped": len(self.memory_mapped()),
            "direct": len(self.direct()),
            "memory_words": self.memory_map.words_used,
        }


def _is_direct_candidate(channel: AbstractChannel,
                         arch: TargetArchitecture) -> bool:
    return (arch.is_hardware(channel.producer_unit)
            and arch.is_hardware(channel.consumer_unit))


def refine_communication(schedule: Schedule, arch: TargetArchitecture,
                         reuse_memory: bool = True,
                         allow_direct: bool = True) -> CommPlan:
    """Select a mechanism for every abstract channel of the schedule.

    ``allow_direct=False`` forces everything through shared memory (the
    configuration of the paper's board without inter-FPGA traces; also
    the ablation baseline).
    """
    partition = schedule.partition
    abstract = channels_of(partition)

    direct_edges = {c.edge for c in abstract
                    if allow_direct and _is_direct_candidate(c, arch)}

    # memory cells only for the memory-mapped subset
    mm_edges = [e for e in partition.cut_edges()
                if e.name not in direct_edges]
    memory_map = allocate_memory(schedule, arch, reuse=reuse_memory,
                                 edges=mm_edges)

    channels: dict[str, RefinedChannel] = {}
    for channel in abstract:
        if channel.edge in direct_edges:
            channels[channel.edge] = RefinedChannel(channel, DIRECT, None)
        else:
            channels[channel.edge] = RefinedChannel(
                channel, MEMORY_MAPPED, memory_map.cell(channel.edge))
    return CommPlan(channels, memory_map)
