"""Communication synthesis: channels, protocols, refinement."""

from .channels import AbstractChannel, channels_of
from .protocols import DIRECT, MEMORY_MAPPED, Protocol
from .refine import CommPlan, RefinedChannel, refine_communication

__all__ = [
    "AbstractChannel", "channels_of", "DIRECT", "MEMORY_MAPPED", "Protocol",
    "CommPlan", "RefinedChannel", "refine_communication",
]
