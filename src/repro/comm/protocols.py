"""Communication protocol definitions.

Declarative descriptions of the two mechanisms COOL inserts ("memory
mapped I/O and direct communication", paper Section 2).  Code generation
emits the port lists and the co-simulator uses the timing fields.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Protocol", "MEMORY_MAPPED", "DIRECT"]


@dataclass(frozen=True)
class Protocol:
    """Timing and signalling contract of one communication mechanism."""

    name: str
    #: signals added to both endpoints (per channel)
    signals: tuple[str, ...]
    #: does the transfer occupy the shared bus?
    uses_bus: bool
    #: fixed cycles per transferred word once granted
    cycles_per_word: int
    #: handshake overhead in cycles per burst
    handshake_cycles: int

    def burst_cycles(self, words: int) -> int:
        """Cycles of one burst of ``words`` payload words."""
        return self.handshake_cycles + self.cycles_per_word * max(words, 0)


#: Shared-memory communication over the system bus: the producer writes
#: its memory cells, the consumer later reads them (two bus bursts, both
#: arbitrated).  Address/data/strobe signalling, as on the paper's
#: memory card.
MEMORY_MAPPED = Protocol(
    name="memory_mapped",
    signals=("addr", "wdata", "rdata", "wr_en", "rd_en", "ack"),
    uses_bus=True,
    cycles_per_word=2,
    handshake_cycles=2,
)

#: Dedicated point-to-point register with a four-phase req/ack
#: handshake: used between hardware units, no bus involvement.
DIRECT = Protocol(
    name="direct",
    signals=("data", "req", "ack"),
    uses_bus=False,
    cycles_per_word=1,
    handshake_cycles=2,
)
