"""Rendering of STGs and memory maps (paper Fig. 3 artefacts)."""

from __future__ import annotations

from .memory import MemoryMap
from .states import StateKind, Stg

__all__ = ["stg_to_dot", "memory_map_text", "stg_summary_text"]

_FILL = {
    StateKind.WAIT: "lightyellow",
    StateKind.EXEC: "lightblue",
    StateKind.DONE: "palegreen",
    StateKind.RESET: "lightsalmon",
    StateKind.GLOBAL_RESET: "tomato",
    StateKind.GLOBAL_EXEC: "skyblue",
    StateKind.GLOBAL_DONE: "limegreen",
}


def stg_to_dot(stg: Stg) -> str:
    """DOT rendering of an STG, coloured by state kind."""
    lines = [f'digraph "{stg.name}" {{', "  rankdir=TB;"]
    for state in stg.states:
        shape = "doublecircle" if state.name == stg.initial else "circle"
        label = state.name
        lines.append(
            f'  "{state.name}" [shape={shape} style=filled '
            f'fillcolor={_FILL[state.kind]} label="{label}"];')
    for t in stg.transitions:
        cond = " & ".join(t.conditions)
        act = ", ".join(t.actions)
        label = cond
        if act:
            label = f"{cond} / {act}" if cond else f"/ {act}"
        lines.append(f'  "{t.src}" -> "{t.dst}" [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def stg_summary_text(stg: Stg) -> str:
    """One-paragraph structural summary (used by benches and reports)."""
    stats = stg.stats()
    by_kind = ", ".join(f"{k}:{v}" for k, v in sorted(stats["by_kind"].items()))
    return (f"STG {stg.name}: {stats['states']} states "
            f"({by_kind}), {stats['transitions']} transitions, "
            f"{stats['inputs']} input signals, "
            f"{stats['outputs']} output signals")


def memory_map_text(memory_map: MemoryMap) -> str:
    """Textual memory map in address order (paper Fig. 3 right half)."""
    lines = [f"memory map on {memory_map.device} "
             f"(base 0x{memory_map.base_address:04X}, "
             f"{memory_map.words_used} words used, "
             f"reuse={'on' if memory_map.reuse else 'off'})"]
    lines.append(f"{'address':>8}  {'words':>5}  {'live':>13}  edge")
    for row in memory_map.table():
        live = f"[{row['live'][0]},{row['live'][1]})"
        lines.append(f"{row['address']:>8}  {row['words']:>5}  "
                     f"{live:>13}  {row['edge']}")
    return "\n".join(lines)
