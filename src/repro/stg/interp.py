"""Token-based execution semantics of STGs.

The STG is concurrent: the global reset state forks into one chain per
processing unit, X and D are synchronisation barriers.  Execution is
marked-graph semantics:

* a state *activates* once all its incoming transitions have fired
  (the initial state starts active);
* an active state's outgoing transition fires as soon as its condition
  signals are all asserted (conditions are *latched*: once a signal was
  seen asserted during the activation it stays usable, modelling the
  controller's done-flag registers);
* firing emits the transition's actions;
* the activation completes when the GLOBAL_DONE state activates.

Since the automaton-kernel refactor the semantics itself lives in
:class:`repro.automata.TokenExecutor`; :class:`StgExecutor` is the
name-level view of it.  It keeps two jobs: it is the reference
semantics against which state minimization is verified (identical
action traces for identical signal traces), and it *is* the
system-controller model that steers the co-simulation
(:mod:`repro.sim`), exactly the role the synthesized controller plays
on the board.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..automata import TokenExecutor
from .states import StateKind, Stg, StgError

__all__ = ["StgExecutor", "FiredTransition"]


@dataclass(frozen=True)
class FiredTransition:
    """Record of one transition firing (for traces and tests)."""

    step: int
    src: str
    dst: str
    actions: tuple[str, ...]


class StgExecutor:
    """Stepwise interpreter of one STG activation (kernel token view)."""

    def __init__(self, stg: Stg) -> None:
        if stg.initial is None:
            raise StgError("STG has no initial state")
        self.stg = stg
        automaton = stg.to_automaton()
        done_states = [automaton.index_of(s.name)
                       for s in stg.states_of_kind(StateKind.GLOBAL_DONE)]
        self._kernel = TokenExecutor(automaton, final=done_states)
        self._symbols = automaton.symbols
        self._trace_view: list[FiredTransition] = []

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Start a fresh activation."""
        self._kernel.reset()
        self._trace_view = []

    @property
    def done(self) -> bool:
        """True once the GLOBAL_DONE state has activated."""
        return self._kernel.done

    @property
    def step_count(self) -> int:
        return self._kernel.step_count

    @property
    def latched(self) -> set[str]:
        """Currently latched condition signals, by name."""
        return {self._symbols.name_of(s) for s in self._kernel.latched}

    @property
    def active(self) -> set[str]:
        """Currently active state names."""
        automaton = self._kernel.automaton
        return {automaton.name_of(s) for s in self._kernel.active}

    @property
    def fired_in(self) -> dict[str, int]:
        automaton = self._kernel.automaton
        return {automaton.name_of(i): n
                for i, n in enumerate(self._kernel.fired_in)}

    @property
    def fired_out(self) -> dict[str, int]:
        automaton = self._kernel.automaton
        return {automaton.name_of(i): n
                for i, n in enumerate(self._kernel.fired_out)}

    @property
    def trace(self) -> list[FiredTransition]:
        """The firing trace with state/signal names resolved."""
        kernel_trace = self._kernel.trace
        view = self._trace_view
        if len(view) < len(kernel_trace):
            automaton = self._kernel.automaton
            for firing in kernel_trace[len(view):]:
                view.append(FiredTransition(
                    firing.step, automaton.name_of(firing.src),
                    automaton.name_of(firing.dst),
                    self._symbols.names_of(firing.actions)))
        return view

    # ------------------------------------------------------------------
    def step(self, signals: set[str] | None = None) -> list[str]:
        """Latch ``signals``, fire every enabled transition, return actions.

        Fires transitions to a fixed point within the step, so an
        unguarded chain collapses into one step -- matching a controller
        that traverses action states in consecutive clock cycles faster
        than the units it observes.
        """
        ids = self._symbols.ids_of(signals) if signals else None
        emitted = self._kernel.step(ids)
        return [self._symbols.name_of(a) for a in emitted]

    def run(self, signal_schedule: list[set[str]],
            max_extra_steps: int = 1000) -> list[str]:
        """Feed a signal trace, then run until done; returns all actions."""
        emitted = self._kernel.run(
            [self._symbols.ids_of(signals) for signals in signal_schedule],
            max_extra_steps=max_extra_steps)
        return [self._symbols.name_of(a) for a in emitted]

    def action_trace(self) -> list[tuple[str, ...]]:
        """Per-firing action tuples, in firing order (minimization oracle)."""
        return [self._symbols.names_of(actions)
                for actions in self._kernel.action_trace()]
