"""Token-based execution semantics of STGs.

The STG is concurrent: the global reset state forks into one chain per
processing unit, X and D are synchronisation barriers.  The executor
implements marked-graph semantics:

* a state *activates* once all its incoming transitions have fired
  (the initial state starts active);
* an active state's outgoing transition fires as soon as its condition
  signals are all asserted (conditions are *latched*: once a signal was
  seen asserted during the activation it stays usable, modelling the
  controller's done-flag registers);
* firing emits the transition's actions;
* the activation completes when the GLOBAL_DONE state activates.

This executor has two jobs: it is the reference semantics against which
state minimization is verified (identical action traces for identical
signal traces), and it *is* the system-controller model that steers the
co-simulation (:mod:`repro.sim`), exactly the role the synthesized
controller plays on the board.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .states import StateKind, Stg, StgError

__all__ = ["StgExecutor", "FiredTransition"]


@dataclass(frozen=True)
class FiredTransition:
    """Record of one transition firing (for traces and tests)."""

    step: int
    src: str
    dst: str
    actions: tuple[str, ...]


@dataclass
class StgExecutor:
    """Stepwise interpreter of one STG activation."""

    stg: Stg
    latched: set[str] = field(default_factory=set)
    active: set[str] = field(default_factory=set)
    fired_in: dict[str, int] = field(default_factory=dict)
    fired_out: dict[str, int] = field(default_factory=dict)
    trace: list[FiredTransition] = field(default_factory=list)
    step_count: int = 0

    def __post_init__(self) -> None:
        if self.stg.initial is None:
            raise StgError("STG has no initial state")
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Start a fresh activation."""
        self.latched = set()
        self.active = {self.stg.initial}
        self.fired_in = {s.name: 0 for s in self.stg.states}
        self.fired_out = {s.name: 0 for s in self.stg.states}
        self.trace = []
        self.step_count = 0

    @property
    def done(self) -> bool:
        """True once the GLOBAL_DONE state has activated."""
        done_states = self.stg.states_of_kind(StateKind.GLOBAL_DONE)
        return any(s.name in self.active for s in done_states)

    # ------------------------------------------------------------------
    def step(self, signals: set[str] | None = None) -> list[str]:
        """Latch ``signals``, fire every enabled transition, return actions.

        Fires transitions to a fixed point within the step, so an
        unguarded chain collapses into one step -- matching a controller
        that traverses action states in consecutive clock cycles faster
        than the units it observes.
        """
        if signals:
            self.latched.update(signals)
        self.step_count += 1
        emitted: list[str] = []
        progress = True
        while progress:
            progress = False
            for state_name in sorted(self.active):
                for transition in self.stg.out_transitions(state_name):
                    if self._already_fired(transition):
                        continue
                    if not set(transition.conditions) <= self.latched:
                        continue
                    self._fire(transition)
                    emitted.extend(transition.actions)
                    progress = True
        return emitted

    def run(self, signal_schedule: list[set[str]],
            max_extra_steps: int = 1000) -> list[str]:
        """Feed a signal trace, then run until done; returns all actions."""
        actions: list[str] = []
        for signals in signal_schedule:
            actions.extend(self.step(signals))
        extra = 0
        while not self.done and extra < max_extra_steps:
            before = len(self.trace)
            actions.extend(self.step())
            extra += 1
            if len(self.trace) == before:
                break  # no progress without new signals
        return actions

    # ------------------------------------------------------------------
    def _already_fired(self, transition) -> bool:
        return any(f.src == transition.src and f.dst == transition.dst
                   and f.actions == transition.actions
                   for f in self.trace)

    def _fire(self, transition) -> None:
        self.trace.append(FiredTransition(self.step_count, transition.src,
                                          transition.dst, transition.actions))
        self.fired_out[transition.src] += 1
        self.fired_in[transition.dst] += 1
        # source deactivates when all its out-transitions fired
        if self.fired_out[transition.src] == \
                len(self.stg.out_transitions(transition.src)):
            self.active.discard(transition.src)
        # destination activates when all its in-transitions fired
        if self.fired_in[transition.dst] == \
                len(self.stg.in_transitions(transition.dst)):
            self.active.add(transition.dst)

    def action_trace(self) -> list[tuple[str, ...]]:
        """Per-firing action tuples, in firing order (minimization oracle)."""
        return [f.actions for f in self.trace if f.actions]
