"""State/transition graphs: the fundamental co-synthesis data structure.

Paper Section 2: "a state/transition graph (STG) is generated [...] by
adding a WAIT- (w), an EXECUTION- (x) and a DONE-state (d) for each node
of the coloured partitioning graph [...].  In addition, RESET-states (r)
are inserted for each hardware resource and processor and global system
states (X, R, D) are added.  Edges are added according to the computed
schedule and the data dependencies."

States carry their role and origin; transitions carry the *conditions*
(input signals that must be asserted, conjunctive) and *actions* (output
commands the system controller issues when taking the transition).  The
signal name conventions are shared with controller synthesis, code
generation and the co-simulator:

=================  ====================================================
signal             meaning
=================  ====================================================
``done_<node>``    processing unit reports completion of ``<node>``
``start_<node>``   controller commands activation of ``<node>``
``read_<edge>``    controller moves a memory cell to the consumer unit
``write_<edge>``   controller stores a produced value to its memory cell
``reset_<res>``    controller resets processing unit ``<res>``
=================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..automata import Automaton, AutomatonBuilder
from ..fingerprint import content_hash

__all__ = ["StateKind", "StgState", "StgTransition", "Stg", "StgError"]


class StgError(ValueError):
    """Raised for malformed state/transition graphs."""


class StateKind(Enum):
    """Role of an STG state (paper nomenclature)."""

    WAIT = "w"
    EXEC = "x"
    DONE = "d"
    RESET = "r"
    GLOBAL_RESET = "R"
    GLOBAL_EXEC = "X"
    GLOBAL_DONE = "D"


#: Kinds attached to a task-graph node.
NODE_KINDS = (StateKind.WAIT, StateKind.EXEC, StateKind.DONE)
#: Kinds attached to a processing resource.
RESOURCE_KINDS = (StateKind.RESET,)
#: Global system states.
GLOBAL_KINDS = (StateKind.GLOBAL_RESET, StateKind.GLOBAL_EXEC,
                StateKind.GLOBAL_DONE)


@dataclass(frozen=True)
class StgState:
    """One STG state.

    ``node`` is set for w/x/d states, ``resource`` for r states and for
    w/x/d (the unit executing the node); global states carry neither.
    """

    name: str
    kind: StateKind
    node: str | None = None
    resource: str | None = None

    def __post_init__(self) -> None:
        if self.kind in NODE_KINDS and self.node is None:
            raise StgError(f"state {self.name!r}: {self.kind.name} needs a node")
        if self.kind in RESOURCE_KINDS and self.resource is None:
            raise StgError(f"state {self.name!r}: RESET needs a resource")
        if self.kind in GLOBAL_KINDS and (self.node or self.resource):
            raise StgError(f"state {self.name!r}: global states are unbound")


@dataclass(frozen=True)
class StgTransition:
    """A guarded transition ``src -> dst``.

    ``conditions`` is a conjunction of input signals that must hold;
    ``actions`` are the output commands issued when the transition fires.
    Both are sorted tuples so transitions compare structurally.
    """

    src: str
    dst: str
    conditions: tuple[str, ...] = ()
    actions: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "conditions", tuple(sorted(self.conditions)))
        object.__setattr__(self, "actions", tuple(sorted(self.actions)))


class Stg:
    """A state/transition graph with one initial (global reset) state."""

    def __init__(self, name: str = "stg") -> None:
        self.name = name
        self._states: dict[str, StgState] = {}
        self._transitions: list[StgTransition] = []
        self._out: dict[str, list[StgTransition]] = {}
        self._in: dict[str, list[StgTransition]] = {}
        self.initial: str | None = None
        self._version = 0
        self._automaton_cache: tuple[tuple, Automaton] | None = None

    # ------------------------------------------------------------------
    def add_state(self, state: StgState) -> StgState:
        if state.name in self._states:
            raise StgError(f"duplicate state {state.name!r}")
        self._states[state.name] = state
        self._out[state.name] = []
        self._in[state.name] = []
        self._version += 1
        return state

    def add_transition(self, transition: StgTransition) -> StgTransition:
        for endpoint in (transition.src, transition.dst):
            if endpoint not in self._states:
                raise StgError(f"transition references unknown state "
                               f"{endpoint!r}")
        self._transitions.append(transition)
        self._out[transition.src].append(transition)
        self._in[transition.dst].append(transition)
        self._version += 1
        return transition

    # ------------------------------------------------------------------
    @property
    def states(self) -> list[StgState]:
        return list(self._states.values())

    @property
    def transitions(self) -> list[StgTransition]:
        return list(self._transitions)

    def state(self, name: str) -> StgState:
        try:
            return self._states[name]
        except KeyError:
            raise StgError(f"unknown state {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._states

    def __len__(self) -> int:
        return len(self._states)

    def out_transitions(self, name: str) -> list[StgTransition]:
        self.state(name)
        return list(self._out[name])

    def in_transitions(self, name: str) -> list[StgTransition]:
        self.state(name)
        return list(self._in[name])

    def states_of_kind(self, kind: StateKind) -> list[StgState]:
        return [s for s in self._states.values() if s.kind == kind]

    def fingerprint(self) -> str:
        """Content hash over states and transitions (pipeline cache key)."""
        return content_hash((
            self.name, self.initial,
            tuple((s.name, s.kind.value, s.node, s.resource)
                  for s in self._states.values()),
            tuple((t.src, t.dst, t.conditions, t.actions)
                  for t in self._transitions)))

    def to_automaton(self, isolate_initial: bool = False) -> Automaton:
        """The kernel view of this graph (cached until the next mutation).

        Per-state keys carry (kind, resource) -- the minimizer's initial
        partition never merges across units or roles.  With
        ``isolate_initial`` the entry state additionally gets a key of
        its own: under token semantics redirecting transitions *into*
        the initially-active state would change activation counting, so
        STG minimization keeps it apart.
        """
        cache_key = (self._version, self.initial, isolate_initial)
        if self._automaton_cache is not None \
                and self._automaton_cache[0] == cache_key:
            return self._automaton_cache[1]
        builder = AutomatonBuilder(self.name)
        for state in self._states.values():
            builder.add_state(
                state.name,
                key=(state.kind.value, state.resource,
                     isolate_initial and state.name == self.initial))
        for t in self._transitions:
            builder.add_transition(t.src, t.dst, conditions=t.conditions,
                                   actions=t.actions)
        automaton = builder.build(initial=self.initial)
        self._automaton_cache = (cache_key, automaton)
        return automaton

    def states_of_node(self, node: str) -> list[StgState]:
        return [s for s in self._states.values() if s.node == node]

    def states_on_resource(self, resource: str) -> list[StgState]:
        return [s for s in self._states.values() if s.resource == resource]

    # ------------------------------------------------------------------
    def input_signals(self) -> list[str]:
        """All condition signals, sorted."""
        signals: set[str] = set()
        for t in self._transitions:
            signals.update(t.conditions)
        return sorted(signals)

    def output_signals(self) -> list[str]:
        """All action signals, sorted."""
        signals: set[str] = set()
        for t in self._transitions:
            signals.update(t.actions)
        return sorted(signals)

    def reachable(self) -> set[str]:
        """States reachable from the initial state."""
        if self.initial is None:
            return set()
        seen = {self.initial}
        stack = [self.initial]
        while stack:
            current = stack.pop()
            for t in self._out[current]:
                if t.dst not in seen:
                    seen.add(t.dst)
                    stack.append(t.dst)
        return seen

    def validate(self) -> list[str]:
        """Structural problems; empty list means well-formed."""
        problems: list[str] = []
        if self.initial is None:
            problems.append("no initial state set")
        elif self.initial not in self._states:
            problems.append(f"initial state {self.initial!r} unknown")
        unreachable = set(self._states) - self.reachable()
        if self.initial is not None and unreachable:
            problems.append(f"unreachable states: {sorted(unreachable)}")
        for state in self._states.values():
            if not self._out[state.name] \
                    and state.kind != StateKind.GLOBAL_DONE:
                problems.append(f"dead-end state {state.name!r}")
        return problems

    def stats(self) -> dict:
        kinds = {}
        for state in self._states.values():
            kinds[state.kind.value] = kinds.get(state.kind.value, 0) + 1
        return {
            "states": len(self._states),
            "transitions": len(self._transitions),
            "by_kind": kinds,
            "inputs": len(self.input_signals()),
            "outputs": len(self.output_signals()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Stg({self.name!r}, {len(self._states)} states, "
                f"{len(self._transitions)} transitions)")
