"""State/transition graph co-synthesis: builder, minimizer, memory map."""

from .states import StateKind, Stg, StgError, StgState, StgTransition
from .builder import (GLOBAL_DONE_NAME, GLOBAL_EXEC_NAME, GLOBAL_RESET_NAME,
                      build_stg, done_name, exec_name, global_state,
                      wait_name)
from .interp import FiredTransition, StgExecutor
from .minimize import MinimizationReport, minimize_stg
from .memory import MemoryCell, MemoryError, MemoryMap, allocate_memory
from .render import memory_map_text, stg_summary_text, stg_to_dot

__all__ = [
    "StateKind", "Stg", "StgError", "StgState", "StgTransition",
    "build_stg", "done_name", "exec_name", "wait_name", "global_state",
    "GLOBAL_RESET_NAME", "GLOBAL_EXEC_NAME", "GLOBAL_DONE_NAME",
    "FiredTransition", "StgExecutor", "MinimizationReport", "minimize_stg",
    "MemoryCell", "MemoryError", "MemoryMap", "allocate_memory",
    "memory_map_text", "stg_summary_text", "stg_to_dot",
]
