"""Memory-cell allocation for inter-unit data transfers (paper Fig. 3).

"[...] memory cells are allocated (starting from a base address) for
each edge representing a data transfer between different processing
units."

Every cut edge of the partition receives a block of consecutive memory
words in the shared RAM.  Two allocators:

* :func:`allocate_memory` with ``reuse=True`` (default) performs
  lifetime analysis on the static schedule -- a cell lives from the
  start of its write burst to the end of its read burst -- and packs
  blocks first-fit so cells with disjoint lifetimes share addresses;
* ``reuse=False`` is the naive allocator that lays all blocks out
  consecutively (the paper's base construction, and the baseline of the
  memory-ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..partition.feasibility import edge_memory_words
from ..platform.architecture import TargetArchitecture
from ..schedule.schedule import Schedule, ScheduleError

__all__ = ["MemoryCell", "MemoryMap", "MemoryError", "allocate_memory"]


class MemoryError(ScheduleError):
    """Raised when transfers do not fit the shared memory."""


@dataclass(frozen=True)
class MemoryCell:
    """One allocated block: ``words`` cells at ``address`` for ``edge``.

    ``live_from`` / ``live_until`` are the schedule ticks during which
    the block holds live data (write start to last read end).
    """

    edge: str
    address: int
    words: int
    live_from: int
    live_until: int

    @property
    def end_address(self) -> int:
        return self.address + self.words

    def overlaps_in_time(self, other: "MemoryCell") -> bool:
        return not (self.live_until <= other.live_from
                    or other.live_until <= self.live_from)

    def overlaps_in_space(self, other: "MemoryCell") -> bool:
        return not (self.end_address <= other.address
                    or other.end_address <= self.address)


@dataclass
class MemoryMap:
    """The complete allocation of a partitioned, scheduled system."""

    device: str
    base_address: int
    cells: dict[str, MemoryCell]
    reuse: bool

    def cell(self, edge_name: str) -> MemoryCell:
        try:
            return self.cells[edge_name]
        except KeyError:
            raise MemoryError(f"no memory cell for edge {edge_name!r}") \
                from None

    @property
    def words_used(self) -> int:
        """Footprint: highest occupied offset relative to the base."""
        if not self.cells:
            return 0
        return max(c.end_address for c in self.cells.values()) \
            - self.base_address

    @property
    def end_address(self) -> int:
        return self.base_address + self.words_used

    def validate(self) -> list[str]:
        """No two cells may overlap in both space and lifetime."""
        problems = []
        cells = list(self.cells.values())
        for i, a in enumerate(cells):
            if a.address < self.base_address:
                problems.append(f"cell {a.edge} below base address")
            for b in cells[i + 1:]:
                if a.overlaps_in_space(b) and a.overlaps_in_time(b):
                    problems.append(
                        f"cells {a.edge} and {b.edge} collide "
                        f"(addresses {a.address}+{a.words} / "
                        f"{b.address}+{b.words})")
        return problems

    def table(self) -> list[dict]:
        """Rows for reports: edge, address, words, lifetime."""
        rows = []
        for cell in sorted(self.cells.values(),
                           key=lambda c: (c.address, c.edge)):
            rows.append({
                "edge": cell.edge,
                "address": f"0x{cell.address:04X}",
                "words": cell.words,
                "live": (cell.live_from, cell.live_until),
            })
        return rows


def _lifetime(schedule: Schedule, edge) -> tuple[int, int]:
    """Cell lifetime: write-burst start to *consumer completion*.

    The static schedule may place the read burst long before the
    consumer actually executes (gap filling on the bus), but the
    synthesized system controller issues the read when the consumer's
    WAIT state exits (STG semantics).  The cell therefore stays live
    until the consumer node finishes -- the conservative bound that
    keeps reuse safe in the self-timed implementation.
    """
    transfers = schedule.transfers_of(edge)
    writes = [t for t in transfers if t.direction == "write"]
    reads = [t for t in transfers if t.direction == "read"]
    if not writes or not reads:
        raise MemoryError(
            f"cut edge {edge.name} has no scheduled write+read transfers")
    consumer_end = schedule.entry(edge.dst).end
    return (min(t.start for t in writes),
            max(max(t.end for t in reads), consumer_end))


def allocate_memory(schedule: Schedule, arch: TargetArchitecture,
                    reuse: bool = True, edges=None) -> MemoryMap:
    """Allocate shared-memory cells for cut edges of the schedule.

    ``edges`` restricts the allocation to a subset of the cut edges
    (communication refinement excludes channels implemented as direct
    point-to-point links); the default allocates for every cut edge.
    """
    partition = schedule.partition
    base = arch.memory.base_address
    cells: dict[str, MemoryCell] = {}

    pool = list(partition.cut_edges()) if edges is None else list(edges)
    # deterministic order: by lifetime start, then edge name
    cut = sorted(pool, key=lambda e: (_lifetime(schedule, e)[0], e.name))

    next_free = base
    placed: list[MemoryCell] = []
    for edge in cut:
        words = edge_memory_words(edge, arch)
        live_from, live_until = _lifetime(schedule, edge)
        if not reuse:
            address = next_free
            next_free += words
        else:
            address = base
            while True:
                candidate = MemoryCell(edge.name, address, words,
                                       live_from, live_until)
                clash = next((c for c in placed
                              if c.overlaps_in_space(candidate)
                              and c.overlaps_in_time(candidate)), None)
                if clash is None:
                    break
                address = clash.end_address
        cell = MemoryCell(edge.name, address, words, live_from, live_until)
        cells[edge.name] = cell
        placed.append(cell)

    memory_map = MemoryMap(arch.memory.name, base, cells, reuse)
    if memory_map.end_address > arch.memory.end_address:
        raise MemoryError(
            f"allocation needs {memory_map.words_used} words, device "
            f"{arch.memory.name!r} offers {arch.memory.words}")
    problems = memory_map.validate()
    if problems:
        raise MemoryError("inconsistent allocation:\n  - "
                          + "\n  - ".join(problems))
    return memory_map
