"""STG construction from the coloured partitioning graph and schedule.

The construction follows paper Section 2 exactly:

* a WAIT / EXECUTION / DONE state per node of the coloured graph;
* a RESET state per processing resource (processors, FPGAs and the I/O
  controller, which is a processing unit of its own);
* global states R (system reset), X (execution phase) and D (done);
* edges following the computed schedule (per-resource execution order)
  and the data dependencies (cross-resource guards).

Shape of the result for a graph with N nodes on M used resources::

    R --reset_*--> r_m  (one per resource, in parallel)
    r_m --> X          (synchronisation barrier: all units reset)
    X --> w_v          (first scheduled node of each resource)
    w_v --[guards]/read_*,start_v--> x_v --[done_v]/write_*--> d_v
    d_v --> w_u        (schedule successor on the same resource)
    d_last --> D       (one per resource; D closes the activation)

Guards on ``w -> x`` are the done flags of *cross-resource* data
predecessors: same-resource predecessors are already serialized by the
schedule chain, so they need no guard -- which is precisely what makes
many WAIT states redundant and gives the state minimization of
:mod:`repro.stg.minimize` its leverage.
"""

from __future__ import annotations

from ..graph.partition import Partition
from ..schedule.schedule import Schedule
from .states import StateKind, Stg, StgError, StgState, StgTransition

__all__ = ["build_stg", "wait_name", "exec_name", "done_name",
           "global_state", "GLOBAL_RESET_NAME", "GLOBAL_EXEC_NAME",
           "GLOBAL_DONE_NAME"]

#: Canonical names of the global system states (paper nomenclature).
#: Consumers must *not* match on these -- use :func:`global_state` for
#: structural lookup so a renamed R/X/D cannot silently break them.
GLOBAL_RESET_NAME = "R"
GLOBAL_EXEC_NAME = "X"
GLOBAL_DONE_NAME = "D"


def global_state(stg: Stg, kind: StateKind) -> StgState:
    """The sole global state of ``kind`` in ``stg``, found structurally.

    Controller synthesis and chain projection anchor on the global
    EXEC/DONE states; looking them up by kind instead of by the literal
    names ``"X"``/``"D"`` keeps those consumers correct for any naming.
    """
    states = stg.states_of_kind(kind)
    if not states:
        raise StgError(f"STG has no {kind.name} state")
    if len(states) > 1:
        raise StgError(f"STG has {len(states)} {kind.name} states, "
                       f"expected exactly one")
    return states[0]


def wait_name(node: str) -> str:
    return f"w_{node}"


def exec_name(node: str) -> str:
    return f"x_{node}"


def done_name(node: str) -> str:
    return f"d_{node}"


def _reset_name(resource: str) -> str:
    return f"r_{resource}"


def build_stg(schedule: Schedule) -> Stg:
    """Build the STG of a scheduled, partitioned task graph."""
    partition: Partition = schedule.partition
    graph = partition.graph
    stg = Stg(f"stg_{graph.name}")

    resources = list(partition.resources_used)
    if not resources:
        raise StgError("partition uses no resources")

    # -- states ---------------------------------------------------------
    stg.add_state(StgState(GLOBAL_RESET_NAME, StateKind.GLOBAL_RESET))
    stg.add_state(StgState(GLOBAL_EXEC_NAME, StateKind.GLOBAL_EXEC))
    stg.add_state(StgState(GLOBAL_DONE_NAME, StateKind.GLOBAL_DONE))
    stg.initial = GLOBAL_RESET_NAME

    for resource in resources:
        stg.add_state(StgState(_reset_name(resource), StateKind.RESET,
                               resource=resource))

    for node in graph.nodes:
        resource = partition.resource_of(node.name)
        stg.add_state(StgState(wait_name(node.name), StateKind.WAIT,
                               node=node.name, resource=resource))
        stg.add_state(StgState(exec_name(node.name), StateKind.EXEC,
                               node=node.name, resource=resource))
        stg.add_state(StgState(done_name(node.name), StateKind.DONE,
                               node=node.name, resource=resource))

    # -- global reset fan-out and execution barrier ----------------------
    for resource in resources:
        stg.add_transition(StgTransition(
            GLOBAL_RESET_NAME, _reset_name(resource),
            actions=(f"reset_{resource}",)))
        stg.add_transition(StgTransition(_reset_name(resource),
                                         GLOBAL_EXEC_NAME))

    # -- per-resource schedule chains ------------------------------------
    for resource in resources:
        order = [entry.node for entry in schedule.on_resource(resource)]
        if not order:
            continue
        stg.add_transition(StgTransition(GLOBAL_EXEC_NAME,
                                         wait_name(order[0])))
        for prev, nxt in zip(order, order[1:]):
            stg.add_transition(StgTransition(done_name(prev), wait_name(nxt)))
        stg.add_transition(StgTransition(done_name(order[-1]),
                                         GLOBAL_DONE_NAME))

    # -- node micro-cycles with guards, reads, starts and writes ---------
    for node in graph.nodes:
        name = node.name
        resource = partition.resource_of(name)

        guards = []
        reads = []
        for edge in graph.in_edges(name):
            if partition.resource_of(edge.src) != resource:
                guards.append(f"done_{edge.src}")
                reads.append(f"read_{edge.name}")
        stg.add_transition(StgTransition(
            wait_name(name), exec_name(name),
            conditions=tuple(guards),
            actions=tuple(reads) + (f"start_{name}",)))

        writes = [f"write_{edge.name}" for edge in graph.out_edges(name)
                  if partition.resource_of(edge.dst) != resource]
        stg.add_transition(StgTransition(
            exec_name(name), done_name(name),
            conditions=(f"done_{name}",),
            actions=tuple(writes)))

    problems = stg.validate()
    if problems:
        raise StgError("built an inconsistent STG:\n  - "
                       + "\n  - ".join(problems))
    return stg
