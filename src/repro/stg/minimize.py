"""STG state minimization (paper: "after the number of states of the STG
has been minimized, memory cells are allocated ...").

Three behaviour-preserving reductions:

1. **WAIT contraction** -- a WAIT state whose outgoing transition carries
   no guard conditions is redundant: the node may start as soon as its
   chain predecessor finishes.  The incoming transitions are redirected
   to the EXECUTION state, accumulating the start/read actions.
2. **DONE contraction** -- a DONE state always has exactly one outgoing
   chain edge (to the next WAIT on the unit, or to global D) with no
   guards; the state is folded into that edge.  Guards elsewhere
   reference the *done signal flags*, not the DONE state, so folding is
   observationally safe.
3. **Equivalence merging** -- partition refinement: states of the same
   kind on the same resource with structurally identical outgoing
   behaviour (conditions, actions, successor block) merge.  The
   refinement itself is the shared kernel minimizer
   (:func:`repro.automata.refine_partition`), the same worklist
   algorithm controller FSM minimization uses.

Reduction 1+2 shrink the canonical 3-states-per-node construction to
roughly one state per node plus the guarded waits -- the minimization
win the paper reports.  Every reduction is verified in the tests by
comparing :class:`repro.stg.interp.StgExecutor` action traces before and
after.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..automata import refine_partition
from .states import StateKind, Stg, StgError, StgState, StgTransition

__all__ = ["minimize_stg", "MinimizationReport"]


@dataclass(frozen=True)
class MinimizationReport:
    """What minimization achieved (consumed by the ablation benchmark)."""

    states_before: int
    states_after: int
    transitions_before: int
    transitions_after: int
    waits_contracted: int
    dones_contracted: int
    equivalents_merged: int

    @property
    def reduction(self) -> float:
        """Fraction of states removed."""
        if self.states_before == 0:
            return 0.0
        return 1.0 - self.states_after / self.states_before


def _rebuild(stg: Stg, keep: set[str],
             transitions: list[StgTransition], name: str) -> Stg:
    if stg.initial is not None and stg.initial not in keep:
        raise StgError(f"minimization dropped initial state {stg.initial!r}")
    out = Stg(name)
    for state in stg.states:
        if state.name in keep:
            out.add_state(state)
    out.initial = stg.initial
    for t in transitions:
        out.add_transition(t)
    return out


def _contract(stg: Stg, kind: StateKind) -> tuple[Stg, int]:
    """Fold states of ``kind`` with one unguarded exit into that edge.

    For WAIT states a guarded exit means the controller genuinely waits
    there, so only guard-free waits contract; DONE chain edges never
    carry conditions.  The exit's actions are folded into the merged
    transition -- they fired in the same executor step anyway (fixpoint
    semantics).  The initial state is never contracted: folding the
    entry state away would leave ``initial`` dangling.
    """
    removed = 0
    transitions = list(stg.transitions)
    keep = {s.name for s in stg.states}
    for state in stg.states_of_kind(kind):
        if state.name == stg.initial:
            continue
        outs = [t for t in transitions if t.src == state.name]
        if len(outs) != 1 or outs[0].conditions:
            continue
        exit_t = outs[0]
        ins = [t for t in transitions if t.dst == state.name]
        replacement = [StgTransition(t.src, exit_t.dst,
                                     conditions=t.conditions,
                                     actions=tuple(t.actions)
                                     + tuple(exit_t.actions))
                       for t in ins]
        transitions = [t for t in transitions
                       if t.src != state.name and t.dst != state.name]
        transitions.extend(replacement)
        keep.discard(state.name)
        removed += 1
    return _rebuild(stg, keep, transitions, stg.name), removed


def _merge_equivalent(stg: Stg) -> tuple[Stg, int]:
    """Merge states the kernel's partition refinement proves equivalent.

    The initial partition comes from the automaton view's state keys
    (kind + resource, initial state isolated -- see
    :meth:`~repro.stg.states.Stg.to_automaton`); unordered signatures,
    because STG transitions carry no priority.  The quotient is rebuilt
    as an :class:`Stg` so the representatives keep their full
    :class:`StgState` metadata (kind, node, resource).
    """
    automaton = stg.to_automaton(isolate_initial=True)
    refinement = refine_partition(automaton, ordered=False)
    if refinement.merged == 0:
        return stg, 0

    block_of = {automaton.name_of(i): b
                for i, b in enumerate(refinement.block_of)}
    representative = {b: automaton.name_of(r)
                      for b, r in enumerate(refinement.representative)}

    out = Stg(stg.name)
    for state in stg.states:
        if representative[block_of[state.name]] == state.name:
            out.add_state(state)
    out.initial = representative[block_of[stg.initial]] \
        if stg.initial else None
    seen: set[tuple] = set()
    for t in stg.transitions:
        src = representative[block_of[t.src]]
        dst = representative[block_of[t.dst]]
        key = (src, dst, t.conditions, t.actions)
        if key in seen:
            continue
        seen.add(key)
        out.add_transition(StgTransition(src, dst, t.conditions, t.actions))
    return out, refinement.merged


def minimize_stg(stg: Stg, contract_waits: bool = True,
                 contract_dones: bool = True,
                 merge_equivalent: bool = True) -> tuple[Stg,
                                                         MinimizationReport]:
    """Minimize ``stg``; returns the reduced graph and a report."""
    states_before = len(stg)
    transitions_before = len(stg.transitions)

    waits = dones = merged = 0
    current = stg
    if contract_waits:
        current, waits = _contract(current, StateKind.WAIT)
    if contract_dones:
        current, dones = _contract(current, StateKind.DONE)
    if merge_equivalent:
        current, merged = _merge_equivalent(current)

    report = MinimizationReport(
        states_before=states_before,
        states_after=len(current),
        transitions_before=transitions_before,
        transitions_after=len(current.transitions),
        waits_contracted=waits,
        dones_contracted=dones,
        equivalents_merged=merged,
    )
    return current, report
