"""Application workloads: equalizer (Fig. 2), fuzzy controller (Section 3),
random TGFF-style graphs for comparisons and scaling studies."""

from . import dct, equalizer, fuzzy, random_graphs
from .dct import dct_stage
from .equalizer import four_band_equalizer
from .fuzzy import control_surface, fuzzy_controller, fuzzy_spec_text
from .random_graphs import random_task_graph

__all__ = [
    "dct", "equalizer", "fuzzy", "random_graphs", "dct_stage",
    "four_band_equalizer", "control_surface", "fuzzy_controller",
    "fuzzy_spec_text", "random_task_graph",
]
