"""The 4-band audio equalizer of paper Fig. 2.

The partitioning-graph figure of the paper shows a small data-flow
system: an input split into four filter bands, each band scaled by its
gain, and the results mixed back together.  :func:`four_band_equalizer`
builds exactly that shape (parameterizable in band count, block size and
tap count), with real FIR semantics so the whole flow can be checked
functionally end to end.
"""

from __future__ import annotations

from ..graph.taskgraph import TaskGraph, make_node
from ..graph.validate import check_graph

__all__ = ["four_band_equalizer", "BAND_TAPS"]

#: Small integer band-pass-ish tap sets (lowpass .. highpass flavours).
BAND_TAPS = (
    (1, 2, 3, 2, 1),       # low
    (1, 1, -1, -1, 1),     # low-mid
    (-1, 2, -1, 2, -1),    # high-mid
    (1, -2, 3, -2, 1),     # high
)


def four_band_equalizer(bands: int = 4, words: int = 16, width: int = 16,
                        gains: tuple[int, ...] | None = None,
                        taps_per_band: int = 5) -> TaskGraph:
    """Build the equalizer task graph: split -> bands -> gains -> mix.

    Parameters
    ----------
    bands:
        Number of filter bands (the paper's figure shows four).
    words:
        Samples per processing block.
    width:
        Sample bit width.
    gains:
        One gain factor per band (defaults to 1, 2, 3, ...).
    taps_per_band:
        FIR length of each band filter.
    """
    if bands < 1:
        raise ValueError("equalizer needs at least one band")
    if gains is None:
        gains = tuple(range(1, bands + 1))
    if len(gains) != bands:
        raise ValueError(f"{bands} bands but {len(gains)} gains")

    graph = TaskGraph("equalizer" if bands == 4 else f"equalizer_{bands}")
    graph.add_node(make_node("x", "input", width=width, words=words))

    band_outputs = []
    for i in range(bands):
        taps = BAND_TAPS[i % len(BAND_TAPS)]
        if taps_per_band != len(taps):
            base = BAND_TAPS[i % len(BAND_TAPS)]
            taps = tuple(base[j % len(base)] for j in range(taps_per_band))
        band = f"band{i}"
        gain = f"gain{i}"
        graph.add_node(make_node(band, "fir", {"taps": taps, "shift": 2},
                                 width=width, words=words))
        graph.add_node(make_node(gain, "gain", {"factor": gains[i], "shift": 1},
                                 width=width, words=words))
        graph.add_edge("x", band)
        graph.add_edge(band, gain)
        band_outputs.append(gain)

    graph.add_node(make_node("mix", "sum", {"arity": bands},
                             width=width, words=words))
    for name in band_outputs:
        graph.add_edge(name, "mix")

    graph.add_node(make_node("y", "output", width=width, words=words))
    graph.add_edge("mix", "y")

    check_graph(graph)
    return graph
