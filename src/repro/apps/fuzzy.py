"""The fuzzy controller of the paper's case study (Section 3).

The paper reports a student-project fuzzy controller "specified with
Cool (about 900 lines of code) resulting in a partitioning graph
containing 31 nodes", implemented on a DSP56001 + 2x XC4005 board.

:func:`fuzzy_controller` builds a complete two-input Mamdani-style fuzzy
controller whose partitioning graph has **exactly 31 nodes**:

====================================  =====
stage                                 nodes
====================================  =====
inputs (error, delta error)               2
input conditioning (gain)                 2
fuzzification (3 triangular sets)         2
membership selection                      6
rule evaluation (3x3 min rules)           9
aggregation per output set (max)          6
membership packing (concat)               1
defuzzification (centre of gravity)       1
output scaling (gain)                     1
output                                    1
total                                    31
====================================  =====

All stages have executable semantics, so the synthesized system is
checked against the reference interpreter over the whole control
surface.  :func:`fuzzy_spec_text` renders the specification in the COOL
input language; with ``verbose=True`` it includes the behavioural
commentary blocks of the original hand-written specification, which is
what brings it to the ~900-line size the paper quotes.
"""

from __future__ import annotations

from ..graph.semantics import execute
from ..graph.taskgraph import TaskGraph, make_node
from ..graph.validate import check_graph
from ..spec.printer import graph_to_spec

__all__ = ["fuzzy_controller", "fuzzy_spec_text", "control_surface",
           "MEMBERSHIP_SETS", "RULE_TABLE", "OUTPUT_CENTROIDS"]

#: Triangular membership sets for both inputs: negative / zero / positive.
#: The outer triangles peak *at* the input range limits (-128 / 128), so
#: extreme inputs keep full membership (shoulder-style sets).
MEMBERSHIP_SETS = ((-192, -128, 0), (-64, 0, 64), (0, 128, 192))

#: Linguistic names of the membership sets, used in the verbose spec.
SET_NAMES = ("neg", "zero", "pos")

#: 3x3 rule table: RULE_TABLE[i][j] = output set index for
#: (error set i) AND (delta-error set j).  Standard PD-style surface.
RULE_TABLE = (
    (0, 0, 1),   # error neg
    (0, 1, 2),   # error zero
    (1, 2, 2),   # error pos
)

#: Centroids of the output sets (control action: brake / hold / push).
OUTPUT_CENTROIDS = (-100, 0, 100)

#: Membership scale (fuzzify produces 0..SCALE).
SCALE = 255

_WIDTH = 16


def fuzzy_controller(width: int = _WIDTH) -> TaskGraph:
    """Build the 31-node fuzzy-controller partitioning graph."""
    g = TaskGraph("fuzzy")
    n_sets = len(MEMBERSHIP_SETS)

    # -- inputs and conditioning ---------------------------------------
    g.add_node(make_node("err", "input", width=width, words=1))
    g.add_node(make_node("derr", "input", width=width, words=1))
    g.add_node(make_node("cond_e", "gain", {"factor": 1, "shift": 0},
                         width=width, words=1))
    g.add_node(make_node("cond_de", "gain", {"factor": 1, "shift": 0},
                         width=width, words=1))
    g.add_edge("err", "cond_e")
    g.add_edge("derr", "cond_de")

    # -- fuzzification --------------------------------------------------
    for src, tag in (("cond_e", "e"), ("cond_de", "de")):
        g.add_node(make_node(f"fz_{tag}", "fuzzify",
                             {"sets": MEMBERSHIP_SETS, "scale": SCALE},
                             width=width, words=n_sets))
        g.add_edge(src, f"fz_{tag}")

    # -- membership selection -------------------------------------------
    for tag in ("e", "de"):
        for i in range(n_sets):
            g.add_node(make_node(f"m_{tag}{i}", "select", {"index": i},
                                 width=width, words=1))
            g.add_edge(f"fz_{tag}", f"m_{tag}{i}")

    # -- rule evaluation: AND via min ------------------------------------
    for i in range(n_sets):
        for j in range(n_sets):
            rule = f"rule{i}{j}"
            g.add_node(make_node(rule, "min", width=width, words=1))
            g.add_edge(f"m_e{i}", rule)
            g.add_edge(f"m_de{j}", rule)

    # -- aggregation: OR via max, two binary maxes per output set --------
    rules_of_set: dict[int, list[str]] = {k: [] for k in range(n_sets)}
    for i in range(n_sets):
        for j in range(n_sets):
            rules_of_set[RULE_TABLE[i][j]].append(f"rule{i}{j}")
    for k in range(n_sets):
        rules = rules_of_set[k]
        g.add_node(make_node(f"agg{k}a", "max", width=width, words=1))
        g.add_edge(rules[0], f"agg{k}a")
        g.add_edge(rules[1], f"agg{k}a")
        g.add_node(make_node(f"agg{k}", "max", width=width, words=1))
        g.add_edge(f"agg{k}a", f"agg{k}")
        g.add_edge(rules[2], f"agg{k}")

    # -- defuzzification and output --------------------------------------
    g.add_node(make_node("pack", "concat", width=width, words=n_sets))
    for k in range(n_sets):
        g.add_edge(f"agg{k}", "pack")
    g.add_node(make_node("defuzz", "defuzz",
                         {"centroids": OUTPUT_CENTROIDS}, width=width, words=1))
    g.add_edge("pack", "defuzz")
    g.add_node(make_node("scale_u", "gain", {"factor": 2, "shift": 1},
                         width=width, words=1))
    g.add_edge("defuzz", "scale_u")
    g.add_node(make_node("u", "output", width=width, words=1))
    g.add_edge("scale_u", "u")

    check_graph(g)
    assert len(g) == 31, f"fuzzy controller must have 31 nodes, has {len(g)}"
    return g


def _behaviour_commentary() -> list[str]:
    """The behavioural description blocks of the hand-written spec.

    The original COOL specification described each function behaviourally
    in its VHDL subset; our language expresses a function per line, so we
    carry the behaviour as structured commentary.  This is what makes the
    shipped specification comparable in size (~900 lines) to the paper's.
    """
    lines: list[str] = []

    def block(title: str, rows: list[str]) -> None:
        lines.append("-- " + "=" * 66)
        lines.append(f"-- {title}")
        lines.append("-- " + "=" * 66)
        lines.extend("-- " + r for r in rows)
        lines.append("--")

    block("fuzzy controller: overview", [
        "Two-input (error, delta-error) Mamdani controller with three",
        "triangular membership sets per input, a 3x3 rule base evaluated",
        "with min/max inference and centre-of-gravity defuzzification.",
        "All arithmetic is 16-bit two's complement; memberships use the",
        f"scale 0..{SCALE}.",
    ])

    for tag, desc in (("e", "error input"), ("de", "delta-error input")):
        rows = [f"fuzzification of the {desc}: membership tables",
                "(piecewise linear, one row per 4 input values)", ""]
        for name, (a, b, c) in zip(SET_NAMES, MEMBERSHIP_SETS):
            rows.append(f"set {name}: triangle ({a}, {b}, {c})")
            for x in range(-128, 129, 4):
                if x <= a or x >= c:
                    mu = 0
                elif x <= b:
                    mu = SCALE * (x - a) // max(b - a, 1)
                else:
                    mu = SCALE * (c - x) // max(c - b, 1)
                rows.append(f"  mu_{name}({x:>5}) = {mu:>3}")
            rows.append("")
        block(f"process fz_{tag}", rows)

    rule_rows = ["rule base (error down, delta-error across):", ""]
    header = "          " + "  ".join(f"{n:>5}" for n in SET_NAMES)
    rule_rows.append(header)
    for i, name in enumerate(SET_NAMES):
        cells = "  ".join(f"{SET_NAMES[RULE_TABLE[i][j]]:>5}"
                          for j in range(len(SET_NAMES)))
        rule_rows.append(f"  {name:>6}:  {cells}")
    rule_rows.append("")
    for i in range(len(SET_NAMES)):
        for j in range(len(SET_NAMES)):
            rule_rows.append(
                f"rule{i}{j}: IF error IS {SET_NAMES[i]} AND delta IS "
                f"{SET_NAMES[j]} THEN u IS {SET_NAMES[RULE_TABLE[i][j]]} "
                f"(strength = min of the two memberships)")
    block("rule base", rule_rows)

    block("defuzzification", [
        "centre of gravity over the aggregated output memberships:",
        f"centroids = {OUTPUT_CENTROIDS}",
        "u = sum(mu_k * c_k) / sum(mu_k), integer division,",
        "followed by the output scaling stage (factor 2, shift 1).",
    ])

    # golden control surface: the acceptance table of the student project
    from ..graph.semantics import to_signed
    graph = fuzzy_controller()
    surface_rows = ["expected controller output u(err, derr), step 16:", ""]
    for err in range(-128, 129, 16):
        for derr in range(-128, 129, 16):
            value = execute(graph, {"err": [err], "derr": [derr]})["u"][0]
            surface_rows.append(
                f"u({err:>5}, {derr:>5}) = {to_signed(value, _WIDTH):>5}")
    block("golden control surface", surface_rows)
    return lines


def fuzzy_spec_text(verbose: bool = True) -> str:
    """Specification text of the fuzzy controller in the COOL language.

    ``verbose=True`` (default) interleaves the behavioural commentary of
    the original hand-written specification; the result is ~900 lines,
    matching the paper's "about 900 lines of code".
    """
    spec = graph_to_spec(fuzzy_controller())
    if not verbose:
        return spec
    commentary = "\n".join(_behaviour_commentary())
    return commentary + "\n" + spec


def control_surface(step: int = 32) -> dict[tuple[int, int], int]:
    """Reference control surface u(err, derr) over the input grid."""
    graph = fuzzy_controller()
    surface: dict[tuple[int, int], int] = {}
    for err in range(-128, 129, step):
        for derr in range(-128, 129, step):
            values = execute(graph, {"err": [err], "derr": [derr]})
            surface[(err, derr)] = values["u"][0]
    return surface
