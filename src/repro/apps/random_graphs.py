"""TGFF-style random task-graph generation.

COOL targets "data-flow dominated applications"; this generator produces
layered DAG workloads of configurable size for partitioner comparisons
and scaling studies.  Every generated graph is valid (passes
:func:`repro.graph.check_graph`) and executable (nodes use kinds with
real semantics), and generation is fully deterministic in the seed.
"""

from __future__ import annotations

import random

from ..graph.taskgraph import TaskGraph, make_node
from ..graph.validate import check_graph

__all__ = ["random_task_graph"]


def random_task_graph(n_nodes: int, seed: int = 0, n_inputs: int = 2,
                      n_outputs: int = 2, max_fanin: int = 3,
                      words: int = 4, width: int = 16,
                      mac_bias: float = 0.5) -> TaskGraph:
    """Generate a random layered task graph with ``n_nodes`` total nodes.

    Parameters
    ----------
    n_nodes:
        Total node count including inputs and outputs.
    seed:
        RNG seed; identical arguments give identical graphs.
    n_inputs / n_outputs:
        Environment interface size.
    max_fanin:
        Maximum predecessor count of internal nodes.
    words / width:
        Payload shape of every node (uniform, like block-processing DSP).
    mac_bias:
        Probability that an internal node gets a MAC-heavy operation mix
        (hardware-friendly) instead of a control-heavy one.
    """
    internal = n_nodes - n_inputs - n_outputs
    if internal < 1:
        raise ValueError(
            f"n_nodes={n_nodes} leaves no internal nodes "
            f"({n_inputs} inputs + {n_outputs} outputs)")
    rng = random.Random(seed)
    graph = TaskGraph(f"random_{n_nodes}_{seed}")

    producers: list[str] = []
    for i in range(n_inputs):
        graph.add_node(make_node(f"in{i}", "input", width=width, words=words))
        producers.append(f"in{i}")

    for i in range(internal):
        name = f"n{i}"
        fanin = rng.randint(1, min(max_fanin, len(producers)))
        preds = rng.sample(producers, fanin)
        if rng.random() < mac_bias:
            mix = (("mac", rng.randint(8, 64) * words),
                   ("add", rng.randint(1, 8) * words),
                   ("mov", 4 * words))
        else:
            mix = (("cmp", rng.randint(4, 16) * words),
                   ("add", rng.randint(4, 16) * words),
                   ("div", rng.randint(0, 2)),
                   ("mov", 6 * words))
        graph.add_node(make_node(name, "generic",
                                 {"mix": mix, "seed": rng.randint(0, 2**31)},
                                 width=width, words=words))
        for pred in preds:
            graph.add_edge(pred, name)
        producers.append(name)

    # outputs read from distinct late producers where possible
    internal_names = [f"n{i}" for i in range(internal)]
    tail = internal_names[-n_outputs:] if internal >= n_outputs else \
        [internal_names[i % internal] for i in range(n_outputs)]
    for i in range(n_outputs):
        graph.add_node(make_node(f"out{i}", "output", width=width, words=words))
        graph.add_edge(tail[i], f"out{i}")

    # make sure every internal node reaches the interface: attach each
    # dangling sink as an extra input of a later node ("generic" kind has
    # variable arity, so this is always legal)
    for index, name in enumerate(internal_names):
        if graph.out_edges(name) or name in tail:
            continue
        later = internal_names[index + 1:]
        target = later[0] if later else tail[-1]
        if not graph.edge_between(name, target):
            graph.add_edge(name, target)

    check_graph(graph)
    return graph
