"""An 8-point DCT-style transform stage (JPEG-flavoured workload).

The paper targets "data-flow dominated applications"; next to the
equalizer and the fuzzy controller, this module provides the classic
third workload of the era: a row transform of a block codec.  The
transform is an integer 8-point DCT-II built from the library's
executable node kinds (gains for the cosine factors, adds for the
butterfly sums), so the whole system remains functionally checkable.

Structure (for ``points`` = 8):

* one input node delivering a block of 8 samples;
* one ``select`` node per sample (the de-interleave stage);
* per output coefficient: 8 ``gain`` nodes (sample x rounded cosine
  factor) folded by a binary ``add`` tree -- the dominant MAC workload
  that makes hardware mapping attractive;
* a ``concat`` node packing the coefficients, feeding the output.
"""

from __future__ import annotations

import math

from ..graph.taskgraph import TaskGraph, make_node
from ..graph.validate import check_graph

__all__ = ["dct_stage", "dct_factor"]

#: Fixed-point scale of the cosine factors (Q6: factor 64 = 1.0).
FACTOR_SCALE = 64


def dct_factor(k: int, n: int, points: int) -> int:
    """Rounded DCT-II cosine factor ``c_k * cos(pi*(2n+1)k / 2N)`` in Q6."""
    c = math.sqrt(1.0 / points) if k == 0 else math.sqrt(2.0 / points)
    value = c * math.cos(math.pi * (2 * n + 1) * k / (2 * points))
    return round(value * FACTOR_SCALE)


def dct_stage(points: int = 8, coefficients: int | None = None,
              width: int = 16) -> TaskGraph:
    """Build the DCT row-transform task graph.

    ``coefficients`` limits how many output coefficients are computed
    (defaults to all ``points``); fewer coefficients model the
    low-frequency-only stages common in codecs.
    """
    if points < 2:
        raise ValueError("dct needs at least two points")
    n_coeff = coefficients if coefficients is not None else points
    if not 1 <= n_coeff <= points:
        raise ValueError(f"coefficients must be in 1..{points}")

    graph = TaskGraph(f"dct{points}x{n_coeff}")
    graph.add_node(make_node("block", "input", width=width, words=points))

    for n in range(points):
        graph.add_node(make_node(f"s{n}", "select", {"index": n},
                                 width=width, words=1))
        graph.add_edge("block", f"s{n}")

    coeff_nodes = []
    for k in range(n_coeff):
        terms = []
        for n in range(points):
            name = f"m{k}_{n}"
            graph.add_node(make_node(
                name, "gain",
                {"factor": dct_factor(k, n, points), "shift": 0},
                width=width, words=1))
            graph.add_edge(f"s{n}", name)
            terms.append(name)
        # binary adder tree
        level = 0
        while len(terms) > 1:
            next_terms = []
            for i in range(0, len(terms) - 1, 2):
                name = f"a{k}_{level}_{i // 2}"
                graph.add_node(make_node(name, "add", width=width, words=1))
                graph.add_edge(terms[i], name)
                graph.add_edge(terms[i + 1], name)
                next_terms.append(name)
            if len(terms) % 2:
                next_terms.append(terms[-1])
            terms = next_terms
            level += 1
        # descale the Q6 factors
        graph.add_node(make_node(f"c{k}", "shift", {"amount": 6},
                                 width=width, words=1))
        graph.add_edge(terms[0], f"c{k}")
        coeff_nodes.append(f"c{k}")

    graph.add_node(make_node("pack", "concat", width=width, words=n_coeff))
    for name in coeff_nodes:
        graph.add_edge(name, "pack")
    graph.add_node(make_node("coeffs", "output", width=width, words=n_coeff))
    graph.add_edge("pack", "coeffs")

    check_graph(graph)
    return graph
