"""Seeded synthetic task-graph generators (TGFF-style workload families).

The paper evaluates COOL on a handful of hand-built designs; the batch
layer wants *thousands* of scenarios.  Every generator here is a frozen
:class:`WorkloadSpec` dataclass: a pure description of one graph family
member with TGFF-style knobs (node count, shape, communication-to-
computation ratio, hw/sw cost spread) plus the seed.  ``build()`` is
deterministic in the spec -- identical specs produce structurally
identical graphs -- and ``fingerprint()`` hashes the spec itself, so a
spec is a cacheable pipeline artifact exactly like the graph it denotes.

Families
--------
* :class:`LayeredDagSpec` -- layered random DAG, the classic TGFF shape;
* :class:`ForkJoinSpec` -- one source fanned over parallel branches and
  joined (the map-reduce silhouette of parallel synthesis workloads);
* :class:`ChainSpec` -- a linear pipeline of stages;
* :class:`TreeSpec` -- leaves reduced by a balanced operator tree;
* :class:`EqualizerSpec` / :class:`DctSpec` -- parameterized families of
  the paper's own applications (Fig. 2 equalizer, the DCT stage);
* :class:`RandomDagSpec` -- the unconstrained TGFF-style generator of
  :func:`repro.apps.random_task_graph` as a spec family, the shape the
  scale sweeps use for 200..500-node designs whose reachable products
  only the symbolic verification tier can prove.

All generated graphs pass :func:`repro.graph.check_graph` and use node
kinds with executable semantics, so a generated workload can run the
*whole* flow including co-simulation against the golden interpreter.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass

from ..apps.dct import dct_stage
from ..apps.equalizer import four_band_equalizer
from ..apps.random_graphs import random_task_graph
from ..fingerprint import content_hash
from ..graph.taskgraph import TaskGraph, make_node
from ..graph.validate import check_graph

__all__ = ["WorkloadError", "WorkloadSpec", "LayeredDagSpec", "ForkJoinSpec",
           "ChainSpec", "TreeSpec", "EqualizerSpec", "DctSpec",
           "RandomDagSpec"]

#: Bump when a generator's construction changes shape for the same spec,
#: so stale cross-run cache entries keyed on a spec can never alias the
#: new topology.
GENERATOR_VERSION = 1


class WorkloadError(ValueError):
    """Raised for inconsistent workload specifications."""


@dataclass(frozen=True)
class WorkloadSpec:
    """Base class of all workload descriptions.

    Concrete families add their knobs as dataclass fields and implement
    :meth:`_build`; the public :meth:`build` validates the result once.
    """

    seed: int = 0

    @property
    def family(self) -> str:
        """Short family tag, e.g. ``"layered"``."""
        raise NotImplementedError

    @property
    def label(self) -> str:
        """Compact display name without building the graph.

        Suite specs carry distinct seeds (:func:`workload_suite`), so
        the label is unique within a suite -- sweep drivers use it to
        name spec-based jobs whose graphs are only built in-worker.
        """
        return f"{self.family}_s{self.seed}"

    def fingerprint(self) -> str:
        """Stable content hash of the family, generator version and knobs."""
        config = tuple((f.name, repr(getattr(self, f.name)))
                       for f in dataclasses.fields(self))
        return content_hash((type(self).__qualname__, GENERATOR_VERSION,
                             config))

    def _build(self) -> TaskGraph:
        raise NotImplementedError

    def build(self) -> TaskGraph:
        """Construct the task graph; deterministic in the spec."""
        graph = self._build()
        check_graph(graph)
        return graph

    def _rng(self) -> random.Random:
        """The family RNG: seeded by the *whole* spec, not just ``seed``,
        so two specs differing in any knob draw independent streams."""
        return random.Random(self.fingerprint())


# ----------------------------------------------------------------------
# shared construction helpers
# ----------------------------------------------------------------------
def _cost_mix(rng: random.Random, words: int, hw_bias: float,
              cost_spread: float) -> tuple:
    """One node's op mix: MAC-heavy (hardware-friendly) with probability
    ``hw_bias``, control-heavy otherwise; magnitudes span ``cost_spread``."""
    spread = max(float(cost_spread), 1.0)
    base = rng.randint(4, 12)
    heavy = max(base, round(base * spread * rng.uniform(0.5, 1.0)))
    if rng.random() < hw_bias:
        return (("mac", heavy * words), ("add", base * words),
                ("mov", 4 * words))
    return (("cmp", heavy * words), ("add", base * words),
            ("div", rng.randint(0, 2)), ("mov", 6 * words))


def _payload_words(rng: random.Random, ccr: float) -> int:
    """Edge payload size implementing the CCR knob.

    Node compute cost is held in a fixed band by :func:`_cost_mix`, so
    scaling the *words* each node produces scales the communication side
    of the ratio: ``ccr=1`` gives the 2..6-word payloads of the bundled
    apps, larger values stress the bus and shared memory.
    """
    if ccr <= 0:
        raise WorkloadError(f"ccr must be positive, got {ccr}")
    lo = max(1, round(2 * ccr))
    hi = max(lo, round(6 * ccr))
    return rng.randint(lo, hi)


def _generic(name: str, rng: random.Random, words: int, width: int,
             hw_bias: float, cost_spread: float):
    return make_node(name, "generic",
                     {"mix": _cost_mix(rng, words, hw_bias, cost_spread),
                      "seed": rng.randint(0, 2**31)},
                     width=width, words=words)


def _with_name(graph: TaskGraph, name: str) -> TaskGraph:
    """A structural copy of ``graph`` under a new name (fresh fingerprint)."""
    out = TaskGraph(name)
    for node in graph.nodes:
        out.add_node(node)
    for edge in graph.edges:
        out.add_edge(edge.src, edge.dst, edge.dst_port)
    return out


# ----------------------------------------------------------------------
# synthetic families
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LayeredDagSpec(WorkloadSpec):
    """Layered random DAG (the TGFF shape).

    Parameters
    ----------
    nodes:
        Internal (partitionable) node count.
    layers:
        Topological depth; nodes are spread over the layers with random
        jitter, every layer keeps at least one node.
    inputs / outputs:
        Environment interface size.
    max_fanin:
        Upper bound on predecessor count of internal nodes.
    ccr:
        Communication-to-computation ratio knob: scales the per-node
        payload words against the fixed op-mix band (1.0 = app-like).
    hw_bias:
        Probability that a node's op mix is MAC-heavy (hardware leaning)
        instead of control-heavy (software leaning).
    cost_spread:
        Ratio between the heaviest and lightest node cost magnitudes --
        the TGFF "cost multiplier" that makes partitioning non-trivial.
    width:
        Bit width of every data word.
    """

    nodes: int = 12
    layers: int = 4
    inputs: int = 2
    outputs: int = 2
    max_fanin: int = 3
    ccr: float = 1.0
    hw_bias: float = 0.5
    cost_spread: float = 4.0
    width: int = 16

    @property
    def family(self) -> str:
        return "layered"

    def _build(self) -> TaskGraph:
        if self.nodes < self.layers or self.layers < 1:
            raise WorkloadError(
                f"need nodes >= layers >= 1, got {self.nodes}/{self.layers}")
        if self.inputs < 1 or self.outputs < 1:
            raise WorkloadError("need at least one input and output")
        rng = self._rng()
        graph = TaskGraph(f"layered_n{self.nodes}_l{self.layers}_s{self.seed}")

        for i in range(self.inputs):
            graph.add_node(make_node(f"in{i}", "input", width=self.width,
                                     words=_payload_words(rng, self.ccr)))

        # spread internal nodes over layers: one guaranteed per layer,
        # the rest land on rng-chosen layers
        per_layer = [1] * self.layers
        for _ in range(self.nodes - self.layers):
            per_layer[rng.randrange(self.layers)] += 1

        layer_names: list[list[str]] = []
        index = 0
        for layer, count in enumerate(per_layer):
            names: list[str] = []
            earlier = [f"in{i}" for i in range(self.inputs)] if layer == 0 \
                else [n for names_ in layer_names for n in names_]
            previous = layer_names[-1] if layer_names else earlier
            for _ in range(count):
                name = f"n{index}"
                index += 1
                words = _payload_words(rng, self.ccr)
                graph.add_node(_generic(name, rng, words, self.width,
                                        self.hw_bias, self.cost_spread))
                fanin = rng.randint(1, min(self.max_fanin, len(earlier)))
                # locality bias: first predecessor from the previous
                # layer, extras from anywhere earlier
                preds = {rng.choice(previous)}
                while len(preds) < fanin:
                    preds.add(rng.choice(earlier))
                for pred in sorted(preds):
                    graph.add_edge(pred, name)
                names.append(name)
            layer_names.append(names)

        # every input must feed the dataflow; attach unused ones to
        # first-layer nodes (variable-arity "generic" accepts extras)
        for i in range(self.inputs):
            if not graph.out_edges(f"in{i}"):
                graph.add_edge(f"in{i}", rng.choice(layer_names[0]))

        # outputs read from distinct late producers where possible
        internal = [n for names in layer_names for n in names]
        tail = internal[-self.outputs:] if len(internal) >= self.outputs \
            else [internal[i % len(internal)] for i in range(self.outputs)]
        for i, producer in enumerate(tail):
            words = graph.node(producer).words
            graph.add_node(make_node(f"out{i}", "output", width=self.width,
                                     words=words))
            graph.add_edge(producer, f"out{i}")

        # connect dangling sinks forward, layer-aware so the depth stays
        # bounded by the `layers` knob: a sink feeds the next layer, and
        # last-layer extras feed an output-driving node of their own
        # layer ("generic" has variable arity, extras are always legal)
        for layer, names in enumerate(layer_names):
            for name in names:
                if graph.out_edges(name) or name in tail:
                    continue
                if layer + 1 < len(layer_names):
                    target = rng.choice(layer_names[layer + 1])
                else:
                    target = rng.choice([t for t in tail if t != name])
                if not graph.edge_between(name, target):
                    graph.add_edge(name, target)
        return graph


@dataclass(frozen=True)
class ForkJoinSpec(WorkloadSpec):
    """Fork-join: a source fans over parallel branches that are joined.

    ``branches`` parallel chains of ``depth`` nodes between one source
    node and one joining node -- the natural shape for exercising
    multi-resource schedules and the bus arbiter.
    """

    branches: int = 4
    depth: int = 2
    ccr: float = 1.0
    hw_bias: float = 0.5
    cost_spread: float = 4.0
    width: int = 16

    @property
    def family(self) -> str:
        return "fork_join"

    def _build(self) -> TaskGraph:
        if self.branches < 1 or self.depth < 1:
            raise WorkloadError("fork-join needs branches >= 1, depth >= 1")
        rng = self._rng()
        graph = TaskGraph(f"forkjoin_b{self.branches}_d{self.depth}"
                          f"_s{self.seed}")
        words = _payload_words(rng, self.ccr)
        graph.add_node(make_node("in0", "input", width=self.width,
                                 words=words))
        graph.add_node(_generic("src", rng, words, self.width,
                                self.hw_bias, self.cost_spread))
        graph.add_edge("in0", "src")
        heads = []
        for b in range(self.branches):
            prev = "src"
            for d in range(self.depth):
                name = f"b{b}_{d}"
                graph.add_node(_generic(name, rng,
                                        _payload_words(rng, self.ccr),
                                        self.width, self.hw_bias,
                                        self.cost_spread))
                graph.add_edge(prev, name)
                prev = name
            heads.append(prev)
        join_words = _payload_words(rng, self.ccr)
        graph.add_node(_generic("join", rng, join_words, self.width,
                                self.hw_bias, self.cost_spread))
        for head in heads:
            graph.add_edge(head, "join")
        graph.add_node(make_node("out0", "output", width=self.width,
                                 words=join_words))
        graph.add_edge("join", "out0")
        return graph


@dataclass(frozen=True)
class ChainSpec(WorkloadSpec):
    """A linear pipeline of ``length`` processing stages."""

    length: int = 6
    ccr: float = 1.0
    hw_bias: float = 0.5
    cost_spread: float = 4.0
    width: int = 16

    @property
    def family(self) -> str:
        return "chain"

    def _build(self) -> TaskGraph:
        if self.length < 1:
            raise WorkloadError("chain needs length >= 1")
        rng = self._rng()
        graph = TaskGraph(f"chain_l{self.length}_s{self.seed}")
        graph.add_node(make_node("in0", "input", width=self.width,
                                 words=_payload_words(rng, self.ccr)))
        prev = "in0"
        for i in range(self.length):
            name = f"n{i}"
            graph.add_node(_generic(name, rng, _payload_words(rng, self.ccr),
                                    self.width, self.hw_bias,
                                    self.cost_spread))
            graph.add_edge(prev, name)
            prev = name
        graph.add_node(make_node("out0", "output", width=self.width,
                                 words=graph.node(prev).words))
        graph.add_edge(prev, "out0")
        return graph


@dataclass(frozen=True)
class TreeSpec(WorkloadSpec):
    """Balanced reduction tree: ``arity ** depth`` leaves folded to a root.

    One input block is de-interleaved by the leaf nodes, then reduced by
    ``arity``-ary combiner levels -- the adder-tree shape dominating
    transform codecs, with the heavy MAC leaves that make hardware
    mapping attractive.
    """

    depth: int = 2
    arity: int = 2
    ccr: float = 1.0
    hw_bias: float = 0.7
    cost_spread: float = 4.0
    width: int = 16

    @property
    def family(self) -> str:
        return "tree"

    def _build(self) -> TaskGraph:
        if self.depth < 1 or self.arity < 2:
            raise WorkloadError("tree needs depth >= 1, arity >= 2")
        rng = self._rng()
        leaves = self.arity ** self.depth
        graph = TaskGraph(f"tree_d{self.depth}_a{self.arity}_s{self.seed}")
        graph.add_node(make_node("in0", "input", width=self.width,
                                 words=_payload_words(rng, self.ccr)))
        level = []
        for i in range(leaves):
            name = f"leaf{i}"
            graph.add_node(_generic(name, rng, _payload_words(rng, self.ccr),
                                    self.width, self.hw_bias,
                                    self.cost_spread))
            graph.add_edge("in0", name)
            level.append(name)
        step = 0
        while len(level) > 1:
            next_level = []
            for i in range(0, len(level), self.arity):
                group = level[i:i + self.arity]
                if len(group) == 1:
                    next_level.append(group[0])
                    continue
                name = f"r{step}_{i // self.arity}"
                graph.add_node(_generic(name, rng,
                                        _payload_words(rng, self.ccr),
                                        self.width, self.hw_bias,
                                        self.cost_spread))
                for member in group:
                    graph.add_edge(member, name)
                next_level.append(name)
            level = next_level
            step += 1
        graph.add_node(make_node("out0", "output", width=self.width,
                                 words=graph.node(level[0]).words))
        graph.add_edge(level[0], "out0")
        return graph


# ----------------------------------------------------------------------
# parameterized families of the paper's applications
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EqualizerSpec(WorkloadSpec):
    """Family of paper-Fig.-2 equalizers: bands x block size x FIR length.

    ``seed`` only disambiguates the graph name (the equalizer itself is
    fully determined by its knobs), keeping suite entries distinct.
    """

    bands: int = 4
    words: int = 16
    taps_per_band: int = 5
    width: int = 16

    @property
    def family(self) -> str:
        return "equalizer"

    def _build(self) -> TaskGraph:
        graph = four_band_equalizer(bands=self.bands, words=self.words,
                                    width=self.width,
                                    taps_per_band=self.taps_per_band)
        name = (f"eq_b{self.bands}_w{self.words}_t{self.taps_per_band}"
                f"_s{self.seed}")
        return _with_name(graph, name)


@dataclass(frozen=True)
class DctSpec(WorkloadSpec):
    """Family of DCT row-transform stages: points x computed coefficients."""

    points: int = 8
    coefficients: int | None = None
    width: int = 16

    @property
    def family(self) -> str:
        return "dct"

    def _build(self) -> TaskGraph:
        graph = dct_stage(points=self.points, coefficients=self.coefficients,
                          width=self.width)
        n_coeff = self.coefficients if self.coefficients is not None \
            else self.points
        return _with_name(graph, f"dct_p{self.points}_c{n_coeff}"
                                 f"_s{self.seed}")


@dataclass(frozen=True)
class RandomDagSpec(WorkloadSpec):
    """Family of unconstrained random layered DAGs at arbitrary size.

    Wraps :func:`repro.apps.random_task_graph` (the generator the
    partitioner-comparison scale sweeps always used) as a spec, so the
    200..500-node designs of the verification scale suite are first-
    class suite members: fingerprinted, cacheable and reproducible from
    the spec alone.  Unlike :class:`LayeredDagSpec` this family does
    not bound its width, which is what makes its reachable composition
    products outgrow the explicit verifier's ``max_states`` -- the
    population the symbolic tier exists for.
    """

    nodes: int = 200
    inputs: int = 2
    outputs: int = 2
    max_fanin: int = 3
    words: int = 4
    width: int = 16
    mac_bias: float = 0.5

    @property
    def family(self) -> str:
        return "random"

    def _build(self) -> TaskGraph:
        if self.nodes < 3:
            raise WorkloadError(f"a random DAG needs at least 3 nodes, "
                                f"got {self.nodes}")
        return random_task_graph(self.nodes, seed=self.seed,
                                 n_inputs=self.inputs,
                                 n_outputs=self.outputs,
                                 max_fanin=self.max_fanin,
                                 words=self.words, width=self.width,
                                 mac_bias=self.mac_bias)
