"""Synthetic workload generation: seeded task-graph families and suites.

The scale side of the batch layer -- deterministic TGFF-style generators
(:mod:`repro.workloads.generators`) and suite sampling / stimulus
derivation (:mod:`repro.workloads.suite`) that feed
:class:`repro.flow.batch.BatchRunner` sweeps with arbitrarily many
designs from a single seed.
"""

from .generators import (ChainSpec, DctSpec, EqualizerSpec, ForkJoinSpec,
                         GENERATOR_VERSION, LayeredDagSpec, RandomDagSpec,
                         TreeSpec, WorkloadError, WorkloadSpec)
from .suite import (DEFAULT_FAMILIES, SCALE_SUITE_SIZES, build_graphs,
                    scale_suite, stimuli_for, workload_suite)

__all__ = [
    "WorkloadError", "WorkloadSpec", "LayeredDagSpec", "ForkJoinSpec",
    "ChainSpec", "TreeSpec", "EqualizerSpec", "DctSpec", "RandomDagSpec",
    "GENERATOR_VERSION", "DEFAULT_FAMILIES", "SCALE_SUITE_SIZES",
    "workload_suite", "scale_suite", "build_graphs", "stimuli_for",
]
