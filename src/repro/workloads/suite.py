"""Deterministic workload suites: many graphs from one seed.

:func:`workload_suite` samples specs across the generator families so a
single ``(count, seed)`` pair names a reproducible population of designs
-- the input side of a large batch sweep.  :func:`stimuli_for` derives a
deterministic stimulus vector per input node, so any suite member can be
co-simulated against the golden interpreter without hand-written data.
"""

from __future__ import annotations

import random
from typing import Iterable, Mapping, Sequence

from ..graph.taskgraph import TaskGraph
from .generators import (ChainSpec, DctSpec, EqualizerSpec, ForkJoinSpec,
                         LayeredDagSpec, RandomDagSpec, TreeSpec,
                         WorkloadError, WorkloadSpec)

__all__ = ["DEFAULT_FAMILIES", "SCALE_SUITE_SIZES", "workload_suite",
           "scale_suite", "build_graphs", "stimuli_for"]

#: Family sampling order of :func:`workload_suite`.
DEFAULT_FAMILIES = ("layered", "fork_join", "chain", "tree", "equalizer",
                    "dct")

#: Node counts of the default :func:`scale_suite` -- the designs whose
#: reachable composition products outgrow the explicit verifier's
#: ``max_states`` and are only provable by the symbolic tier.
SCALE_SUITE_SIZES = (200, 500)


def _sample(family: str, rng: random.Random, seed: int) -> WorkloadSpec:
    """Draw one spec of ``family`` with rng-chosen knobs."""
    ccr = rng.choice((0.5, 1.0, 2.0))
    hw_bias = rng.choice((0.3, 0.5, 0.7))
    spread = rng.choice((2.0, 4.0, 8.0))
    if family == "layered":
        layers = rng.randint(3, 5)
        return LayeredDagSpec(seed=seed, nodes=rng.randint(layers + 3, 16),
                              layers=layers, inputs=rng.randint(1, 2),
                              outputs=rng.randint(1, 2), ccr=ccr,
                              hw_bias=hw_bias, cost_spread=spread)
    if family == "fork_join":
        return ForkJoinSpec(seed=seed, branches=rng.randint(2, 5),
                            depth=rng.randint(1, 3), ccr=ccr,
                            hw_bias=hw_bias, cost_spread=spread)
    if family == "chain":
        return ChainSpec(seed=seed, length=rng.randint(4, 10), ccr=ccr,
                         hw_bias=hw_bias, cost_spread=spread)
    if family == "tree":
        return TreeSpec(seed=seed, depth=rng.randint(2, 3),
                        arity=rng.randint(2, 3), ccr=ccr, hw_bias=hw_bias,
                        cost_spread=spread)
    if family == "equalizer":
        return EqualizerSpec(seed=seed, bands=rng.randint(2, 6),
                             words=rng.choice((8, 16)),
                             taps_per_band=rng.choice((3, 5, 7)))
    if family == "dct":
        points = rng.choice((4, 8))
        return DctSpec(seed=seed, points=points,
                       coefficients=rng.randint(2, points))
    raise WorkloadError(f"unknown workload family {family!r}")


def workload_suite(count: int, seed: int = 0,
                   families: Sequence[str] = DEFAULT_FAMILIES
                   ) -> list[WorkloadSpec]:
    """``count`` specs cycling through ``families``, deterministic in seed.

    Every spec gets a distinct ``seed`` field derived from the suite
    seed, so the built graphs carry unique names and fingerprints even
    when two draws land on the same family and knobs.
    """
    if count < 1:
        raise WorkloadError("suite needs count >= 1")
    if not families:
        raise WorkloadError("suite needs at least one family")
    # string seeds use the hash-independent sha512 path of random.seed
    rng = random.Random(f"workload-suite:{seed}")
    return [_sample(families[i % len(families)], rng, seed=seed * 100_000 + i)
            for i in range(count)]


def scale_suite(sizes: Sequence[int] = SCALE_SUITE_SIZES
                ) -> list[RandomDagSpec]:
    """Beyond-``max_states`` spec variants: one random DAG per size.

    The verification scale population: each spec seeds its generator
    with its own node count (matching the long-standing scale-graph
    convention of the benches, so ``sizes=(80,)`` reproduces the
    ``random_80_80`` design bit-for-bit).  Kept out of
    :func:`workload_suite`'s sampled rotation on purpose -- a 500-node
    member would dominate any sweep it appeared in; callers opt into
    scale explicitly.
    """
    if not sizes:
        raise WorkloadError("scale suite needs at least one size")
    return [RandomDagSpec(seed=size, nodes=size) for size in sizes]


def build_graphs(specs: Iterable[WorkloadSpec]) -> list[TaskGraph]:
    """Build every spec (convenience for sweep drivers)."""
    return [spec.build() for spec in specs]


def stimuli_for(graph: TaskGraph, seed: int = 0
                ) -> Mapping[str, list[int]]:
    """A deterministic stimulus vector for every input node of ``graph``.

    Values are drawn per (seed, node name), independent of node order,
    and fit the node's bit width -- ready for both the golden
    :func:`repro.graph.execute` interpreter and the co-simulator.
    """
    stimuli: dict[str, list[int]] = {}
    for node in graph.inputs():
        rng = random.Random(f"stimuli:{seed}:{graph.name}:{node.name}")
        stimuli[node.name] = [rng.randrange(1 << node.width)
                              for _ in range(node.words)]
    return stimuli
