"""Co-simulation: bus, memory, unit models and the full-system driver."""

from .bus import BusModel, BusRequest
from .memory import MemoryModel
from .units import SimError, UnitSim
from .system import CoSimulation, SimResult

__all__ = ["BusModel", "BusRequest", "MemoryModel", "SimError", "UnitSim",
           "CoSimulation", "SimResult"]
