"""Processing-unit models for co-simulation.

One :class:`UnitSim` instance per processing resource (processor, FPGA,
I/O controller).  A unit is a server: the system controller starts one
node at a time on it; the unit gathers that node's operand values
(local values stay inside the unit, cross-unit values are delivered by
bus reads or direct-channel transfers), computes for the node's latency,
then raises a ``done`` pulse with the produced value.

The *functional* behaviour is the shared executable semantics of
:mod:`repro.graph.semantics` -- software and hardware implement the same
function, so the simulator evaluates the same code with different
timing, which is exactly the abstraction level of a co-simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.semantics import evaluate_node
from ..graph.taskgraph import TaskGraph

__all__ = ["UnitSim", "SimError"]


class SimError(RuntimeError):
    """Raised when the simulated system reaches an inconsistent state."""


@dataclass
class _Activation:
    node: str
    waiting_for: set[str]      # edge names still to be delivered
    remaining: int             # compute ticks left once inputs present
    started_compute: bool = False


@dataclass
class UnitSim:
    """One processing unit."""

    resource: str
    graph: TaskGraph
    #: node -> compute latency in bus ticks
    latency: dict[str, int]
    #: stimuli for input nodes owned by this unit (I/O controller)
    stimuli: dict[str, list[int]] = field(default_factory=dict)

    active: _Activation | None = None
    local_values: dict[str, list[int]] = field(default_factory=dict)
    delivered: dict[str, list[int]] = field(default_factory=dict)
    outputs: dict[str, list[int]] = field(default_factory=dict)
    busy_ticks: int = 0
    completions: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.active = None
        self.local_values.clear()
        self.delivered.clear()
        self.outputs.clear()
        self.completions.clear()

    def start(self, node_name: str, cross_edges: set[str]) -> None:
        """System-controller start command for one node."""
        if self.active is not None:
            raise SimError(f"unit {self.resource}: start {node_name!r} "
                           f"while {self.active.node!r} is active")
        waiting = {e for e in cross_edges if e not in self.delivered}
        self.active = _Activation(node_name, waiting,
                                  max(self.latency[node_name], 1))

    def deliver(self, edge_name: str, values: list[int]) -> None:
        """A cross-unit payload arrives (bus read or direct channel)."""
        self.delivered[edge_name] = list(values)
        if self.active is not None:
            self.active.waiting_for.discard(edge_name)

    def value_of(self, node_name: str) -> list[int]:
        """Produced value of a node that ran on this unit."""
        try:
            return self.local_values[node_name]
        except KeyError:
            raise SimError(f"unit {self.resource}: no value for "
                           f"{node_name!r}") from None

    # ------------------------------------------------------------------
    def _gather_inputs(self, node_name: str) -> list[list[int]]:
        inputs: list[list[int]] = []
        for edge in self.graph.in_edges(node_name):
            if edge.name in self.delivered:
                inputs.append(self.delivered[edge.name])
            elif edge.src in self.local_values:
                inputs.append(self.local_values[edge.src])
            else:
                raise SimError(f"unit {self.resource}: operand {edge.name} "
                               f"of {node_name!r} unavailable")
        return inputs

    def _compute(self, node_name: str) -> list[int]:
        node = self.graph.node(node_name)
        if node.is_input:
            if node_name not in self.stimuli:
                raise SimError(f"no stimulus for input {node_name!r}")
            return [v & ((1 << node.width) - 1)
                    for v in self.stimuli[node_name]]
        return evaluate_node(node, self._gather_inputs(node_name))

    def step(self) -> str | None:
        """One tick; returns a completed node name when done fires."""
        if self.active is None:
            return None
        act = self.active
        if act.waiting_for:
            return None  # stalled on operand delivery
        act.started_compute = True
        self.busy_ticks += 1
        act.remaining -= 1
        if act.remaining > 0:
            return None
        value = self._compute(act.node)
        self.local_values[act.node] = value
        node = self.graph.node(act.node)
        if node.is_output:
            self.outputs[act.node] = value
        self.completions.append(act.node)
        self.active = None
        return act.node

    def stats(self) -> dict:
        return {"resource": self.resource, "busy_ticks": self.busy_ticks,
                "nodes_executed": len(self.completions)}
