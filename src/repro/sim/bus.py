"""Bus model with arbitration for co-simulation.

One burst at a time; pending requests are granted by a pluggable
arbiter (:mod:`repro.controllers.bus_arbiter`).  A read request of an
edge is only grantable after that edge's write burst completed -- the
data-valid ordering the static schedule guarantees and the simulator
asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..controllers.bus_arbiter import Arbiter, FixedPriorityArbiter

__all__ = ["BusRequest", "BusModel"]


@dataclass
class BusRequest:
    """One queued burst."""

    edge: str
    kind: str          # "write" | "read"
    master: str        # requesting unit (arbitration identity)
    duration: int      # bus ticks once granted
    payload: list[int] = field(default_factory=list)  # for writes


class BusModel:
    """Single shared bus; grants one burst at a time.

    ``write_interlocks`` encodes the cell-reuse ordering of the memory
    map: a write to a cell that an earlier edge occupied (disjoint
    *static* lifetimes) may only be granted once that edge's read burst
    completed.  The static schedule guarantees this order on the board;
    the self-timed simulation must enforce it explicitly, otherwise a
    fast producer could clobber a reused cell early.
    """

    def __init__(self, arbiter: Arbiter | None = None,
                 write_interlocks: dict[str, set[str]] | None = None) -> None:
        self.arbiter = arbiter if arbiter is not None \
            else FixedPriorityArbiter(["sysctl"])
        self.write_interlocks = write_interlocks or {}
        self.pending: list[BusRequest] = []
        self.active: BusRequest | None = None
        self.remaining = 0
        self.busy_ticks = 0
        self.granted_bursts = 0
        self.written_edges: set[str] = set()
        self.read_edges: set[str] = set()

    # ------------------------------------------------------------------
    def request(self, req: BusRequest) -> None:
        self.pending.append(req)

    def mark_written(self, edge: str) -> None:
        self.written_edges.add(edge)

    def _grantable(self, req: BusRequest) -> bool:
        if req.kind == "read":
            return req.edge in self.written_edges
        blockers = self.write_interlocks.get(req.edge, set())
        return blockers <= self.read_edges

    # ------------------------------------------------------------------
    def step(self) -> BusRequest | None:
        """Advance one tick; returns a completed burst (or ``None``)."""
        completed: BusRequest | None = None
        if self.active is not None:
            self.busy_ticks += 1
            self.remaining -= 1
            if self.remaining <= 0:
                completed = self.active
                if completed.kind == "write":
                    self.written_edges.add(completed.edge)
                else:
                    self.read_edges.add(completed.edge)
                self.active = None
        if self.active is None and self.pending:
            candidates = [r for r in self.pending if self._grantable(r)]
            if candidates:
                masters = {r.master for r in candidates}
                known = set(self.arbiter.masters)
                winner_master = self.arbiter.grant(masters & known) \
                    if masters & known else None
                if winner_master is None:
                    # master not in the arbiter's list: FIFO fallback
                    winner = candidates[0]
                else:
                    winner = next(r for r in candidates
                                  if r.master == winner_master)
                self.pending.remove(winner)
                self.active = winner
                self.remaining = max(winner.duration, 1)
                self.granted_bursts += 1
        return completed

    @property
    def idle(self) -> bool:
        return self.active is None and not self.pending

    def stats(self) -> dict:
        return {"busy_ticks": self.busy_ticks,
                "granted_bursts": self.granted_bursts}
