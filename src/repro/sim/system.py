"""Full-system co-simulation.

Executes the *synthesized* system: the
:class:`repro.controllers.ControllerHarness` (phase FSM + sequencers,
derived from the minimized STG) steers unit models over a bus/memory
model, using the co-synthesis memory map and the refined communication
plan.  The simulation ends when the controller reaches its global done
state; the values left at the output units are compared against the
reference interpreter in the tests -- the end-to-end correctness
statement of the whole reproduction.

Timing base: one simulation tick = one bus clock cycle (the CostModel
time unit), so simulated makespans are directly comparable with the
static schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..comm.refine import CommPlan
from ..controllers.bus_arbiter import RoundRobinArbiter
from ..controllers.system_controller import (ControllerHarness,
                                             SystemController)
from ..estimate.model import CostModel
from ..graph.partition import Partition
from ..graph.taskgraph import TaskGraph
from ..platform.architecture import TargetArchitecture
from ..schedule.schedule import Schedule
from .bus import BusModel, BusRequest
from .memory import MemoryModel
from .units import SimError, UnitSim

__all__ = ["CoSimulation", "SimResult"]

#: Direct-channel register transfer: fixed latency in ticks.
DIRECT_TRANSFER_TICKS = 2


@dataclass
class SimResult:
    """Outcome of one co-simulated system activation."""

    outputs: dict[str, list[int]]
    cycles: int
    bus_busy_ticks: int
    unit_busy_ticks: dict[str, int]
    memory_reads: int
    memory_writes: int
    trace_len: int

    def summary(self) -> dict:
        return {
            "cycles": self.cycles,
            "bus_busy_ticks": self.bus_busy_ticks,
            "unit_busy_ticks": dict(self.unit_busy_ticks),
            "memory_reads": self.memory_reads,
            "memory_writes": self.memory_writes,
        }


@dataclass
class _DirectTransfer:
    edge: str
    remaining: int
    payload: list[int]


class CoSimulation:
    """Cycle-stepped simulation of one synthesized implementation."""

    def __init__(self, graph: TaskGraph, partition: Partition,
                 schedule: Schedule, plan: CommPlan,
                 controller: SystemController,
                 arch: TargetArchitecture,
                 stimuli: Mapping[str, list[int]],
                 latencies: Mapping[str, Mapping[str, int]] | None = None
                 ) -> None:
        """``latencies`` optionally overrides per-resource node latencies
        (e.g. exact post-HLS cycle counts); defaults to the CostModel."""
        self.graph = graph
        self.partition = partition
        self.schedule = schedule
        self.plan = plan
        self.arch = arch
        self.controller = controller
        self.harness = ControllerHarness(controller)
        model = CostModel(graph, arch)

        self.units: dict[str, UnitSim] = {}
        for resource in partition.resources_used:
            table: dict[str, int] = {}
            for name in partition.nodes_on(resource):
                if latencies and resource in latencies \
                        and name in latencies[resource]:
                    table[name] = latencies[resource][name]
                else:
                    table[name] = model.latency(name, resource)
            unit_stimuli = {}
            if resource == "io":
                unit_stimuli = {n.name: list(stimuli[n.name])
                                for n in graph.inputs()}
            self.units[resource] = UnitSim(resource, graph, table,
                                           unit_stimuli)

        masters = ["sysctl"] + list(self.units)
        interlocks: dict[str, set[str]] = {}
        cells = plan.memory_map.cells
        for later_name, later in cells.items():
            for earlier_name, earlier in cells.items():
                if earlier_name == later_name:
                    continue
                if earlier.overlaps_in_space(later) \
                        and earlier.live_until <= later.live_from:
                    interlocks.setdefault(later_name, set()).add(
                        earlier_name)
        self.bus = BusModel(RoundRobinArbiter(masters), interlocks)
        self.memory = MemoryModel(arch.memory, plan.memory_map)
        self.model = model
        self.direct_in_flight: list[_DirectTransfer] = []
        self.cycles = 0
        self._edge_by_name = {e.name: e for e in graph.edges}
        self._pending_done: set[str] = set()
        self.trace: list[tuple[int, str]] = []

    # ------------------------------------------------------------------
    def _producer_unit(self, edge_name: str) -> UnitSim:
        edge = self._edge_by_name[edge_name]
        return self.units[self.partition.resource_of(edge.src)]

    def _consumer_unit(self, edge_name: str) -> UnitSim:
        edge = self._edge_by_name[edge_name]
        return self.units[self.partition.resource_of(edge.dst)]

    def _handle_action(self, action: str) -> None:
        if action.startswith("reset_"):
            resource = action[len("reset_"):]
            if resource in self.units:
                self.units[resource].reset()
            return
        if action.startswith("start_"):
            node = action[len("start_"):]
            resource = self.partition.resource_of(node)
            cross = {e.name for e in self.graph.in_edges(node)
                     if self.partition.resource_of(e.src) != resource}
            self.units[resource].start(node, cross)
            self.trace.append((self.cycles, action))
            return
        if action.startswith("write_"):
            edge_name = action[len("write_"):]
            channel = self.plan.channel(edge_name)
            producer = self._producer_unit(edge_name)
            edge = self._edge_by_name[edge_name]
            payload = producer.value_of(edge.src)
            if channel.is_direct:
                self.direct_in_flight.append(_DirectTransfer(
                    edge_name, DIRECT_TRANSFER_TICKS, payload))
            else:
                self.bus.request(BusRequest(
                    edge_name, "write", producer.resource,
                    self.model.write_ticks(edge), payload))
            self.trace.append((self.cycles, action))
            return
        if action.startswith("read_"):
            edge_name = action[len("read_"):]
            channel = self.plan.channel(edge_name)
            if channel.is_direct:
                return  # delivery rides on the direct write transfer
            edge = self._edge_by_name[edge_name]
            consumer = self._consumer_unit(edge_name)
            self.bus.request(BusRequest(
                edge_name, "read", consumer.resource,
                self.model.read_ticks(edge)))
            self.trace.append((self.cycles, action))
            return
        # system_done and friends need no simulation effect

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the whole system by one bus tick."""
        done_signals = {f"done_{n}" for n in self._pending_done}
        self._pending_done.clear()
        actions = self.harness.cycle(done_signals)
        for action in actions:
            self._handle_action(action)

        completed = self.bus.step()
        if completed is not None:
            if completed.kind == "write":
                self.memory.write_cell(completed.edge, completed.payload)
            else:
                edge = self._edge_by_name[completed.edge]
                values = self.memory.read_cell(completed.edge, edge.words)
                self._consumer_unit(completed.edge).deliver(
                    completed.edge, values)

        still_flying: list[_DirectTransfer] = []
        for transfer in self.direct_in_flight:
            transfer.remaining -= 1
            if transfer.remaining <= 0:
                self._consumer_unit(transfer.edge).deliver(
                    transfer.edge, transfer.payload)
            else:
                still_flying.append(transfer)
        self.direct_in_flight = still_flying

        for unit in self.units.values():
            finished = unit.step()
            if finished is not None:
                self._pending_done.add(finished)
                self.trace.append((self.cycles, f"done_{finished}"))
        self.cycles += 1

    def run(self, max_cycles: int = 1_000_000) -> SimResult:
        """Run one activation to the controller's done state."""
        stall_window = 0
        last_progress = self.cycles
        while not self.harness.system_done:
            if self.cycles >= max_cycles:
                raise SimError(f"simulation exceeded {max_cycles} cycles")
            before = len(self.trace)
            self.step()
            active_work = (self.bus.active is not None
                           or any(u.active is not None
                                  and not u.active.waiting_for
                                  for u in self.units.values()))
            if len(self.trace) > before or active_work \
                    or self._pending_done:
                last_progress = self.cycles
            stall_window = self.cycles - last_progress
            if stall_window > 50_000:
                raise SimError(
                    f"deadlock: no progress since cycle {last_progress}")
        # final cycles let the controller observe the last done pulses
        outputs = {}
        for unit in self.units.values():
            outputs.update(unit.outputs)
        return SimResult(
            outputs=outputs,
            cycles=self.cycles,
            bus_busy_ticks=self.bus.busy_ticks,
            unit_busy_ticks={r: u.busy_ticks
                             for r, u in self.units.items()},
            memory_reads=self.memory.reads,
            memory_writes=self.memory.writes,
            trace_len=len(self.trace),
        )

    # ------------------------------------------------------------------
    def restart(self, stimuli: Mapping[str, list[int]]) -> None:
        """Arm the next activation (block processing / streaming mode).

        Pulses the controller's ``restart`` input -- the phase FSM walks
        done -> reset -> run, re-clearing the done flags and re-issuing
        the unit resets -- and loads the next stimulus block into the
        I/O controller.  Bus bookkeeping of the previous activation is
        cleared exactly as the system controller's reset phase does on
        the board.
        """
        if not self.harness.system_done:
            raise SimError("restart requested before the activation finished")
        if "io" in self.units:
            self.units["io"].stimuli = {
                n.name: list(stimuli[n.name]) for n in self.graph.inputs()}
        self.bus.written_edges.clear()
        self.bus.read_edges.clear()
        self.direct_in_flight.clear()
        self._pending_done.clear()
        actions = self.harness.cycle(external={"restart"})
        for action in actions:
            self._handle_action(action)
        self.cycles += 1

    def run_stream(self, blocks: list[Mapping[str, list[int]]],
                   max_cycles_per_block: int = 1_000_000
                   ) -> list[SimResult]:
        """Process a sequence of stimulus blocks back to back.

        The first block must match the stimuli the simulation was
        constructed with; each subsequent block re-arms the controller
        via :meth:`restart`.  Returns one :class:`SimResult` per block;
        all counters (cycles, busy ticks, memory traffic, trace length)
        are cumulative across the stream, so per-block figures are the
        difference of consecutive results.  The restart path driven
        here -- phase FSM done -> reset -> run, flag-register clear,
        ``go`` re-arming -- is the same one
        :func:`repro.controllers.verify.verify_composition` proves
        equivalent to a fresh STG activation (the bisimulation tier's
        restart loop), so streamed blocks compute exactly what cold
        activations would.
        """
        results: list[SimResult] = []
        for index, block in enumerate(blocks):
            if index > 0:
                self.restart(block)
            results.append(self.run(max_cycles=self.cycles
                                    + max_cycles_per_block))
        return results
