"""Shared-memory model for co-simulation.

Word-addressable storage matching the board's memory card.  Tracks which
edge cells have been written (the data-valid condition the bus model
enforces before granting reads) and records access counts for the
simulation statistics.
"""

from __future__ import annotations

from ..platform.memory import MemoryDevice
from ..stg.memory import MemoryMap

__all__ = ["MemoryModel"]


class MemoryModel:
    """Simulated shared RAM with a co-synthesis memory map."""

    def __init__(self, device: MemoryDevice, memory_map: MemoryMap) -> None:
        self.device = device
        self.memory_map = memory_map
        self.words: dict[int, int] = {}
        self.reads = 0
        self.writes = 0

    def write_cell(self, edge_name: str, values: list[int]) -> None:
        """Store an edge payload into its allocated cells."""
        cell = self.memory_map.cell(edge_name)
        if len(values) > cell.words:
            raise ValueError(f"edge {edge_name}: {len(values)} words exceed "
                             f"cell of {cell.words}")
        for offset, value in enumerate(values):
            address = cell.address + offset
            if not self.device.contains(address):
                raise ValueError(f"address 0x{address:04X} outside device")
            self.words[address] = value
            self.writes += 1

    def read_cell(self, edge_name: str, n_words: int) -> list[int]:
        """Load an edge payload from its cells."""
        cell = self.memory_map.cell(edge_name)
        values = []
        for offset in range(n_words):
            values.append(self.words.get(cell.address + offset, 0))
            self.reads += 1
        return values

    def stats(self) -> dict:
        return {"reads": self.reads, "writes": self.writes,
                "words_touched": len(self.words)}
