"""Two-level covers of BDD intervals (ESPRESSO-lite).

A *cube* is a conjunction of literals, represented as a sorted tuple of
``(variable, polarity)`` pairs; a *cover* is a tuple of cubes read as
their disjunction (sum of products).  This module extracts compact
covers of an incompletely specified function -- anything between an
onset ``L`` and an upper bound ``U = L or dont_care`` is acceptable:

* :func:`isop` -- the Minato-Morreale irredundant sum-of-products
  recursion over the interval ``[L, U]``;
* :func:`expand_cubes` -- ESPRESSO's *expand* step: greedily drop
  literals from each cube while it stays inside ``U``;
* :func:`irredundant_cover` -- ESPRESSO's *irredundant* step: drop
  whole cubes while the remainder still covers ``L``;
* :func:`minimal_cover` -- the pipeline the guard machinery calls.

The cover algorithms are deterministic: cubes and literals are always
visited in sorted order, so two runs over equal inputs emit equal
covers (fingerprints and generated VHDL must not flap between runs).
"""

from __future__ import annotations

from typing import Callable, Iterable

from .bdd import FALSE, TRUE, BddEngine

__all__ = ["Cube", "cube_node", "cover_node", "isop", "expand_cubes",
           "irredundant_cover", "minimal_cover", "cover_literals",
           "render_cover"]

#: One product term: sorted ``(variable, polarity)`` literals.
Cube = tuple[tuple[int, bool], ...]

#: The tautology cube (empty product).
_TAUTOLOGY: Cube = ()


def cube_node(engine: BddEngine, cube: Cube) -> int:
    """The BDD of one cube."""
    return engine.cube(cube)


def cover_node(engine: BddEngine, cubes: Iterable[Cube]) -> int:
    """The BDD of a cover (disjunction of its cubes)."""
    return engine.disj(engine.cube(cube) for cube in cubes)


def isop(engine: BddEngine, lower: int, upper: int
         ) -> tuple[tuple[Cube, ...], int]:
    """An irredundant SOP ``cover`` with ``lower <= cover <= upper``.

    The Minato-Morreale recursion: branch on the top variable, extract
    the cubes that need a negative / positive literal, recurse on what
    remains without the variable.  Returns ``(cubes, node)`` where
    ``node`` is the BDD of the cover.  Raises when the interval is
    empty (``lower`` must imply ``upper``).
    """
    if not engine.implies(lower, upper):
        raise ValueError("isop needs lower <= upper")
    cache: dict[tuple[int, int], tuple[tuple[Cube, ...], int]] = {}

    def recurse(low: int, up: int) -> tuple[tuple[Cube, ...], int]:
        if low == FALSE:
            return (), FALSE
        if up == TRUE:
            return (_TAUTOLOGY,), TRUE
        key = (low, up)
        hit = cache.get(key)
        if hit is not None:
            return hit
        var = engine.top_var(low)
        up_var = engine.top_var(up)
        if var is None or (up_var is not None and up_var < var):
            var = up_var
        low0 = engine.cofactor(low, var, False)
        low1 = engine.cofactor(low, var, True)
        up0 = engine.cofactor(up, var, False)
        up1 = engine.cofactor(up, var, True)
        # cubes that must carry the negative / positive literal
        cubes0, node0 = recurse(engine.diff(low0, up1), up0)
        cubes1, node1 = recurse(engine.diff(low1, up0), up1)
        # what is still uncovered may be covered variable-free
        rest0 = engine.diff(low0, node0)
        rest1 = engine.diff(low1, node1)
        cubes2, node2 = recurse(engine.or_(rest0, rest1),
                                engine.and_(up0, up1))
        nlit = (var, False)
        plit = (var, True)
        cubes = tuple(tuple(sorted(cube + (nlit,))) for cube in cubes0) \
            + tuple(tuple(sorted(cube + (plit,))) for cube in cubes1) \
            + cubes2
        node = engine.or_(
            engine.or_(engine.and_(engine.nvar(var), node0),
                       engine.and_(engine.var(var), node1)), node2)
        cache[key] = (cubes, node)
        return cubes, node

    cubes, node = recurse(lower, upper)
    return tuple(sorted(cubes)), node


def expand_cubes(engine: BddEngine, cubes: Iterable[Cube],
                 upper: int) -> tuple[Cube, ...]:
    """ESPRESSO *expand*: drop literals while each cube stays in ``upper``.

    Literals are tried in sorted order, so expansion is deterministic.
    Duplicate and subsumed results collapse (an expanded cube absorbs
    any other cube it contains).
    """
    expanded: list[Cube] = []
    for cube in sorted(set(cubes)):
        current = cube
        for literal in cube:
            shorter = tuple(l for l in current if l != literal)
            if engine.implies(engine.cube(shorter), upper):
                current = shorter
        expanded.append(current)
    # absorption: a cube contained in another is redundant
    kept: list[Cube] = []
    for cube in sorted(expanded, key=len):
        if not any(set(other) <= set(cube) for other in kept):
            kept.append(cube)
    return tuple(sorted(kept))


def irredundant_cover(engine: BddEngine, cubes: Iterable[Cube],
                      lower: int) -> tuple[Cube, ...]:
    """ESPRESSO *irredundant*: drop cubes while ``lower`` stays covered.

    Cubes are tried largest-first (most literals first), so the cheap
    cubes survive; ties break on the sorted cube order.
    """
    kept = sorted(set(cubes))
    for cube in sorted(kept, key=lambda c: (-len(c), c)):
        rest = [c for c in kept if c != cube]
        if engine.implies(lower, cover_node(engine, rest)):
            kept = rest
    return tuple(sorted(kept))


def minimal_cover(engine: BddEngine, onset: int,
                  dont_care: int = FALSE) -> tuple[Cube, ...]:
    """A compact SOP of ``onset`` exploiting ``dont_care`` freedom.

    ISOP over the interval, then expand against the upper bound, then
    the irredundant pass against the onset.  Not guaranteed minimum
    (that is NP-hard) but small, deterministic, and always within
    ``[onset, onset or dont_care]``.
    """
    upper = engine.or_(onset, dont_care)
    cubes, _ = isop(engine, onset, upper)
    cubes = expand_cubes(engine, cubes, upper)
    return irredundant_cover(engine, cubes, onset)


def cover_literals(cubes: Iterable[Cube]) -> int:
    """Total literal count of a cover (the emitter's cost metric)."""
    return sum(len(cube) for cube in cubes)


def render_cover(cubes: Iterable[Cube],
                 name_of: Callable[[int], str],
                 negate: str = "!") -> str:
    """Deterministic text form, e.g. ``a&!b | c`` (debug / labels)."""
    cubes = tuple(cubes)
    if not cubes:
        return "0"
    terms = []
    for cube in cubes:
        if not cube:
            terms.append("1")
            continue
        terms.append("&".join(
            (name_of(var) if positive else negate + name_of(var))
            for var, positive in cube))
    return " | ".join(terms)
