"""Relational algebra over the hash-consed BDD engine.

The symbolic verification tier (:mod:`repro.automata.symbolic`) works
with *state sets as characteristic functions* and *transition relations
as boolean functions over paired variable blocks*.  This module is the
algebra those objects need on top of :class:`~repro.symbolic.bdd.BddEngine`:

* :func:`exists` / :func:`forall` -- quantification over a variable set
  (one linear pass with node memoization, early-terminating ``or`` on
  the existential branch);
* :func:`rename` -- simultaneous variable substitution (the
  current-state / next-state block swap), validated to be injective and
  collision-free so the ite-composition is sound for any order;
* :class:`VariablePairing` -- the interleaved current/next variable
  convention (``current bit i -> 2i``, ``next bit i -> 2i+1``), which
  keeps each relation's corresponding bits adjacent in the engine's
  fixed ascending order -- the standard layout that keeps relation BDDs
  small;
* :func:`and_exists` -- the relational product ``exists V. f and g``
  fused into one recursive pass (never building the full conjunction),
  with early termination on a TRUE existential branch;
* :func:`relational_image` -- one symbolic image step through a
  partitioned transition relation: disjunctive partitions (per input
  letter) distribute over the union, conjunctive partitions (per
  component) are scheduled with *early quantification* -- each current
  variable is quantified out in the first conjunction after which no
  later partition mentions it;
* :func:`reachable_states` -- image iteration to the least fixpoint,
  returning the reachable characteristic function and the iteration
  count.

Everything routes through the owning engine's memoized ``ite``/``_mk``,
so repeated subproblems stay shared and the node/hit-rate counters in
:meth:`BddEngine.stats` cover this layer too.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from .bdd import FALSE, TRUE, BddEngine, BddError

__all__ = ["VariablePairing", "exists", "forall", "rename", "and_exists",
           "relational_image", "reachable_states"]


def exists(engine: BddEngine, f: int, variables: Iterable[int]) -> int:
    """``exists variables. f`` -- existential quantification."""
    variables = frozenset(variables)
    if not variables:
        return f
    engine._check(f)
    last = max(variables)
    var, low, high = engine._var, engine._low, engine._high
    cache: dict[int, int] = {}

    def walk(node: int) -> int:
        # below the deepest quantified variable nothing changes
        if node <= TRUE or var[node] > last:
            return node
        done = cache.get(node)
        if done is None:
            level = var[node]
            lo = walk(low[node])
            if level in variables:
                done = TRUE if lo == TRUE \
                    else engine.or_(lo, walk(high[node]))
            else:
                done = engine._mk(level, lo, walk(high[node]))
            cache[node] = done
        return done

    return walk(f)


def forall(engine: BddEngine, f: int, variables: Iterable[int]) -> int:
    """``forall variables. f`` -- dual of :func:`exists`."""
    return engine.not_(exists(engine, engine.not_(f), variables))


def rename(engine: BddEngine, f: int,
           mapping: Mapping[int, int]) -> int:
    """``f`` with every variable ``v`` replaced by ``mapping[v]``.

    The substitution is simultaneous.  It must be injective on the
    variables it actually moves and its targets must not collide with
    the un-renamed support -- otherwise two distinct variables would
    alias and the composition below would be unsound, so that is
    rejected rather than silently computed.
    """
    engine._check(f)
    moving = {s: t for s, t in mapping.items() if s != t}
    if not moving:
        return f
    support = engine.support(f)
    sources = support & set(moving)
    targets = {moving[s] for s in sources}
    if len(targets) != len(sources):
        raise BddError("rename mapping is not injective on the support")
    if targets & (support - sources):
        raise BddError("rename targets collide with un-renamed support "
                       "variables")
    var, low, high = engine._var, engine._low, engine._high
    cache: dict[int, int] = {}

    def walk(node: int) -> int:
        if node <= TRUE:
            return node
        done = cache.get(node)
        if done is None:
            level = var[node]
            lo, hi = walk(low[node]), walk(high[node])
            # ite-composition is order-agnostic: correct even when the
            # substitution is not monotone in the variable order
            done = engine.ite(engine.var(moving.get(level, level)), hi, lo)
            cache[node] = done
        return done

    return walk(f)


def and_exists(engine: BddEngine, f: int, g: int,
               variables: Iterable[int]) -> int:
    """``exists variables. f and g`` without building the conjunction.

    The relational-product workhorse: quantification happens *inside*
    the conjunction recursion, so the (often much larger) intermediate
    ``f and g`` BDD never materializes, and a TRUE existential branch
    short-circuits its sibling.
    """
    variables = frozenset(variables)
    engine._check(f)
    engine._check(g)
    if not variables:
        return engine.and_(f, g)
    last = max(variables)
    var = engine._var
    cache: dict[tuple[int, int], int] = {}

    def walk(a: int, b: int) -> int:
        if a == FALSE or b == FALSE:
            return FALSE
        if b < a:  # conjunction commutes: canonical cache key
            a, b = b, a
        level = min(var[a], var[b])
        if level > last:  # no quantified variable left below here
            return engine.and_(a, b)
        key = (a, b)
        done = cache.get(key)
        if done is None:
            a0, a1 = engine._cofactors(a, level)
            b0, b1 = engine._cofactors(b, level)
            if level in variables:
                done = walk(a0, b0)
                if done != TRUE:
                    done = engine.or_(done, walk(a1, b1))
            else:
                done = engine._mk(level, walk(a0, b0), walk(a1, b1))
            cache[key] = done
        return done

    return walk(f, g)


class VariablePairing:
    """Interleaved current/next variable blocks for relation encoding.

    Bit ``i`` of the current state lives at engine variable ``2i``, bit
    ``i`` of the next state at ``2i + 1`` -- corresponding bits are
    adjacent in the fixed ascending order, the classic interleaving
    that keeps transition-relation BDDs compact.  The pairing is pure
    arithmetic (no engine state), so one instance can serve any number
    of engines and the layout is deterministic by construction.
    """

    __slots__ = ("bits",)

    def __init__(self, bits: int) -> None:
        if bits < 1:
            raise BddError(f"a pairing needs at least one bit, got {bits}")
        self.bits = bits

    def current(self, bit: int) -> int:
        self._check_bit(bit)
        return 2 * bit

    def next(self, bit: int) -> int:
        self._check_bit(bit)
        return 2 * bit + 1

    @property
    def current_vars(self) -> tuple[int, ...]:
        return tuple(2 * bit for bit in range(self.bits))

    @property
    def next_vars(self) -> tuple[int, ...]:
        return tuple(2 * bit + 1 for bit in range(self.bits))

    def prime(self, engine: BddEngine, f: int) -> int:
        """Rename current-state variables to their next-state partners."""
        return rename(engine, f, {2 * b: 2 * b + 1
                                  for b in range(self.bits)})

    def unprime(self, engine: BddEngine, f: int) -> int:
        """Rename next-state variables back to current-state ones."""
        return rename(engine, f, {2 * b + 1: 2 * b
                                  for b in range(self.bits)})

    def state_cube(self, engine: BddEngine, index: int,
                   primed: bool = False) -> int:
        """The minterm of state ``index`` over one variable block."""
        offset = 1 if primed else 0
        return engine.cube(((2 * bit + offset, bool(index >> bit & 1))
                            for bit in range(self.bits)))

    def _check_bit(self, bit: int) -> None:
        if not 0 <= bit < self.bits:
            raise BddError(f"bit {bit} outside pairing of {self.bits} bits")


def relational_image(engine: BddEngine, source: int,
                     relations: Sequence[int], pairing: VariablePairing,
                     disjunctive: bool = False) -> int:
    """States reachable in one step of a partitioned relation.

    ``source`` is a characteristic function over the current-state
    block; ``relations`` the partitioned transition relation over
    current + next blocks.  With ``disjunctive=True`` the partitions
    are united (one partition per input letter: image distributes over
    the union).  Otherwise they are conjoined with early-quantification
    scheduling: walking the partitions in order, every current-state
    variable is quantified out in the first :func:`and_exists` after
    which no later partition mentions it, so intermediate products stay
    as small as the partition order allows.  Returns the image over the
    *current* block (already un-primed).
    """
    current = frozenset(pairing.current_vars)
    if disjunctive:
        image = FALSE
        for relation in relations:
            image = engine.or_(image, and_exists(engine, source, relation,
                                                 current))
        return pairing.unprime(engine, image)
    supports = [engine.support(relation) for relation in relations]
    image = source
    for index, relation in enumerate(relations):
        later: set[int] = set()
        for support in supports[index + 1:]:
            later |= support
        ripe = (current & (engine.support(image) | supports[index])) - later
        image = and_exists(engine, image, relation, ripe)
    image = exists(engine, image, current & engine.support(image))
    return pairing.unprime(engine, image)


def reachable_states(engine: BddEngine, initial: int,
                     relations: Sequence[int], pairing: VariablePairing,
                     disjunctive: bool = False) -> tuple[int, int]:
    """Least fixpoint of :func:`relational_image` from ``initial``.

    Frontier-based image iteration: each round images only the states
    discovered in the previous round, so converged parts of the state
    space are not re-imaged.  Returns ``(reachable characteristic
    function, image iterations)``.
    """
    reached = initial
    frontier = initial
    iterations = 0
    while frontier != FALSE:
        iterations += 1
        image = relational_image(engine, frontier, relations, pairing,
                                 disjunctive=disjunctive)
        frontier = engine.diff(image, reached)
        reached = engine.or_(reached, frontier)
    return reached, iterations
