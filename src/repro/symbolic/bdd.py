"""Hash-consed reduced ordered BDDs over the kernel's signal IDs.

One :class:`BddEngine` owns a forest of ROBDD nodes.  Variables are
plain non-negative integers -- in kernel use they are the dense symbol
IDs an :class:`~repro.automata.SymbolTable` interns -- and the variable
order is fixed to ascending numeric ID.  A fixed order makes every
function *canonical by construction*: two guards that denote the same
boolean function resolve to the same node index no matter how they were
built, so equality, implication and tautology checks are O(1)-ish
lookups instead of SAT-shaped searches.

Nodes are hash-consed through a unique table and all binary operations
route through :meth:`BddEngine.ite` with a computed table, so repeated
guard algebra (the minimizer OR-merging transitions into the same
successor block, the emitter building effective cascade guards) stays
near-linear in the number of *distinct* subproblems.

The engine deliberately has no complement edges and no garbage
collector: guard forests in this repo are thousands of nodes at the
very largest, and dropping the whole engine frees everything.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..fingerprint import content_hash

__all__ = ["BddError", "BddEngine", "FALSE", "TRUE"]


class BddError(ValueError):
    """Raised for malformed variables or foreign node references."""


#: Terminal node indices, shared by every engine.
FALSE = 0
TRUE = 1

#: Sentinel level of the terminals: below every real variable.
_TERMINAL_LEVEL = 1 << 60


class BddEngine:
    """A hash-consing ROBDD manager with a fixed ascending variable order.

    Node references are plain ints; ``FALSE`` (0) and ``TRUE`` (1) are
    the terminals.  References are only meaningful within the engine
    that produced them.
    """

    __slots__ = ("_var", "_low", "_high", "_unique", "_ite_cache",
                 "_var_nodes", "_ite_calls", "_ite_hits")

    def __init__(self) -> None:
        # index-aligned node arrays; slots 0/1 are the terminals
        self._var: list[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._low: list[int] = [FALSE, TRUE]
        self._high: list[int] = [FALSE, TRUE]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._var_nodes: dict[int, int] = {}
        #: non-terminal ite calls / computed-table hits, for stats()
        self._ite_calls = 0
        self._ite_hits = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def var(self, variable: int) -> int:
        """The function ``variable`` (a positive literal)."""
        node = self._var_nodes.get(variable)
        if node is None:
            if variable < 0:
                raise BddError(f"variable IDs must be >= 0, got {variable}")
            node = self._mk(variable, FALSE, TRUE)
            self._var_nodes[variable] = node
        return node

    def nvar(self, variable: int) -> int:
        """The function ``not variable`` (a negative literal)."""
        return self.not_(self.var(variable))

    def literal(self, variable: int, positive: bool) -> int:
        return self.var(variable) if positive else self.nvar(variable)

    def cube(self, literals: Iterable[tuple[int, bool]]) -> int:
        """Conjunction of ``(variable, polarity)`` literals."""
        node = TRUE
        for variable, positive in sorted(set(literals)):
            node = self.and_(node, self.literal(variable, positive))
        return node

    def conj(self, variables: Iterable[int]) -> int:
        """Conjunction of positive literals (the kernel's plain guard)."""
        node = TRUE
        for variable in sorted(set(variables)):
            node = self.and_(node, self.var(variable))
        return node

    def disj(self, nodes: Iterable[int]) -> int:
        out = FALSE
        for node in nodes:
            out = self.or_(out, node)
        return out

    # ------------------------------------------------------------------
    # boolean algebra (all through the one memoized ite)
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """``if f then g else h``, the one connective everything uses."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        self._ite_calls += 1
        cached = self._ite_cache.get(key)
        if cached is not None:
            self._ite_hits += 1
            return cached
        var = self._var
        level = min(var[f], var[g], var[h])
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        node = self._mk(level, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        self._ite_cache[key] = node
        return node

    def not_(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def xor(self, f: int, g: int) -> int:
        return self.ite(f, self.not_(g), g)

    def diff(self, f: int, g: int) -> int:
        """``f and not g`` (the cover algorithms' workhorse)."""
        return self.ite(f, self.not_(g), FALSE)

    # ------------------------------------------------------------------
    # cofactors and structure
    # ------------------------------------------------------------------
    def cofactor(self, f: int, variable: int, value: bool) -> int:
        """``f`` with ``variable`` fixed to ``value`` (Shannon cofactor)."""
        self._check(f)
        cache: dict[int, int] = {}

        def walk(node: int) -> int:
            top = self._var[node]
            if top > variable:
                return node
            if top == variable:
                return self._high[node] if value else self._low[node]
            done = cache.get(node)
            if done is None:
                done = self._mk(top, walk(self._low[node]),
                                walk(self._high[node]))
                cache[node] = done
            return done

        return walk(f)

    def top_var(self, f: int) -> int | None:
        """The smallest (top-most) variable of ``f``; None on terminals."""
        self._check(f)
        level = self._var[f]
        return None if level == _TERMINAL_LEVEL else level

    def support(self, f: int) -> frozenset[int]:
        """Every variable ``f`` actually depends on."""
        self._check(f)
        seen: set[int] = set()
        out: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            out.add(self._var[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return frozenset(out)

    # ------------------------------------------------------------------
    # decision procedures
    # ------------------------------------------------------------------
    def implies(self, f: int, g: int) -> bool:
        """Does ``f -> g`` hold universally?"""
        return self.diff(f, g) == FALSE

    def equivalent(self, f: int, g: int) -> bool:
        """Canonical representation makes this a pointer comparison."""
        self._check(f)
        self._check(g)
        return f == g

    def is_tautology(self, f: int) -> bool:
        self._check(f)
        return f == TRUE

    def is_false(self, f: int) -> bool:
        self._check(f)
        return f == FALSE

    def eval(self, f: int, true_variables) -> bool:
        """Evaluate under the valuation ``v -> (v in true_variables)``."""
        self._check(f)
        node = f
        while node > TRUE:
            if self._var[node] in true_variables:
                node = self._high[node]
            else:
                node = self._low[node]
        return node == TRUE

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def size(self, f: int) -> int:
        """Number of internal DAG nodes reachable from ``f``."""
        self._check(f)
        seen: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return len(seen)

    def fingerprint(self, f: int,
                    name_of: Callable[[int], str] | None = None) -> str:
        """Stable content hash of the function ``f`` denotes.

        Serializes the reachable DAG in a deterministic depth-first
        numbering; with ``name_of`` the variables are rendered by name,
        so fingerprints agree across engines whose interning order
        differs (two automata over the same signal names hash alike).
        """
        self._check(f)
        index: dict[int, int] = {FALSE: 0, TRUE: 1}
        rows: list[tuple] = []

        def walk(node: int) -> int:
            known = index.get(node)
            if known is not None:
                return known
            low = walk(self._low[node])
            high = walk(self._high[node])
            variable = self._var[node]
            label = name_of(variable) if name_of is not None else variable
            index[node] = len(index)
            rows.append((label, low, high))
            return index[node]

        root = walk(f)
        return content_hash(("bdd", root, tuple(rows)))

    def __len__(self) -> int:
        """Total nodes ever built (terminals included)."""
        return len(self._var)

    def stats(self) -> dict:
        """Observability counters for verify-regression diagnosis.

        ``nodes`` counts every node ever hash-consed (terminals
        included, nothing is ever garbage-collected), ``unique_table``
        is the live unique-table population, and ``ite_hit_rate`` is
        the computed-table hit fraction over the non-terminal ``ite``
        calls so far (1.0-worthy workloads re-derive nothing).
        """
        return {
            "nodes": len(self._var),
            "unique_table": len(self._unique),
            "ite_calls": self._ite_calls,
            "ite_hit_rate": (round(self._ite_hits / self._ite_calls, 4)
                             if self._ite_calls else 0.0),
        }

    # ------------------------------------------------------------------
    def _mk(self, variable: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (variable, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            self._var.append(variable)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def _cofactors(self, f: int, level: int) -> tuple[int, int]:
        if self._var[f] != level:
            return f, f
        return self._low[f], self._high[f]

    def _check(self, f: int) -> None:
        if not 0 <= f < len(self._var):
            raise BddError(f"node {f} does not belong to this engine")
