"""Symbolic guard engine: hash-consed BDDs + two-level covers.

The kernel's transition guards were historically flat conjunctions of
positive literals; this package is the algebra that lets them grow into
arbitrary boolean functions without giving up canonicity:

* :mod:`repro.symbolic.bdd` -- a hash-consed ROBDD engine over interned
  signal IDs (fixed ascending variable order, memoized ``ite``), so
  semantically equal guards are pointer-equal and implication /
  tautology are cheap;
* :mod:`repro.symbolic.cover` -- ESPRESSO-lite two-level covers
  (Minato-Morreale ISOP, expand, irredundant) for emitting compact
  sum-of-products expressions;
* :mod:`repro.symbolic.guards` -- the :class:`Guard` value kernel
  transitions carry on the non-plain path;
* :mod:`repro.symbolic.relation` -- quantification, variable-pairing
  substitution and the ``and_exists`` relational product with
  early-quantification image scheduling, the substrate of the symbolic
  verification tier (:mod:`repro.automata.symbolic`).

Integration with the automaton kernel lives in
:mod:`repro.automata.simplify` (guard-merging minimization and
don't-care simplification) and :mod:`repro.codegen.vhdl` (factored
guard rendering).
"""

from .bdd import FALSE, TRUE, BddEngine, BddError
from .cover import (Cube, cover_literals, cover_node, cube_node,
                    expand_cubes, irredundant_cover, isop, minimal_cover,
                    render_cover)
from .guards import Guard, guard_from_cover, plain_cube
from .relation import (VariablePairing, and_exists, exists, forall,
                       reachable_states, relational_image, rename)

__all__ = [
    "FALSE", "TRUE", "BddEngine", "BddError",
    "Cube", "cover_literals", "cover_node", "cube_node", "expand_cubes",
    "irredundant_cover", "isop", "minimal_cover", "render_cover",
    "Guard", "guard_from_cover", "plain_cube",
    "VariablePairing", "and_exists", "exists", "forall",
    "reachable_states", "relational_image", "rename",
]
