"""Guard objects: the bridge between kernel transitions and the BDD engine.

A :class:`Guard` is one boolean function over interned signal IDs,
carried by a :class:`~repro.automata.Transition` whenever its firing
condition is richer than a plain conjunction of positive literals (the
kernel's zero-cost fast path).  It keeps three views in sync:

* ``engine``/``node`` -- the canonical ROBDD, for algebra (disjunction
  when the minimizer merges transitions, implication when the
  bisimulation checker skips subsumed edges);
* ``cover`` -- a deterministic two-level cover (sorted cubes of
  ``(signal, polarity)`` literals), for rendering, hashing and cheap
  structural equality across engines;
* :meth:`eval` -- direct evaluation against a latched input set, for
  the executors.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..fingerprint import content_hash
from .bdd import FALSE, TRUE, BddEngine
from .cover import Cube, cover_node, render_cover

__all__ = ["Guard", "guard_from_cover", "plain_cube"]


def plain_cube(cover: Iterable[Cube]) -> tuple[int, ...] | None:
    """The positive conjunction a cover denotes, or ``None``.

    A cover that is a single all-positive cube (or the constant TRUE)
    is representable as the kernel's plain ``conditions`` tuple -- the
    builder downgrades such guards to the fast path.
    """
    cover = tuple(cover)
    if len(cover) != 1:
        return None
    cube = cover[0]
    if any(not positive for _, positive in cube):
        return None
    return tuple(variable for variable, _ in cube)


class Guard:
    """An immutable BDD-backed transition guard."""

    __slots__ = ("engine", "node", "cover")

    def __init__(self, engine: BddEngine, node: int,
                 cover: tuple[Cube, ...]) -> None:
        self.engine = engine
        self.node = node
        self.cover = cover

    # ------------------------------------------------------------------
    def eval(self, true_signals) -> bool:
        """Does the guard hold under the latched input set?"""
        return self.engine.eval(self.node, true_signals)

    def implies(self, other: "Guard") -> bool:
        if other.engine is not self.engine:
            raise ValueError("guards of different engines cannot be compared")
        return self.engine.implies(self.node, other.node)

    def support(self) -> frozenset[int]:
        return self.engine.support(self.node)

    def is_tautology(self) -> bool:
        return self.node == TRUE

    def is_false(self) -> bool:
        return self.node == FALSE

    # ------------------------------------------------------------------
    def key(self) -> tuple:
        """Hashable structural identity (engine-independent)."""
        return ("guard", self.cover)

    def fingerprint(self, name_of: Callable[[int], str]) -> str:
        """Stable content hash rendered through signal names."""
        return content_hash(
            ("guard",) + tuple(
                tuple((name_of(variable), positive)
                      for variable, positive in cube)
                for cube in self.cover))

    def render(self, name_of: Callable[[int], str]) -> str:
        return render_cover(self.cover, name_of)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Guard({render_cover(self.cover, str)})"


def guard_from_cover(engine: BddEngine, cover: Iterable[Cube]) -> Guard:
    """Build a guard from a cover, normalizing cube order."""
    cover = tuple(sorted(tuple(sorted(cube)) for cube in cover))
    return Guard(engine, cover_node(engine, cover), cover)
