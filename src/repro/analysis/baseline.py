"""Baseline files: grandfathered findings with written rationales.

A baseline entry pins one *intentional* finding so the gate stays green
without silencing the rule globally.  Entries match on ``(rule, path,
normalized source line text)`` -- not on line numbers -- so unrelated
edits moving code around do not invalidate them, while any change to
the flagged line itself re-surfaces the finding for review.

Every entry must carry a non-empty ``reason``; a reason-less entry is
reported as ``LNT004`` and matches nothing.  ``--write-baseline``
regenerates the file from the current findings, preserving reasons of
surviving entries and leaving new ones with an empty reason the author
must fill in before the gate passes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from .findings import Finding

__all__ = ["Baseline", "write_baseline", "line_text_of"]


def _normalize(text: str) -> str:
    """Whitespace-insensitive form of a source line."""
    return " ".join(text.split())


def line_text_of(finding: Finding, sources: Mapping[str, str]) -> str:
    """Normalized text of the flagged source line."""
    source = sources.get(finding.path)
    if source is None:
        return ""
    lines = source.splitlines()
    if 1 <= finding.line <= len(lines):
        return _normalize(lines[finding.line - 1])
    return ""


class Baseline:
    """Loaded baseline entries plus match bookkeeping for one run."""

    def __init__(self, entries: list[dict], path: str = "") -> None:
        self.path = path
        self.entries = entries
        self.problems: list[Finding] = []
        self._matched: set[int] = set()
        self._by_key: dict[tuple[str, str, str], list[int]] = {}
        for position, entry in enumerate(entries):
            key = (entry.get("rule", ""), entry.get("path", ""),
                   _normalize(entry.get("line_text", "")))
            if not str(entry.get("reason", "")).strip():
                self.problems.append(Finding(
                    path=entry.get("path", path or "<baseline>"),
                    line=0, column=0, rule="LNT004",
                    message=f"baseline entry for {entry.get('rule')} at "
                            f"{entry.get('path')} has no reason -- every "
                            f"grandfathered finding must say why it is "
                            f"intentional",
                    hint=f"fill in the empty \"reason\" in "
                         f"{path or 'the'} baseline file"))
                continue
            self._by_key.setdefault(key, []).append(position)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        entries = data["findings"] if isinstance(data, dict) else data
        return cls(entries, path=str(path))

    # ------------------------------------------------------------------
    def matches(self, finding: Finding, line_text: str) -> bool:
        """Consume one baseline entry for ``finding`` if one is left."""
        key = (finding.rule, finding.path, _normalize(line_text))
        positions = self._by_key.get(key)
        if not positions:
            return False
        self._matched.add(positions.pop(0))
        return True

    def unmatched(self) -> list[dict]:
        """Entries (with reasons) that matched no current finding."""
        return [entry for position, entry in enumerate(self.entries)
                if position not in self._matched
                and str(entry.get("reason", "")).strip()]


def write_baseline(findings: list[Finding], path: str | Path,
                   sources: Mapping[str, str],
                   previous: Baseline | None = None) -> int:
    """Persist ``findings`` as the new baseline; returns the entry count.

    Reasons of entries that still match are carried over; new entries
    get an empty reason the author must write before the gate passes.
    """
    carried: dict[tuple[str, str, str], list[str]] = {}
    if previous is not None:
        for entry in previous.entries:
            key = (entry.get("rule", ""), entry.get("path", ""),
                   _normalize(entry.get("line_text", "")))
            reason = str(entry.get("reason", "")).strip()
            if reason:
                carried.setdefault(key, []).append(reason)
    entries = []
    for finding in sorted(findings):
        line_text = line_text_of(finding, sources)
        key = (finding.rule, finding.path, line_text)
        reasons = carried.get(key)
        entries.append({
            "rule": finding.rule,
            "path": finding.path,
            "line_text": line_text,
            "message": finding.message,
            "reason": reasons.pop(0) if reasons else "",
        })
    payload = {"comment": "repro-lint baseline: grandfathered findings; "
                          "every entry needs a written reason",
               "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    return len(entries)
