"""Reporters: human-readable text and machine-readable JSON.

Both render the same :class:`~repro.analysis.engine.LintResult`; the
JSON form is what CI uploads as an artifact and what
``benchmarks/bench_lint.py`` summarizes.
"""

from __future__ import annotations

from .engine import LintResult

__all__ = ["render_text", "render_json", "summary_line"]


def summary_line(result: LintResult) -> str:
    families = ", ".join(f"{family}={count}" for family, count
                         in result.family_counts().items()) or "none"
    return (f"repro-lint: {len(result.findings)} finding(s) [{families}] "
            f"in {result.files} file(s); "
            f"{len(result.suppressed)} suppressed, "
            f"{len(result.baselined)} baselined, "
            f"{len(result.stale_baseline)} stale baseline entr"
            f"{'y' if len(result.stale_baseline) == 1 else 'ies'} "
            f"({result.rules_run} rules, {result.seconds:.2f}s)")


def render_text(result: LintResult, verbose: bool = False) -> str:
    blocks: list[str] = []
    for finding in result.findings:
        blocks.append(finding.render())
    if verbose and result.suppressed:
        blocks.append("suppressed findings:")
        for finding, suppression in result.suppressed:
            blocks.append(f"  {finding.location()}: {finding.rule} "
                          f"(reason: {suppression.reason})")
    if verbose and result.baselined:
        blocks.append("baselined findings:")
        for finding in result.baselined:
            blocks.append(f"  {finding.location()}: {finding.rule}")
    for entry in result.stale_baseline:
        blocks.append(f"stale baseline entry: {entry.get('rule')} at "
                      f"{entry.get('path')} no longer matches -- remove it "
                      f"or re-run with --write-baseline")
    blocks.append(summary_line(result))
    return "\n".join(blocks)


def render_json(result: LintResult) -> dict:
    return {
        "findings": [finding.to_json() for finding in result.findings],
        "suppressed": [
            {**finding.to_json(), "reason": suppression.reason}
            for finding, suppression in result.suppressed],
        "baselined": [finding.to_json() for finding in result.baselined],
        "stale_baseline": list(result.stale_baseline),
        "rule_counts": result.rule_counts(),
        "family_counts": result.family_counts(),
        "files": result.files,
        "rules_run": result.rules_run,
        "seconds": round(result.seconds, 4),
        "clean": result.clean,
    }
