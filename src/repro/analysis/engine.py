"""The repro-lint engine: parse, index, run rules, filter, summarize.

Two passes over the analyzed tree:

1. **index** -- every file is parsed once and fed to the
   :class:`~repro.analysis.project.ProjectIndex` (cross-file class
   facts);
2. **rules** -- every registered rule runs over every
   :class:`ModuleContext`; raw findings are then filtered through
   inline suppressions (which must carry reasons) and the optional
   baseline (grandfathered findings with written rationales).

The result is deterministic: files are visited in sorted path order,
rules in ID order, findings sorted by location.  ``lint_sources`` runs
the same engine over in-memory code, which is what the per-rule
fixture tests use.
"""

from __future__ import annotations

import ast
import io
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from .baseline import Baseline, line_text_of
from .findings import Finding, Suppression, parse_suppressions
from .project import ProjectIndex
from .registry import Rule, rules_for

__all__ = ["ModuleContext", "LintResult", "lint_paths", "lint_sources"]


class ModuleContext:
    """Everything the rules may ask about one parsed module."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self._parents: dict[ast.AST, ast.AST] | None = None
        self._symbols: dict[ast.AST, str] | None = None
        self._module_imports: dict[str, str] | None = None

    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (None for the module)."""
        if self._parents is None:
            self._parents = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[child] = parent
        return self._parents.get(node)

    def enclosing_symbol(self, node: ast.AST) -> str:
        """Dotted class/function qualname enclosing ``node`` ("" at top)."""
        if self._symbols is None:
            self._symbols = {}
            self._label_scopes(self.tree, ())
        current: ast.AST | None = node
        while current is not None:
            label = self._symbols.get(current)
            if label is not None:
                return label
            current = self.parent(current)
        return ""

    def _label_scopes(self, node: ast.AST, stack: tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                scoped = stack + (child.name,)
                assert self._symbols is not None
                self._symbols[child] = ".".join(scoped)
                self._label_scopes(child, scoped)
            else:
                self._label_scopes(child, stack)

    # ------------------------------------------------------------------
    def module_imports(self) -> Mapping[str, str]:
        """Local name -> imported module/origin, for DET call matching.

        ``import time`` yields ``{"time": "time"}``; ``from time import
        perf_counter`` yields ``{"perf_counter": "time.perf_counter"}``;
        aliases follow the local name.
        """
        if self._module_imports is None:
            table: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        table[alias.asname or alias.name.split(".")[0]] = \
                            alias.name
                elif isinstance(node, ast.ImportFrom) and node.module:
                    for alias in node.names:
                        table[alias.asname or alias.name] = \
                            f"{node.module}.{alias.name}"
            self._module_imports = table
        return self._module_imports

    # ------------------------------------------------------------------
    def comments(self) -> dict[int, tuple[str, bool]]:
        """Line -> (comment text, has_code_before) via the tokenizer."""
        out: dict[int, tuple[str, bool]] = {}
        code_lines: set[int] = set()
        try:
            tokens = list(tokenize.generate_tokens(
                io.StringIO(self.source).readline))
        except tokenize.TokenError:  # pragma: no cover - parse succeeded
            return out
        for token in tokens:
            if token.type == tokenize.COMMENT:
                out[token.start[0]] = (token.string,
                                       token.start[0] in code_lines)
            elif token.type not in (tokenize.NL, tokenize.NEWLINE,
                                    tokenize.INDENT, tokenize.DEDENT,
                                    tokenize.ENCODING, tokenize.ENDMARKER):
                for line in range(token.start[0], token.end[0] + 1):
                    code_lines.add(line)
        return out

    def finding(self, node: ast.AST, rule: str, message: str,
                hint: str = "") -> Finding:
        return Finding(path=self.path, line=getattr(node, "lineno", 0),
                       column=getattr(node, "col_offset", 0), rule=rule,
                       message=message, hint=hint,
                       symbol=self.enclosing_symbol(node))


@dataclass
class LintResult:
    """Outcome of one engine run."""

    findings: list[Finding] = field(default_factory=list)
    #: Findings silenced by an inline suppression (kept for reporting).
    suppressed: list[tuple[Finding, Suppression]] = field(
        default_factory=list)
    #: Findings matched by a baseline entry (grandfathered).
    baselined: list[Finding] = field(default_factory=list)
    #: Baseline entries that no longer match anything (stale).
    stale_baseline: list[dict] = field(default_factory=list)
    files: int = 0
    seconds: float = 0.0
    rules_run: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def rule_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def family_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            family = "".join(c for c in finding.rule if c.isalpha())
            counts[family] = counts.get(family, 0) + 1
        return dict(sorted(counts.items()))


def _python_files(paths: Sequence[str]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    # sorted + deduplicated: deterministic visit order
    return sorted(set(files))


def lint_paths(paths: Sequence[str],
               rules: Iterable[str] | None = None,
               baseline: Baseline | None = None) -> LintResult:
    """Lint every ``*.py`` under ``paths`` (files or directories)."""
    sources: dict[str, str] = {}
    for file in _python_files(paths):
        sources[str(file)] = file.read_text(encoding="utf-8")
    return lint_sources(sources, rules=rules, baseline=baseline)


def lint_sources(sources: Mapping[str, str],
                 rules: Iterable[str] | None = None,
                 baseline: Baseline | None = None) -> LintResult:
    """Lint in-memory ``{path: source}`` modules (the testable core)."""
    started = time.perf_counter()
    selected: list[Rule] = rules_for(rules)
    result = LintResult(rules_run=len(selected))

    modules: list[ModuleContext] = []
    index = ProjectIndex()
    raw: list[Finding] = []
    for path in sorted(sources):
        try:
            module = ModuleContext(path, sources[path])
        except SyntaxError as exc:
            raw.append(Finding(
                path=path, line=exc.lineno or 0, column=exc.offset or 0,
                rule="LNT003", message=f"file does not parse: {exc.msg}",
                hint="repro-lint needs syntactically valid modules"))
            continue
        index.add_module(path, module.tree)
        modules.append(module)
    raw.extend(index.problems)

    suppressions: dict[str, list[Suppression]] = {}
    for module in modules:
        module_suppressions, problems = parse_suppressions(
            module.comments(), module.path)
        suppressions[module.path] = module_suppressions
        raw.extend(problems)
        for selected_rule in selected:
            raw.extend(selected_rule.body(module, index))

    kept: list[Finding] = []
    for finding in sorted(set(raw)):
        covering = next(
            (s for s in suppressions.get(finding.path, ())
             if s.covers(finding)), None)
        if covering is not None:
            result.suppressed.append((finding, covering))
        elif baseline is not None and baseline.matches(
                finding, line_text_of(finding, sources)):
            result.baselined.append(finding)
        else:
            kept.append(finding)
    if baseline is not None:
        result.stale_baseline = baseline.unmatched()
        kept.extend(baseline.problems)

    result.findings = sorted(set(kept))
    result.files = len(modules)
    result.seconds = time.perf_counter() - started
    return result
