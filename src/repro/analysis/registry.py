"""Rule registry: one decorator, one global table, stable ordering.

A rule is a function ``(module: ModuleContext, index: ProjectIndex) ->
Iterable[Finding]`` registered under a stable ID (``DET101``,
``PKL202``, ...).  Families group rules for reporting and selection;
the registry iterates in ID order so runs are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import ModuleContext
    from .project import ProjectIndex
    from .findings import Finding

__all__ = ["Rule", "rule", "all_rules", "rules_for", "families"]

RuleBody = Callable[["ModuleContext", "ProjectIndex"], Iterable["Finding"]]


@dataclass(frozen=True)
class Rule:
    """Metadata plus body of one registered rule."""

    id: str
    summary: str
    hint: str
    body: RuleBody

    @property
    def family(self) -> str:
        """Leading letters of the ID: ``DET101`` -> ``DET``."""
        return "".join(c for c in self.id if c.isalpha())


_RULES: dict[str, Rule] = {}


def rule(rule_id: str, summary: str, hint: str = ""
         ) -> Callable[[RuleBody], RuleBody]:
    """Register ``body`` under ``rule_id``; duplicate IDs are a bug."""

    def register(body: RuleBody) -> RuleBody:
        if rule_id in _RULES:
            raise ValueError(f"duplicate rule ID {rule_id!r}")
        _RULES[rule_id] = Rule(rule_id, summary, hint, body)
        return body

    return register


def all_rules() -> list[Rule]:
    """Every registered rule in ID order (the execution order)."""
    _load_rule_modules()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def rules_for(families_or_ids: Iterable[str] | None) -> list[Rule]:
    """Rules selected by family tag (``DET``) or exact ID (``DET101``)."""
    rules = all_rules()
    if families_or_ids is None:
        return rules
    wanted = {token.strip().upper() for token in families_or_ids}
    return [r for r in rules if r.id in wanted or r.family in wanted]


def families() -> Iterator[str]:
    """Distinct family tags in sorted order."""
    seen = sorted({r.family for r in all_rules()})
    return iter(seen)


def _load_rule_modules() -> None:
    """Import the rule modules exactly once (registration side effect)."""
    from . import rules  # noqa: F401  (registers via decorators)
