"""CLI entry point: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean (all findings suppressed/baselined with reasons),
1 findings remain, 2 usage error.  ``--write-baseline`` regenerates the
baseline file from the current findings, carrying over the reasons of
surviving entries; new entries get an empty reason that must be filled
in before the gate passes again.
"""

from __future__ import annotations

import argparse
import json
import shutil
import subprocess
import sys
from pathlib import Path

from .baseline import Baseline, write_baseline
from .engine import lint_paths
from .report import render_json, render_text, summary_line

DEFAULT_BASELINE = "lint_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro-lint: AST-based invariant linter (DET "
                    "determinism, PKL pickle-safety, FRZ immutability, "
                    "PUR stage purity)")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--json", action="store_true",
                        help="emit a JSON report instead of text")
    parser.add_argument("--output", metavar="FILE",
                        help="also write the JSON report to FILE")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help=f"baseline file of grandfathered findings "
                             f"(default: {DEFAULT_BASELINE} when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="regenerate the baseline from current "
                             "findings (reasons of surviving entries are "
                             "kept; new entries need reasons written)")
    parser.add_argument("--rules", metavar="SELECT", default=None,
                        help="comma-separated families or rule IDs to "
                             "run (e.g. DET,PKL201); default: all")
    parser.add_argument("--verbose", action="store_true",
                        help="also list suppressed/baselined findings")
    parser.add_argument("--ruff", action="store_true",
                        help="additionally run `ruff check` (error-level "
                             "config from pyproject.toml) when ruff is "
                             "installed; skipped silently otherwise")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    baseline = None
    baseline_path = args.baseline or DEFAULT_BASELINE
    if not args.no_baseline and Path(baseline_path).is_file():
        try:
            baseline = Baseline.load(baseline_path)
        except (json.JSONDecodeError, KeyError, OSError) as exc:
            print(f"error: cannot read baseline {baseline_path}: {exc}",
                  file=sys.stderr)
            return 2
    elif args.baseline and not Path(args.baseline).is_file() \
            and not args.write_baseline:
        print(f"error: baseline file {args.baseline} does not exist",
              file=sys.stderr)
        return 2

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2

    rules = args.rules.split(",") if args.rules else None
    result = lint_paths(args.paths, rules=rules, baseline=baseline)

    if args.write_baseline:
        sources = {
            str(f): Path(f).read_text(encoding="utf-8")
            for finding in result.findings
            for f in [finding.path] if Path(f).is_file()}
        count = write_baseline(result.findings, baseline_path, sources,
                               previous=baseline)
        print(f"wrote {count} baseline entr"
              f"{'y' if count == 1 else 'ies'} to {baseline_path}; "
              f"fill in every empty \"reason\" before the gate passes")
        return 0

    if args.output:
        Path(args.output).write_text(
            json.dumps(render_json(result), indent=2) + "\n",
            encoding="utf-8")
    if args.json:
        print(json.dumps(render_json(result), indent=2))
    else:
        print(render_text(result, verbose=args.verbose))

    status = 0 if result.clean else 1
    if args.ruff:
        ruff_status = _run_ruff(args.paths)
        status = status or ruff_status
    return status


def _run_ruff(paths: list[str]) -> int:
    """Run the pinned third-party pass when available; 0 when absent."""
    ruff = shutil.which("ruff")
    if ruff is None:
        print("note: ruff not installed, skipping third-party pass "
              "(CI runs it)", file=sys.stderr)
        return 0
    completed = subprocess.run([ruff, "check", *paths])
    return 1 if completed.returncode else 0


if __name__ == "__main__":
    sys.exit(main())
