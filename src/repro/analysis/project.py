"""Whole-tree first pass: the cross-file facts rules need.

Single-file AST rules cannot know that ``JobPayload`` is a frozen
dataclass defined in another module, or that ``LayeredDagSpec``
subclasses ``WorkloadSpec``.  The :class:`ProjectIndex` is built once
over every analyzed module and handed to each rule alongside the
per-module context.

Resolution is by *class name*: the repo keeps kernel and payload class
names globally unique (enforced here -- a duplicate definition of an
indexed name is reported as ``LNT002``), so no import resolution is
needed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .config import KERNEL_CLASSES, PAYLOAD_CLASSES
from .findings import Finding

__all__ = ["ClassInfo", "ProjectIndex", "dataclass_frozen"]


@dataclass
class ClassInfo:
    """What the index records about one class definition."""

    name: str
    path: str
    line: int
    bases: tuple[str, ...]
    is_dataclass: bool
    frozen: bool
    #: Annotated class-body fields: ``(name, annotation AST, line)``.
    fields: list[tuple[str, ast.expr, int]] = field(default_factory=list)


def dataclass_frozen(node: ast.ClassDef) -> tuple[bool, bool]:
    """``(is_dataclass, frozen)`` from the decorator list."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = target.attr if isinstance(target, ast.Attribute) \
            else getattr(target, "id", None)
        if name != "dataclass":
            continue
        frozen = False
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg == "frozen" \
                        and isinstance(keyword.value, ast.Constant):
                    frozen = bool(keyword.value.value)
        return True, frozen
    return False, False


class ProjectIndex:
    """Class facts collected over every module before rules run."""

    def __init__(self) -> None:
        self.classes: dict[str, ClassInfo] = {}
        self.problems: list[Finding] = []

    # ------------------------------------------------------------------
    def add_module(self, path: str, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                self._add_class(path, node)

    def _add_class(self, path: str, node: ast.ClassDef) -> None:
        is_dc, frozen = dataclass_frozen(node)
        info = ClassInfo(
            name=node.name, path=path, line=node.lineno,
            bases=tuple(base.id for base in node.bases
                        if isinstance(base, ast.Name)),
            is_dataclass=is_dc, frozen=frozen)
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) \
                    and isinstance(statement.target, ast.Name):
                info.fields.append((statement.target.id,
                                    statement.annotation,
                                    statement.lineno))
        previous = self.classes.get(node.name)
        if previous is not None:
            if node.name in PAYLOAD_CLASSES or node.name in KERNEL_CLASSES:
                self.problems.append(Finding(
                    path=path, line=node.lineno, column=node.col_offset,
                    rule="LNT002",
                    message=f"class {node.name!r} shadows the indexed "
                            f"definition at {previous.path}:{previous.line}; "
                            f"payload/kernel class names must be unique",
                    hint="rename one of the definitions"))
            return
        self.classes[node.name] = info

    # ------------------------------------------------------------------
    def payload_classes(self) -> list[ClassInfo]:
        """Configured payload classes plus all their subclasses."""
        names = set(PAYLOAD_CLASSES)
        changed = True
        while changed:  # transitive: spec families subclass WorkloadSpec
            changed = False
            for info in self.classes.values():
                if info.name not in names \
                        and any(base in names for base in info.bases):
                    names.add(info.name)
                    changed = True
        return sorted((self.classes[name] for name in names
                       if name in self.classes),
                      key=lambda info: (info.path, info.line))

    def payload_class_names(self) -> frozenset[str]:
        return frozenset(info.name for info in self.payload_classes())

    def frozen_dataclass_names(self) -> frozenset[str]:
        """Every ``@dataclass(frozen=True)`` class seen in the tree."""
        return frozenset(name for name, info in self.classes.items()
                         if info.frozen)
