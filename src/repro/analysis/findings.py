"""Finding values and inline suppressions for the invariant linter.

A :class:`Finding` is one rule violation at one source location.  Its
sort order is stable (path, line, column, rule ID, message), so reports
and baselines are deterministic -- the linter holds itself to the same
DET discipline it enforces.

Inline suppressions use the form::

    risky_line()  # repro-lint: ignore[DET101] -- sets are fine here because ...

The rule list is mandatory and every suppression must carry a written
reason after the rule list (an optional ``--`` separator is allowed).
A suppression comment on its own line applies to the *next* source
line.  A reason-less suppression is itself reported (rule ``LNT001``)
and suppresses nothing.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["Finding", "Suppression", "parse_suppressions",
           "SUPPRESSION_PATTERN"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, sortable into a stable report order."""

    path: str
    line: int
    column: int
    rule: str
    message: str
    hint: str = field(default="", compare=False)
    #: Qualified name of the enclosing function/class, for context.
    symbol: str = field(default="", compare=False)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def render(self) -> str:
        text = f"{self.location()}: {self.rule}: {self.message}"
        if self.symbol:
            text += f" [in {self.symbol}]"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> dict:
        return {"path": self.path, "line": self.line, "column": self.column,
                "rule": self.rule, "message": self.message,
                "hint": self.hint, "symbol": self.symbol}


@dataclass(frozen=True)
class Suppression:
    """One parsed ``repro-lint: ignore[...]`` comment."""

    line: int          # the source line the suppression applies to
    rules: tuple[str, ...]
    reason: str
    comment_line: int  # where the comment physically sits

    def covers(self, finding: Finding) -> bool:
        return finding.line == self.line and finding.rule in self.rules


#: ``# repro-lint: ignore[RULE1,RULE2] -- reason`` (reason mandatory,
#: the ``--`` separator optional).
SUPPRESSION_PATTERN = re.compile(
    r"#\s*repro-lint:\s*ignore\[(?P<rules>[A-Z0-9_,\s]+)\]"
    r"\s*(?:--\s*)?(?P<reason>.*)$")


def parse_suppressions(comments: dict[int, tuple[str, bool]], path: str,
                       ) -> tuple[list[Suppression], list[Finding]]:
    """Parse per-line comments into suppressions.

    ``comments`` maps physical line numbers to ``(comment text,
    has_code_before)`` pairs, as collected by the engine's tokenizer
    pass.  A trailing comment binds to its own line; a comment alone on
    its line binds to the next line.  Returns the suppressions plus
    ``LNT001`` findings for reason-less ones.
    """
    suppressions: list[Suppression] = []
    problems: list[Finding] = []
    for line in sorted(comments):
        text, has_code_before = comments[line]
        match = SUPPRESSION_PATTERN.search(text)
        if match is None:
            continue
        rules = tuple(sorted(r.strip() for r in
                             match.group("rules").split(",") if r.strip()))
        reason = match.group("reason").strip()
        if not reason:
            problems.append(Finding(
                path=path, line=line, column=0, rule="LNT001",
                message=f"suppression for {', '.join(rules)} carries no "
                        f"reason -- every ignore must say why",
                hint="write `# repro-lint: ignore[RULE] -- <reason>`"))
            continue
        if has_code_before:
            applies_to = line
        else:
            # a comment-block suppression binds to the first code line
            # after the block (continuation comment lines are skipped)
            applies_to = line + 1
            while applies_to in comments and not comments[applies_to][1]:
                applies_to += 1
        suppressions.append(Suppression(line=applies_to, rules=rules,
                                        reason=reason, comment_line=line))
    return suppressions, problems
