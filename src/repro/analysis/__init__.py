"""repro-lint: an AST-based invariant linter for this repository.

The analyzer enforces the cross-cutting contracts the test suite can
only probe dynamically: fingerprint determinism (``DET``), shard
payload pickle-safety (``PKL``), frozen/kernel immutability (``FRZ``)
and pipeline-stage purity (``PUR``).  Run it as::

    python -m repro.analysis src/

Engine-level findings use the ``LNT`` family: ``LNT001`` reason-less
suppression, ``LNT002`` ambiguous duplicate class name, ``LNT003``
unparsable file, ``LNT004`` reason-less baseline entry.  See
``docs/INVARIANTS.md`` for the rule-by-rule rationale.
"""

from .baseline import Baseline, line_text_of, write_baseline
from .engine import LintResult, ModuleContext, lint_paths, lint_sources
from .findings import Finding, Suppression, parse_suppressions
from .registry import Rule, all_rules, families, rule, rules_for
from .report import render_json, render_text, summary_line

__all__ = [
    "Baseline", "Finding", "LintResult", "ModuleContext", "Rule",
    "Suppression", "all_rules", "families", "line_text_of", "lint_paths",
    "lint_sources", "parse_suppressions", "render_json", "render_text",
    "rule", "rules_for", "summary_line", "write_baseline",
]
