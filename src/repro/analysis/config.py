"""Repo-specific knowledge the rules are parameterized on.

Everything the rule bodies need to know about *this* codebase -- which
classes are shard payloads, which are immutable kernel objects, which
names seed fingerprint reachability -- lives here, so the rule logic
itself stays generic and the contract is auditable in one place.  Each
entry names the invariant it encodes; ``docs/INVARIANTS.md`` carries
the long-form rationale per rule ID.
"""

from __future__ import annotations

__all__ = [
    "FINGERPRINT_SEED_NAMES", "NONDETERMINISTIC_MODULES",
    "NONDETERMINISTIC_BUILTINS", "SEEDED_RANDOM_FACTORIES",
    "ORDER_INSENSITIVE_CONSUMERS",
    "PAYLOAD_CLASSES", "PAYLOAD_SAFE_TYPES", "PAYLOAD_ATOMS",
    "KERNEL_CLASSES", "KERNEL_BUILDER_METHODS", "KERNEL_MEMO_ATTRIBUTES",
    "CONSTRUCTOR_METHODS", "STAGE_FACTORY_NAME", "MODULE_LEVEL_IO_CALLS",
    "OS_ENVIRONMENT_READS", "SANCTIONED_IO_PATHS",
    "OBS_MODULE_NAME", "OBS_TRACING_NAMES", "OBS_EXEMPT_PATHS",
]

# ---------------------------------------------------------------- DET
#: Functions whose bodies (and same-module callees) must be
#: deterministic: they feed the content fingerprints that key the stage
#: cache and the shard planner.  Matched by bare function name; stage
#: ``run`` bodies are discovered structurally from ``Stage(...)`` calls.
FINGERPRINT_SEED_NAMES = frozenset({
    "fingerprint", "fingerprint_of", "content_hash",
})

#: Modules whose call results vary across runs/processes.  Any
#: attribute call on these inside fingerprint-reachable code is a DET
#: finding (``random.Random(seed)`` with an explicit seed is exempt).
NONDETERMINISTIC_MODULES = frozenset({
    "time", "random", "uuid", "secrets", "datetime",
})

#: Builtins whose value depends on the process: memory addresses,
#: siphash salting, interpreter environment.
NONDETERMINISTIC_BUILTINS = frozenset({
    "id", "hash", "vars", "globals", "locals", "input",
})

#: Callables that are deterministic *when explicitly seeded*:
#: ``random.Random("stable-key")`` is the repo's sanctioned pattern.
SEEDED_RANDOM_FACTORIES = frozenset({"Random"})

#: ``os`` attributes that read the environment (per-host state).
OS_ENVIRONMENT_READS = frozenset({"environ", "getenv", "urandom"})

#: Callables that consume an iterable order-insensitively, so feeding
#: them an unordered set is safe: ``sorted(set(...))`` is the fix DET101
#: recommends, and these are the contexts where no fix is needed.
ORDER_INSENSITIVE_CONSUMERS = frozenset({
    "sorted", "set", "frozenset", "sum", "min", "max", "any", "all",
    "len", "Counter",
})

# ---------------------------------------------------------------- PKL
#: Classes that cross the shard/process boundary by pickle.  Their
#: fields must be statically picklable and compact -- the
#: definition-time complement of the runtime ``payload_check``.
#: Subclasses (the WorkloadSpec families) inherit the obligation.
PAYLOAD_CLASSES = frozenset({
    "JobPayload", "JobSummary", "Shard", "ShardOutcome", "DesignPoint",
    "WorkloadSpec",
})

#: Domain classes allowed as payload field types: each is pickle-clean
#: by construction and exercised by the shard round-trip tests
#: (``tests/test_flow_shard.py``).  ``payload_check`` still guards the
#: runtime hatch for exotic *instances* (e.g. a Partitioner subclass
#: holding a lambda).
PAYLOAD_SAFE_TYPES = frozenset({
    "TaskGraph", "TargetArchitecture", "Partitioner", "WorkloadSpec",
    "DesignPoint", "JobPayload", "JobSummary",
})

#: Builtin/typing atoms allowed in payload annotations.
PAYLOAD_ATOMS = frozenset({
    "int", "float", "str", "bool", "bytes", "None", "tuple", "frozenset",
    "dict", "list", "Mapping", "Sequence", "Optional", "Union",
})

# ---------------------------------------------------------------- FRZ
#: Kernel classes that are immutable once built (``Automaton``) or
#: mutable only through their builder API (``Stg``/``Fsm``).  Policy:
#: *strict* -- no external attribute writes at all; *internals* --
#: external writes to underscore attributes are forbidden, public
#: attributes are builder API.
KERNEL_CLASSES: dict[str, str] = {
    "Automaton": "strict",
    "Stg": "internals",
    "Fsm": "internals",
}

#: Per-class methods allowed to assign ``self`` attributes beyond the
#: constructors: the sanctioned mutation API.
KERNEL_BUILDER_METHODS: dict[str, frozenset[str]] = {
    "Automaton": frozenset(),
    "Stg": frozenset({"add_state", "add_transition"}),
    "Fsm": frozenset({"add_state", "add_transition"}),
}

#: Derived caches a kernel class may fill lazily: each is invisible to
#: equality and fingerprints (pure memo of already-frozen content), so
#: writing it does not breach immutability.
#:
#: The symbolic verification tier deliberately keeps its caches OFF the
#: kernel classes: ``BddEngine`` owns its unique/ite tables,
#: ``LazyStepSystem`` its interned rows, and the verifier's
#: fingerprint-keyed step-system cache is module state in
#: ``repro.controllers.verify`` -- none of them hang new memo slots on
#: ``Automaton``/``Stg``/``Fsm``, so no new entries (and no
#: suppressions) are needed here for that tier.
KERNEL_MEMO_ATTRIBUTES: dict[str, frozenset[str]] = {
    "Automaton": frozenset({"_fingerprint", "_obs_summary"}),
    "Stg": frozenset({"_automaton_cache"}),
    "Fsm": frozenset({"_kernel_cache"}),
}

#: Methods of any class where attribute assignment (including the
#: ``object.__setattr__`` escape hatch) is construction, not mutation.
CONSTRUCTOR_METHODS = frozenset({
    "__init__", "__post_init__", "__new__", "__setstate__",
})

# ---------------------------------------------------------------- PUR
#: The pipeline stage constructor whose declared inputs/outputs the
#: PUR rules check stage bodies against.
STAGE_FACTORY_NAME = "Stage"

#: Calls that perform I/O when executed at module import time.
#: Importing a module must stay side-effect free: shard workers import
#: the flow modules in every worker process.
MODULE_LEVEL_IO_CALLS = frozenset({"open", "print", "exec", "eval"})

#: Path fragments of modules whose *purpose* is file I/O: the
#: persistent artifact store (``repro.store``) exists to fsync, rename,
#: lock and mtime-clock files on disk, so the I/O-hostility of PUR405
#: (no module-level I/O) and the clock/environment reach of DET102
#: would condemn its reason for existing.  The carve-out is deliberately
#: a *path* whitelist, not a rule switch: everything outside these
#: paths keeps the full rule set, which is what keeps the flow layers
#: pure -- they receive persistence by injection (``store_path=`` /
#: ``store=``) instead of touching the filesystem themselves.  Order
#: determinism (DET101/DET103) still applies inside the store: on-disk
#: layout and eviction order must not depend on set iteration.
#: ``tests/test_analysis.py`` proves the scope: the same I/O-bearing
#: source lints clean under ``repro/store/`` and is flagged anywhere
#: else.
SANCTIONED_IO_PATHS = ("repro/store/",)

# ---------------------------------------------------------------- OBS
#: Package name of the observability subsystem (:mod:`repro.obs`).
#: Imports whose origin ends in this module are obs imports.
OBS_MODULE_NAME = "obs"

#: The *tracing* half of the obs API: spans carry wall-clock starts,
#: durations and pids, so any value derived from them is
#: nondeterministic by construction.  OBS501 bans these names from
#: fingerprint-reachable and stage-body code -- instrumentation must
#: wrap the pipeline from the outside (executor, flow driver, batch
#: runner), never sit inside what a fingerprint can see.  The metrics
#: half (``MetricsRegistry`` and friends) is timestamp-free and is
#: deliberately NOT listed.
OBS_TRACING_NAMES = frozenset({
    "span", "record", "Span", "Tracer", "activate", "current_tracer",
    "tracing_active",
})

#: The obs package itself is exempt from OBS501 (it *is* the tracing
#: API), mirroring the SANCTIONED_IO_PATHS pattern: a path carve-out,
#: not a rule switch.
OBS_EXEMPT_PATHS = ("repro/obs/",)
