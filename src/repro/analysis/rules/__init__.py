"""Rule families: importing this package registers every rule.

Each module registers its rules with the
:func:`~repro.analysis.registry.rule` decorator as a side effect of
import; :func:`~repro.analysis.registry.all_rules` imports this package
lazily so the registry is always complete before the engine runs.
"""

from . import det, frz, obs, pkl, pur  # noqa: F401  (registration imports)

__all__ = ["det", "frz", "obs", "pkl", "pur"]
