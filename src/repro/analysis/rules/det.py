"""DET: determinism rules.

Stage caching, shard planning and the bit-identical-to-serial contract
of the map-reduce backend all rest on one property: everything a
``fingerprint()`` hashes and every ordering that escapes into emitted
artifacts must be a pure function of content.  Two ways that property
has actually broken (or nearly broken) in this repo:

* iteration order of a ``set`` escaping into an output ordering -- the
  PR 4 product-label bug (BFS promised, LIFO delivered) was exactly an
  undocumented-order escape;
* process-varying values (``id``, siphash ``hash``, wall-clock,
  unseeded RNG, environment reads) feeding fingerprint-reachable code,
  which would silently split the shard plan across hosts.

``DET101`` flags set-typed iteration whose order can escape, ``DET102``
flags nondeterministic calls in fingerprint-reachable or stage-body
code, ``DET103`` flags ``set.pop()`` (the arbitrary-element hatch).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Mapping

from ..config import (FINGERPRINT_SEED_NAMES, NONDETERMINISTIC_BUILTINS,
                      NONDETERMINISTIC_MODULES, ORDER_INSENSITIVE_CONSUMERS,
                      OS_ENVIRONMENT_READS, SEEDED_RANDOM_FACTORIES,
                      STAGE_FACTORY_NAME)
from ..findings import Finding
from ..registry import rule
from .common import (call_name, is_set_expr, root_name, sanctioned_io,
                     walk_scope)

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import ModuleContext
    from ..project import ProjectIndex


# ----------------------------------------------------------------------
# DET101: unordered iteration whose order can escape
# ----------------------------------------------------------------------
@rule("DET101",
      "set iteration order escapes into an ordered result",
      "iterate `sorted(...)` instead, or suppress with the reason why "
      "the order cannot escape")
def det101_unordered_iteration(module: "ModuleContext",
                               index: "ProjectIndex") -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.For):
            if is_set_expr(node.iter):
                yield _det101_finding(module, node.iter, "for loop")
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                if not is_set_expr(generator.iter):
                    continue
                if _order_insensitive_comprehension(module, node):
                    continue
                kind = type(node).__name__
                yield _det101_finding(module, generator.iter, kind)


def _order_insensitive_comprehension(module: "ModuleContext",
                                     node: ast.AST) -> bool:
    """True when the comprehension's result order cannot matter."""
    if isinstance(node, ast.SetComp):
        return True  # result is itself unordered
    parent = module.parent(node)
    return (isinstance(parent, ast.Call)
            and call_name(parent) in ORDER_INSENSITIVE_CONSUMERS
            and node in parent.args)


def _det101_finding(module: "ModuleContext", iter_node: ast.AST,
                    kind: str) -> Finding:
    return module.finding(
        iter_node, "DET101",
        f"{kind} iterates a set: the iteration order is unspecified and "
        f"may escape into an ordered result (fingerprints, labels, "
        f"emitted output)",
        hint="wrap the iterable in sorted(...) to pin the order, or "
             "suppress with the reason order cannot escape")


# ----------------------------------------------------------------------
# DET102: nondeterminism in fingerprint-reachable / stage-body code
# ----------------------------------------------------------------------
@rule("DET102",
      "nondeterministic call in fingerprint-reachable or stage-body code",
      "fingerprints key the stage cache and the shard planner: derive "
      "every input from content, never from the process")
def det102_impure_fingerprint(module: "ModuleContext",
                              index: "ProjectIndex") -> Iterator[Finding]:
    if sanctioned_io(module.path):
        # repro.store: mtime clocks, pids and environment probes are the
        # store's mechanism -- its keys arrive pre-fingerprinted, so no
        # process state can leak into a fingerprint from here.  DET101/
        # DET103 (order determinism) still apply in full.
        return
    functions: dict[ast.FunctionDef, str] = {
        node: module.enclosing_symbol(node)
        for node in ast.walk(module.tree)
        if isinstance(node, ast.FunctionDef)}
    by_name: dict[str, list[ast.FunctionDef]] = {}
    for function in functions:
        by_name.setdefault(function.name, []).append(function)

    seeds = [function for function in functions
             if function.name in FINGERPRINT_SEED_NAMES]
    for stage_run in _stage_run_names(module.tree):
        seeds.extend(by_name.get(stage_run, ()))

    # same-module reachability over direct calls (self.x() and f())
    reachable: set[ast.FunctionDef] = set()
    worklist = list(seeds)
    while worklist:
        function = worklist.pop()
        if function in reachable:
            continue
        reachable.add(function)
        for node in walk_scope(function):
            if not isinstance(node, ast.Call):
                continue
            callee = None
            if isinstance(node.func, ast.Name):
                callee = node.func.id
            elif isinstance(node.func, ast.Attribute) \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id in ("self", "cls"):
                callee = node.func.attr
            if callee is not None:
                worklist.extend(by_name.get(callee, ()))

    imports = module.module_imports()
    for function in sorted(reachable, key=lambda f: f.lineno):
        symbol = functions[function]
        for node in walk_scope(function):
            reason = _nondeterministic_use(node, imports)
            if reason is not None:
                yield module.finding(
                    node, "DET102",
                    f"{reason} inside {symbol!r}, which is "
                    f"fingerprint-reachable (or a pipeline stage body): "
                    f"the result varies across processes or runs",
                    hint="fingerprint content only: sort by name, hash "
                         "with content_hash, seed RNGs from stable keys")


def _stage_run_names(tree: ast.Module) -> list[str]:
    """Function names passed as the ``run`` of a ``Stage(...)`` call."""
    names = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and call_name(node) == STAGE_FACTORY_NAME):
            continue
        run: ast.AST | None = node.args[3] if len(node.args) >= 4 else None
        for keyword in node.keywords:
            if keyword.arg == "run":
                run = keyword.value
        if isinstance(run, ast.Name):
            names.append(run.id)
    return names


def _nondeterministic_use(node: ast.AST,
                          imports: "Mapping[str, str]") -> str | None:
    """Describe the nondeterministic use ``node`` makes, if any."""
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in NONDETERMINISTIC_BUILTINS:
            return f"call to builtin {name}()"
        if name is not None:
            origin = imports.get(name, "")
            origin_module = origin.split(".")[0]
            if origin_module in NONDETERMINISTIC_MODULES \
                    and not _seeded_random(name, node):
                return f"call to {origin} (imported as {name})"
        if isinstance(node.func, ast.Attribute):
            root = root_name(node.func)
            origin_module = str(imports.get(root, root)).split(".")[0] \
                if root is not None else None
            if origin_module in NONDETERMINISTIC_MODULES \
                    and not _seeded_random(node.func.attr, node):
                return f"call to {origin_module}.{node.func.attr}"
    if isinstance(node, ast.Attribute):
        root = root_name(node)
        if root == "os" and node.attr in OS_ENVIRONMENT_READS:
            return f"read of os.{node.attr}"
    return None


def _seeded_random(name: str, call: ast.Call) -> bool:
    """``random.Random(stable_key)`` is the sanctioned deterministic RNG."""
    return name in SEEDED_RANDOM_FACTORIES and bool(call.args)


# ----------------------------------------------------------------------
# DET103: set.pop() -- the arbitrary-element escape hatch
# ----------------------------------------------------------------------
@rule("DET103",
      "set.pop() removes an arbitrary (hash-order) element",
      "pop from a sorted worklist or use an explicit order")
def det103_set_pop(module: "ModuleContext",
                   index: "ProjectIndex") -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "pop" and not node.args
                and not node.keywords
                and is_set_expr(node.func.value)):
            yield module.finding(
                node, "DET103",
                "pop() on a set returns an arbitrary element (string-hash "
                "order, varies per process)",
                hint="use `min(...)`/`sorted(...)` or an explicit worklist")
