"""Shared AST helpers for the rule families.

Everything here is *syntactic* approximation: repro-lint has no type
inference, so "is a set" means "is spelled as a set right here" and
"is an instance of X" means "was constructed from ``X(...)`` or
annotated ``X`` in this scope".  The rules err on the side of flagging
only what they can see -- soundness holes are closed by convention and
runtime checks, false positives by inline suppressions with reasons.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import SANCTIONED_IO_PATHS

__all__ = ["is_set_expr", "call_name", "root_name", "const_str_tuple",
           "walk_scope", "function_defs", "annotation_class_names",
           "scope_instance_classes", "sanctioned_io"]


def sanctioned_io(path: str) -> bool:
    """Is ``path`` inside the sanctioned-I/O carve-out?

    True only for modules under :data:`~repro.analysis.config
    .SANCTIONED_IO_PATHS` (the persistent artifact store): the I/O
    rules (PUR405) and the process-state determinism rule (DET102)
    skip these modules, everything else keeps the full rule set.
    """
    normalized = path.replace("\\", "/")
    return any(fragment in normalized for fragment in SANCTIONED_IO_PATHS)

_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_SET_METHODS = frozenset({"union", "intersection", "difference",
                          "symmetric_difference"})


def is_set_expr(node: ast.AST) -> bool:
    """Is ``node`` syntactically a set/frozenset value?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return is_set_expr(func.value)
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return is_set_expr(node.left) or is_set_expr(node.right)
    return False


def call_name(node: ast.Call) -> str | None:
    """Bare name of a ``Name(...)`` call, else None."""
    return node.func.id if isinstance(node.func, ast.Name) else None


def root_name(node: ast.AST) -> str | None:
    """Leftmost ``Name`` of an attribute chain: ``a.b.c`` -> ``a``."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def const_str_tuple(node: ast.AST) -> tuple[str, ...] | None:
    """The value of a literal tuple/list of string constants, else None."""
    if isinstance(node, (ast.Tuple, ast.List)):
        out = []
        for element in node.elts:
            if isinstance(element, ast.Constant) \
                    and isinstance(element.value, str):
                out.append(element.value)
            else:
                return None
        return tuple(out)
    return None


def walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function/class defs.

    The statements yielded are the ones executed when the scope itself
    runs -- what call-graph edges and mutation checks should see.
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
            stack.extend(ast.iter_child_nodes(child))


def function_defs(tree: ast.Module) -> list[ast.FunctionDef]:
    """Every (sync) function/method definition in the module."""
    return [node for node in ast.walk(tree)
            if isinstance(node, ast.FunctionDef)]


def annotation_class_names(annotation: ast.AST) -> set[str]:
    """Class names a simple annotation mentions: ``X``, ``X | None``,
    ``Optional[X]`` and string forms thereof."""
    names: set[str] = set()
    if isinstance(annotation, ast.Name):
        names.add(annotation.id)
    elif isinstance(annotation, ast.Constant) \
            and isinstance(annotation.value, str):
        for token in annotation.value.replace("|", " ").split():
            if token.isidentifier():
                names.add(token)
    elif isinstance(annotation, ast.BinOp) \
            and isinstance(annotation.op, ast.BitOr):
        names |= annotation_class_names(annotation.left)
        names |= annotation_class_names(annotation.right)
    elif isinstance(annotation, ast.Subscript):
        value = annotation.value
        if isinstance(value, ast.Name) and value.id == "Optional":
            names |= annotation_class_names(annotation.slice)
    return names


def scope_instance_classes(scope: ast.FunctionDef,
                           tracked: frozenset[str] | set[str]
                           ) -> dict[str, str]:
    """Variables of ``scope`` known to hold instances of tracked classes.

    Sources of knowledge: parameter annotations (``x: Stg``/``Stg |
    None``) and direct constructor assignments (``x = Stg(...)``).
    Purely local and flow-insensitive -- good enough for a linter.
    """
    classes: dict[str, str] = {}
    args = scope.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if arg.annotation is not None:
            for name in annotation_class_names(arg.annotation):
                if name in tracked:
                    classes[arg.arg] = name
    for node in walk_scope(scope):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            constructed = call_name(node.value)
            if constructed in tracked:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        classes[target.id] = constructed
    return classes
