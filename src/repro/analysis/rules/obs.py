"""OBS: observability containment rules.

The tracing half of :mod:`repro.obs` exists to measure the pipeline,
not to participate in it: every span carries a wall-clock start, a
duration and a pid, all of which vary per run and per process.  If any
of that reached a fingerprint or a stage body, the stage cache and the
shard planner would silently split across hosts -- the exact failure
mode DET102 guards against, arriving through a new door.

``OBS501`` keeps that door shut: inside fingerprint-reachable code and
pipeline stage bodies, no name imported from the tracing API
(:data:`~repro.analysis.config.OBS_TRACING_NAMES`) may be called.
Instrumentation belongs *around* the pipeline -- the executor, the flow
driver, the batch runner, the store -- never inside what a fingerprint
can see.  The metrics API (``MetricsRegistry`` and friends) is
timestamp-free and deliberately exempt, as is the obs package itself
(:data:`~repro.analysis.config.OBS_EXEMPT_PATHS`).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Mapping

from ..config import (FINGERPRINT_SEED_NAMES, OBS_EXEMPT_PATHS,
                      OBS_MODULE_NAME, OBS_TRACING_NAMES)
from ..findings import Finding
from ..registry import rule
from .common import root_name, walk_scope
from .det import _stage_run_names

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import ModuleContext
    from ..project import ProjectIndex


def _obs_exempt(path: str) -> bool:
    """True for modules inside the obs package itself."""
    normalized = path.replace("\\", "/")
    return any(fragment in normalized for fragment in OBS_EXEMPT_PATHS)


def _tracing_imports(imports: "Mapping[str, str]"
                     ) -> tuple[dict[str, str], set[str]]:
    """Split obs imports into tracing aliases and whole-package names.

    Returns ``(aliases, packages)``: ``aliases`` maps a local name to
    the tracing member it binds (``obs_span`` -> ``obs.span``);
    ``packages`` holds local names bound to the obs package itself
    (``import repro.obs`` / ``from repro import obs``), through which
    any tracing member is reachable by attribute access.
    """
    aliases: dict[str, str] = {}
    packages: set[str] = set()
    for name, origin in imports.items():
        parts = origin.split(".")
        if parts[-1] == OBS_MODULE_NAME:
            packages.add(name)
        elif OBS_MODULE_NAME in parts[:-1] \
                and parts[-1] in OBS_TRACING_NAMES:
            aliases[name] = origin
    return aliases, packages


@rule("OBS501",
      "tracing API used in fingerprint-reachable or stage-body code",
      "spans carry wall-clock starts, durations and pids: instrument "
      "around the pipeline (executor, driver, runner), never inside "
      "what a fingerprint can see")
def obs501_tracing_in_fingerprint(module: "ModuleContext",
                                  index: "ProjectIndex") -> Iterator[Finding]:
    if _obs_exempt(module.path):
        # repro.obs IS the tracing API; banning it from itself would be
        # circular.  Nothing in the obs package computes fingerprints.
        return
    imports = module.module_imports()
    aliases, packages = _tracing_imports(imports)
    if not aliases and not packages:
        return

    functions: dict[ast.FunctionDef, str] = {
        node: module.enclosing_symbol(node)
        for node in ast.walk(module.tree)
        if isinstance(node, ast.FunctionDef)}
    by_name: dict[str, list[ast.FunctionDef]] = {}
    for function in functions:
        by_name.setdefault(function.name, []).append(function)

    seeds = [function for function in functions
             if function.name in FINGERPRINT_SEED_NAMES]
    for stage_run in _stage_run_names(module.tree):
        seeds.extend(by_name.get(stage_run, ()))

    # same-module reachability over direct calls (self.x() and f()),
    # mirroring DET102 so the two rules agree on what "reachable" means
    reachable: set[ast.FunctionDef] = set()
    worklist = list(seeds)
    while worklist:
        function = worklist.pop()
        if function in reachable:
            continue
        reachable.add(function)
        for node in walk_scope(function):
            if not isinstance(node, ast.Call):
                continue
            callee = None
            if isinstance(node.func, ast.Name):
                callee = node.func.id
            elif isinstance(node.func, ast.Attribute) \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id in ("self", "cls"):
                callee = node.func.attr
            if callee is not None:
                worklist.extend(by_name.get(callee, ()))

    for function in sorted(reachable, key=lambda f: f.lineno):
        symbol = functions[function]
        for node in walk_scope(function):
            use = _tracing_use(node, aliases, packages)
            if use is not None:
                yield module.finding(
                    node, "OBS501",
                    f"tracing call {use} inside {symbol!r}, which is "
                    f"fingerprint-reachable (or a pipeline stage body): "
                    f"span timestamps/pids vary per run and per process",
                    hint="lift the span to the caller (executor, flow "
                         "driver, batch runner); metrics counters are "
                         "timestamp-free and allowed")


def _tracing_use(node: ast.AST, aliases: "Mapping[str, str]",
                 packages: set[str]) -> str | None:
    """Describe the tracing-API use ``node`` makes, if any."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id in aliases:
        return f"{aliases[func.id]} (imported as {func.id})"
    if isinstance(func, ast.Attribute) \
            and func.attr in OBS_TRACING_NAMES:
        root = root_name(func)
        if root in packages:
            return f"{root}.{func.attr}"
    return None
