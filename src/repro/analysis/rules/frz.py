"""FRZ: immutability of frozen dataclasses and the automaton kernel.

The stage cache, the shard planner and structural equality all assume
that once an :class:`~repro.automata.core.Automaton` (or a frozen
payload/config dataclass) exists, it never changes: fingerprints are
memoized on first use, and a post-hoc mutation would leave the memo --
and every cache keyed by it -- describing an object that no longer
exists.  ``Stg``/``Fsm`` are the sanctioned *mutable builder views*,
but only through their builder methods; reaching into their private
state from outside reintroduces the same hazard one level up.

``FRZ301`` flags ``object.__setattr__`` outside constructors (the only
place the frozen-dataclass escape hatch is legitimate), ``FRZ302``
flags kernel methods mutating ``self`` outside constructors/builders/
declared memo slots, ``FRZ303`` flags external attribute writes on
instances of frozen dataclasses and kernel classes.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..config import (CONSTRUCTOR_METHODS, KERNEL_BUILDER_METHODS,
                      KERNEL_CLASSES, KERNEL_MEMO_ATTRIBUTES)
from ..findings import Finding
from ..registry import rule
from .common import function_defs, scope_instance_classes, walk_scope

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import ModuleContext
    from ..project import ProjectIndex


# ----------------------------------------------------------------------
# FRZ301: object.__setattr__ outside a constructor
# ----------------------------------------------------------------------
@rule("FRZ301",
      "object.__setattr__ used outside a constructor",
      "the frozen-dataclass escape hatch belongs in __init__/"
      "__post_init__ only; anywhere else it defeats frozen=True")
def frz301_setattr_escape(module: "ModuleContext",
                          index: "ProjectIndex") -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "__setattr__"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "object"):
            continue
        symbol = module.enclosing_symbol(node)
        method = symbol.rsplit(".", 1)[-1] if symbol else ""
        if method in CONSTRUCTOR_METHODS:
            continue
        yield module.finding(
            node, "FRZ301",
            f"object.__setattr__ in {symbol or '<module>'!r} bypasses "
            f"frozen=True outside a constructor: downstream fingerprints "
            f"and caches assume the instance never changes",
            hint="build a new instance (dataclasses.replace) instead of "
                 "mutating; __post_init__ is the only sanctioned site")


# ----------------------------------------------------------------------
# FRZ302: kernel methods mutating self outside constructors/builders
# ----------------------------------------------------------------------
@rule("FRZ302",
      "kernel class mutates self outside constructor/builder/memo slots",
      "Automaton is immutable after __init__; Stg/Fsm mutate only via "
      "their add_* builders and declared lazy-memo attributes")
def frz302_kernel_self_writes(module: "ModuleContext",
                              index: "ProjectIndex") -> Iterator[Finding]:
    for class_def in ast.walk(module.tree):
        if not (isinstance(class_def, ast.ClassDef)
                and class_def.name in KERNEL_CLASSES):
            continue
        builders = KERNEL_BUILDER_METHODS.get(class_def.name, frozenset())
        memos = KERNEL_MEMO_ATTRIBUTES.get(class_def.name, frozenset())
        for method in class_def.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            if method.name in CONSTRUCTOR_METHODS or method.name in builders:
                continue
            for target in _self_attribute_writes(method):
                if target.attr in memos:
                    continue
                yield module.finding(
                    target, "FRZ302",
                    f"{class_def.name}.{method.name} assigns "
                    f"self.{target.attr}: kernel instances are immutable "
                    f"outside constructors and builder methods, and "
                    f"{target.attr!r} is not a declared memo attribute",
                    hint="return a new instance, route the mutation "
                         "through a builder method, or register the "
                         "attribute as a lazy memo in the lint config")


def _self_attribute_writes(method: ast.FunctionDef) -> Iterator[ast.Attribute]:
    """Attribute targets of ``self.x = ...`` style statements."""
    for node in walk_scope(method):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            for leaf in _flatten_targets(target):
                if (isinstance(leaf, ast.Attribute)
                        and isinstance(leaf.value, ast.Name)
                        and leaf.value.id == "self"):
                    yield leaf


def _flatten_targets(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_targets(element)
    else:
        yield target


# ----------------------------------------------------------------------
# FRZ303: external writes to frozen/kernel instances
# ----------------------------------------------------------------------
@rule("FRZ303",
      "attribute write on a frozen dataclass or kernel instance from "
      "outside the class",
      "strict classes (Automaton, frozen dataclasses) reject all "
      "external writes; builder views (Stg, Fsm) reject writes to "
      "underscore internals")
def frz303_external_writes(module: "ModuleContext",
                           index: "ProjectIndex") -> Iterator[Finding]:
    frozen = index.frozen_dataclass_names()
    tracked = frozen | set(KERNEL_CLASSES)
    for scope in function_defs(module.tree):
        instances = scope_instance_classes(scope, tracked)
        if not instances:
            continue
        owner = module.enclosing_symbol(scope)
        for node in walk_scope(scope):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                for leaf in _flatten_targets(target):
                    if not (isinstance(leaf, ast.Attribute)
                            and isinstance(leaf.value, ast.Name)):
                        continue
                    variable = leaf.value.id
                    class_name = instances.get(variable)
                    if class_name is None or variable in ("self", "cls"):
                        continue
                    policy = KERNEL_CLASSES.get(
                        class_name,
                        "strict" if class_name in frozen else "internals")
                    if policy == "internals" \
                            and not leaf.attr.startswith("_"):
                        continue
                    kind = ("frozen dataclass" if class_name in frozen
                            and class_name not in KERNEL_CLASSES
                            else "kernel class")
                    yield module.finding(
                        leaf, "FRZ303",
                        f"{owner or '<module>'!r} writes "
                        f"{variable}.{leaf.attr} where {variable} holds a "
                        f"{class_name} ({kind}): external mutation "
                        f"invalidates memoized fingerprints and any cache "
                        f"keyed by them",
                        hint="use dataclasses.replace / a builder method, "
                             "or suppress with the reason this write is a "
                             "sanctioned memo")
