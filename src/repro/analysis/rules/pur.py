"""PUR: pipeline-stage purity.

The :class:`~repro.flow.pipeline.PipelineExecutor` decides whether a
stage must re-run by comparing the fingerprints of its *declared*
inputs, and it fingerprints and stores the *declared* outputs from the
returned mapping.  A stage body that reads an undeclared artifact has
a hidden input the cache key does not see -- stale reuse; one that
writes the context directly bypasses output fingerprinting -- silent
divergence between cache and truth.  Both failure modes are invisible
until a cache hit goes wrong, which is why they are linted statically.

``PUR401`` flags undeclared ``ctx.get`` reads, ``PUR402`` flags direct
``ctx.put`` writes from stage bodies, ``PUR403`` flags non-constant
context keys (unverifiable declarations), ``PUR404`` flags returned
dict literals missing declared outputs, ``PUR405`` flags module-level
I/O (stage modules are imported by every shard worker).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, NamedTuple

from ..config import MODULE_LEVEL_IO_CALLS, STAGE_FACTORY_NAME
from ..findings import Finding
from ..registry import rule
from .common import call_name, const_str_tuple, sanctioned_io, walk_scope

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import ModuleContext
    from ..project import ProjectIndex

_CTX_WRITERS = frozenset({"put", "put_fingerprinted"})


class StageBinding(NamedTuple):
    """One ``Stage(name, inputs, outputs, run)`` call resolved to its
    run function in the same module."""

    stage_name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    body: ast.FunctionDef


def _stage_bindings(module: "ModuleContext") -> list[StageBinding]:
    by_name: dict[str, ast.FunctionDef] = {
        node.name: node for node in ast.walk(module.tree)
        if isinstance(node, ast.FunctionDef)}
    bindings: list[StageBinding] = []
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call)
                and call_name(node) == STAGE_FACTORY_NAME):
            continue
        slots: dict[str, ast.AST | None] = dict.fromkeys(
            ("name", "inputs", "outputs", "run"))
        for position, argument in enumerate(node.args[:4]):
            slots[("name", "inputs", "outputs", "run")[position]] = argument
        for keyword in node.keywords:
            if keyword.arg in slots:
                slots[keyword.arg] = keyword.value
        name_node, run_node = slots["name"], slots["run"]
        inputs = const_str_tuple(slots["inputs"]) \
            if slots["inputs"] is not None else None
        outputs = const_str_tuple(slots["outputs"]) \
            if slots["outputs"] is not None else None
        if not (isinstance(name_node, ast.Constant)
                and isinstance(name_node.value, str)
                and isinstance(run_node, ast.Name)
                and inputs is not None and outputs is not None):
            continue  # dynamically-built stage: nothing checkable here
        body = by_name.get(run_node.id)
        if body is not None:
            bindings.append(StageBinding(name_node.value, inputs,
                                         outputs, body))
    return bindings


def _ctx_calls(binding: StageBinding) -> Iterator[tuple[ast.Call, str]]:
    """``(call, method)`` for every ``ctx.<method>(...)`` in the body."""
    if not binding.body.args.args:
        return
    ctx_name = binding.body.args.args[0].arg
    for node in walk_scope(binding.body):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == ctx_name):
            yield node, node.func.attr


# ----------------------------------------------------------------------
@rule("PUR401",
      "stage body reads an artifact it does not declare as input",
      "undeclared reads are hidden cache-key inputs: the executor will "
      "reuse stale outputs when only the undeclared artifact changed")
def pur401_undeclared_read(module: "ModuleContext",
                           index: "ProjectIndex") -> Iterator[Finding]:
    for binding in _stage_bindings(module):
        declared = set(binding.inputs)
        for call, method in _ctx_calls(binding):
            if method != "get" or not call.args:
                continue
            key = call.args[0]
            if (isinstance(key, ast.Constant) and isinstance(key.value, str)
                    and key.value not in declared):
                yield module.finding(
                    call, "PUR401",
                    f"stage {binding.stage_name!r} reads artifact "
                    f"{key.value!r} which is not in its declared inputs "
                    f"{binding.inputs}: the stage cache will not re-run "
                    f"this stage when {key.value!r} changes",
                    hint="add the key to the Stage(...) inputs tuple, or "
                         "pass the value in through a declared artifact")


@rule("PUR402",
      "stage body writes the context directly instead of returning",
      "ctx.put from inside a stage bypasses output fingerprinting: "
      "cached replays of the stage will not reproduce the write")
def pur402_direct_write(module: "ModuleContext",
                        index: "ProjectIndex") -> Iterator[Finding]:
    for binding in _stage_bindings(module):
        for call, method in _ctx_calls(binding):
            if method in _CTX_WRITERS:
                yield module.finding(
                    call, "PUR402",
                    f"stage {binding.stage_name!r} calls ctx.{method}(...) "
                    f"directly: the executor only fingerprints artifacts "
                    f"returned from the body, so a cache hit would skip "
                    f"this write entirely",
                    hint="return the value in the output mapping and "
                         "declare the key in the Stage(...) outputs")


@rule("PUR403",
      "stage body uses a non-constant context key",
      "dynamic keys cannot be checked against the declared inputs and "
      "defeat the cache-key audit")
def pur403_dynamic_key(module: "ModuleContext",
                       index: "ProjectIndex") -> Iterator[Finding]:
    for binding in _stage_bindings(module):
        for call, method in _ctx_calls(binding):
            if method != "get" or not call.args:
                continue
            key = call.args[0]
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)):
                yield module.finding(
                    call, "PUR403",
                    f"stage {binding.stage_name!r} reads the context with "
                    f"a non-constant key: the declared-inputs contract "
                    f"cannot be verified for dynamic keys",
                    hint="read artifacts by string literal; branch on the "
                         "values, not on the key names")


@rule("PUR404",
      "stage return dict is missing declared outputs",
      "the executor raises at runtime when a declared output is absent; "
      "catch the mismatch at lint time instead")
def pur404_missing_outputs(module: "ModuleContext",
                           index: "ProjectIndex") -> Iterator[Finding]:
    for binding in _stage_bindings(module):
        for node in walk_scope(binding.body):
            if not (isinstance(node, ast.Return)
                    and isinstance(node.value, ast.Dict)):
                continue
            keys: set[str] = set()
            literal = True
            for key in node.value.keys:
                if isinstance(key, ast.Constant) \
                        and isinstance(key.value, str):
                    keys.add(key.value)
                else:
                    literal = False  # **unpack or computed key
            if not literal:
                continue
            missing = [name for name in binding.outputs if name not in keys]
            if missing:
                yield module.finding(
                    node, "PUR404",
                    f"stage {binding.stage_name!r} returns a dict missing "
                    f"declared output(s) {missing}: the executor will "
                    f"raise when storing this stage's results",
                    hint="return every key named in the Stage(...) "
                         "outputs tuple from every return path")


@rule("PUR405",
      "module-level I/O in analyzed code",
      "modules are imported by every shard worker process; import must "
      "stay side-effect free")
def pur405_import_side_effects(module: "ModuleContext",
                               index: "ProjectIndex") -> Iterator[Finding]:
    if sanctioned_io(module.path):
        return  # repro.store: file I/O is the module's purpose
    for statement in module.tree.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Import,
                                  ast.ImportFrom)):
            continue
        if _is_main_guard(statement):
            continue
        for node in walk_scope(statement):
            if isinstance(node, ast.Call) \
                    and call_name(node) in MODULE_LEVEL_IO_CALLS:
                yield module.finding(
                    node, "PUR405",
                    f"module-level call to {call_name(node)}() runs on "
                    f"import, in every process that touches this module "
                    f"(including all shard workers)",
                    hint="move the call under a function or the "
                         "__main__ guard")


def _is_main_guard(statement: ast.stmt) -> bool:
    return (isinstance(statement, ast.If)
            and isinstance(statement.test, ast.Compare)
            and isinstance(statement.test.left, ast.Name)
            and statement.test.left.id == "__name__")
