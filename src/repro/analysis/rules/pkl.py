"""PKL: shard-payload pickle-safety at definition time.

The shard backend ships :class:`~repro.flow.shard.JobPayload` in and
:class:`~repro.flow.shard.JobSummary`/:class:`~repro.flow.shard.ShardOutcome`
back across a process boundary.  The runtime ``payload_check`` catches
an unpicklable *instance* at submission time; these rules close the
gap one layer earlier, at class definition: a payload class may only
declare fields whose types are statically known to pickle compactly.
Whoever adds ``stage_cache: StageCache`` or ``hook: Callable`` to a
payload learns at lint time, not in a worker traceback.

``PKL201`` checks the field annotations against the allowlist;
``PKL202`` requires payload classes to be ``@dataclass(frozen=True)``
(an unfrozen payload could be mutated between fingerprinting and
submission, splitting the shard plan from the shipped content).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..config import PAYLOAD_ATOMS, PAYLOAD_SAFE_TYPES
from ..findings import Finding
from ..registry import rule

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import ModuleContext
    from ..project import ProjectIndex


@rule("PKL201",
      "payload field type is not statically picklable/compact",
      "payloads cross the process boundary: hold only plain data and "
      "registered payload-safe domain types")
def pkl201_field_types(module: "ModuleContext",
                       index: "ProjectIndex") -> Iterator[Finding]:
    allowed = (PAYLOAD_ATOMS | PAYLOAD_SAFE_TYPES
               | index.payload_class_names())
    for info in index.payload_classes():
        if info.path != module.path:
            continue
        for name, annotation, line in info.fields:
            offending = sorted(_disallowed_atoms(annotation, allowed))
            if offending:
                yield Finding(
                    path=module.path, line=line,
                    column=annotation.col_offset, rule="PKL201",
                    message=f"field {info.name}.{name} is annotated with "
                            f"{', '.join(offending)}, which is not on the "
                            f"payload-safe type allowlist -- it may not "
                            f"pickle, or not compactly",
                    hint="ship plain data (int/str/tuple/dict/...) or a "
                         "registered payload-safe class; let workers "
                         "rebuild heavy objects from specs",
                    symbol=info.name)


@rule("PKL202",
      "payload class is not a frozen dataclass",
      "an unfrozen payload can drift between fingerprinting and "
      "submission; freeze it so content and shard assignment agree")
def pkl202_frozen(module: "ModuleContext",
                  index: "ProjectIndex") -> Iterator[Finding]:
    for info in index.payload_classes():
        if info.path != module.path:
            continue
        if not (info.is_dataclass and info.frozen):
            yield Finding(
                path=module.path, line=info.line, column=0, rule="PKL202",
                message=f"payload class {info.name} must be declared "
                        f"@dataclass(frozen=True): payloads are "
                        f"fingerprinted at plan time and must be "
                        f"immutable until the worker consumes them",
                hint="add frozen=True (use dataclasses.replace for "
                     "variations)",
                symbol=info.name)


def _disallowed_atoms(annotation: ast.AST,
                      allowed: frozenset[str] | set[str]) -> set[str]:
    """Type atoms in ``annotation`` that are off the allowlist."""
    bad: set[str] = set()

    def visit(node: ast.AST) -> None:
        if isinstance(node, ast.Attribute):
            # dotted types (threading.Lock, futures.Future) are never on
            # the allowlist; report the dotted form once, whole
            bad.add(ast.unparse(node))
            return
        if isinstance(node, ast.Name):
            if node.id not in allowed:
                bad.add(node.id)
            return
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                # quoted forward reference: check its identifiers
                for token in node.value.replace("|", " ") \
                        .replace("[", " ").replace("]", " ") \
                        .replace(",", " ").split():
                    parts = token.split(".")
                    if not all(part.isidentifier() for part in parts):
                        continue
                    # dotted names are never on the allowlist
                    if len(parts) > 1 or token not in allowed:
                        bad.add(token)
            return
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(annotation)
    return bad
