"""Shared content-hash helper behind every ``fingerprint()`` hook.

Task graphs, partitions, schedules, STGs, architectures and
partitioners all expose a ``fingerprint()`` used by the flow pipeline
(:mod:`repro.flow.pipeline`) as cache keys.  They all reduce their
content to a canonical payload and hash it here, so the digest choice
and truncation width live in exactly one place.
"""

from __future__ import annotations

import hashlib

__all__ = ["content_hash"]

#: Hex digits kept from the digest: 64 bits, plenty for cache keys.
FINGERPRINT_LENGTH = 16


def content_hash(payload: object) -> str:
    """Hash ``repr(payload)``; the payload must be deterministic."""
    digest = hashlib.sha256(repr(payload).encode())
    return digest.hexdigest()[:FINGERPRINT_LENGTH]
