"""Finite state machines: the common substrate of all synthesized
controllers (system controller, data-path controllers, I/O controller,
bus arbiters).

Mealy-style: transitions carry a conjunction of input signals as the
condition and a set of output signals as actions.  Within a state,
transitions are *prioritized in list order*, which resolves condition
overlaps deterministically (the VHDL emitter generates an if/elsif
cascade in the same order).

The class supports everything downstream needs: validation, cycle-level
simulation, classical state minimization (partition refinement) and
state encoding (binary / one-hot / gray) for code generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FsmError", "FsmTransition", "Fsm", "encode_states"]


class FsmError(ValueError):
    """Raised for malformed state machines."""


@dataclass(frozen=True)
class FsmTransition:
    """Guarded Mealy transition with conjunctive conditions."""

    src: str
    dst: str
    conditions: tuple[str, ...] = ()
    actions: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "conditions", tuple(self.conditions))
        object.__setattr__(self, "actions", tuple(sorted(self.actions)))

    def enabled(self, inputs: set[str]) -> bool:
        return set(self.conditions) <= inputs


@dataclass
class Fsm:
    """A Mealy machine over named boolean signals."""

    name: str
    states: list[str] = field(default_factory=list)
    initial: str | None = None
    transitions: list[FsmTransition] = field(default_factory=list)
    #: Moore outputs: signals asserted while residing in a state.
    state_outputs: dict[str, tuple[str, ...]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add_state(self, name: str, outputs: tuple[str, ...] = ()) -> str:
        if name in self.states:
            raise FsmError(f"fsm {self.name!r}: duplicate state {name!r}")
        self.states.append(name)
        if outputs:
            self.state_outputs[name] = tuple(sorted(outputs))
        if self.initial is None:
            self.initial = name
        return name

    def add_transition(self, src: str, dst: str,
                       conditions: tuple[str, ...] = (),
                       actions: tuple[str, ...] = ()) -> FsmTransition:
        for endpoint in (src, dst):
            if endpoint not in self.states:
                raise FsmError(f"fsm {self.name!r}: unknown state "
                               f"{endpoint!r}")
        transition = FsmTransition(src, dst, conditions, actions)
        self.transitions.append(transition)
        return transition

    # ------------------------------------------------------------------
    def out_transitions(self, state: str) -> list[FsmTransition]:
        return [t for t in self.transitions if t.src == state]

    @property
    def inputs(self) -> list[str]:
        signals: set[str] = set()
        for t in self.transitions:
            signals.update(t.conditions)
        return sorted(signals)

    @property
    def outputs(self) -> list[str]:
        signals: set[str] = set()
        for t in self.transitions:
            signals.update(t.actions)
        for outs in self.state_outputs.values():
            signals.update(outs)
        return sorted(signals)

    def validate(self) -> list[str]:
        problems: list[str] = []
        if self.initial is None:
            problems.append("no initial state")
        if len(set(self.states)) != len(self.states):
            problems.append("duplicate state names")
        # reachability
        if self.initial is not None:
            seen = {self.initial}
            stack = [self.initial]
            while stack:
                for t in self.out_transitions(stack.pop()):
                    if t.dst not in seen:
                        seen.add(t.dst)
                        stack.append(t.dst)
            unreachable = set(self.states) - seen
            if unreachable:
                problems.append(f"unreachable states: {sorted(unreachable)}")
        return problems

    # ------------------------------------------------------------------
    def step(self, state: str, inputs: set[str]) -> tuple[str, tuple[str, ...]]:
        """One clock edge: highest-priority enabled transition fires.

        Returns the next state and the asserted outputs (Mealy actions of
        the fired transition plus Moore outputs of the *current* state).
        With no enabled transition the machine stays put.
        """
        moore = self.state_outputs.get(state, ())
        for transition in self.out_transitions(state):
            if transition.enabled(inputs):
                return transition.dst, tuple(sorted(
                    set(transition.actions) | set(moore)))
        return state, tuple(moore)

    def simulate(self, input_trace: list[set[str]]) -> list[tuple[str,
                                                                  tuple]]:
        """Run from the initial state; one (state, outputs) pair per cycle."""
        if self.initial is None:
            raise FsmError(f"fsm {self.name!r} has no initial state")
        log: list[tuple[str, tuple]] = []
        state = self.initial
        for inputs in input_trace:
            state, outputs = self.step(state, set(inputs))
            log.append((state, outputs))
        return log

    # ------------------------------------------------------------------
    def minimize(self) -> "Fsm":
        """Merge behaviourally equivalent states (partition refinement)."""
        block_of: dict[str, int] = {}
        keys: dict[tuple, int] = {}
        for state in self.states:
            key = (self.state_outputs.get(state, ()),
                   state == self.initial)
            block_of[state] = keys.setdefault(key, len(keys))

        changed = True
        while changed:
            changed = False
            signature: dict[str, tuple] = {}
            for state in self.states:
                outs = tuple(
                    (t.conditions, t.actions, block_of[t.dst])
                    for t in self.out_transitions(state))
                signature[state] = (block_of[state], outs)
            keys = {}
            refined: dict[str, int] = {}
            for state in self.states:
                refined[state] = keys.setdefault(signature[state], len(keys))
            if refined != block_of:
                block_of = refined
                changed = True

        representative: dict[int, str] = {}
        for state in self.states:
            representative.setdefault(block_of[state], state)

        reduced = Fsm(self.name)
        for state in self.states:
            if representative[block_of[state]] == state:
                reduced.add_state(state, self.state_outputs.get(state, ()))
        reduced.initial = representative[block_of[self.initial]] \
            if self.initial else None
        seen: set[tuple] = set()
        for t in self.transitions:
            src = representative[block_of[t.src]]
            dst = representative[block_of[t.dst]]
            key = (src, dst, t.conditions, t.actions)
            if key not in seen:
                seen.add(key)
                reduced.add_transition(src, dst, t.conditions, t.actions)
        return reduced

    def stats(self) -> dict:
        return {"name": self.name, "states": len(self.states),
                "transitions": len(self.transitions),
                "inputs": len(self.inputs), "outputs": len(self.outputs)}


def encode_states(fsm: Fsm, scheme: str = "binary") -> dict[str, str]:
    """Assign a bit pattern to every state.

    ``binary`` -- minimal-width counter encoding; ``one_hot`` -- one
    flip-flop per state (the XC4000-friendly choice); ``gray`` --
    single-bit-change sequence in state order.
    """
    n = len(fsm.states)
    if n == 0:
        raise FsmError(f"fsm {fsm.name!r} has no states to encode")
    if scheme == "one_hot":
        return {s: format(1 << i, f"0{n}b")
                for i, s in enumerate(fsm.states)}
    width = max(1, (n - 1).bit_length())
    if scheme == "binary":
        return {s: format(i, f"0{width}b") for i, s in enumerate(fsm.states)}
    if scheme == "gray":
        return {s: format(i ^ (i >> 1), f"0{width}b")
                for i, s in enumerate(fsm.states)}
    raise FsmError(f"unknown encoding scheme {scheme!r}")
