"""Finite state machines: the common substrate of all synthesized
controllers (system controller, data-path controllers, I/O controller,
bus arbiters).

Mealy-style: transitions carry a conjunction of input signals as the
condition and a set of output signals as actions.  Within a state,
transitions are *prioritized in list order*, which resolves condition
overlaps deterministically (the VHDL emitter generates an if/elsif
cascade in the same order).

Since the automaton-kernel refactor this class is a thin mutable view
over :mod:`repro.automata`: simulation runs on the kernel's
:class:`~repro.automata.SequentialRunner`, minimization on the shared
worklist partition refinement (:func:`repro.automata.refine_partition`,
ordered signatures -- priority is observable), and state encodings come
from :mod:`repro.automata.encoding`.  The interned automaton view is
cached and rebuilt only after mutations through :meth:`Fsm.add_state` /
:meth:`Fsm.add_transition`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..automata import (AutomataError, Automaton, AutomatonBuilder,
                        SequentialRunner, encode_names, quotient,
                        refine_partition)
from ..fingerprint import content_hash

__all__ = ["FsmError", "FsmTransition", "Fsm", "encode_states"]


class FsmError(ValueError):
    """Raised for malformed state machines."""


@dataclass(frozen=True)
class FsmTransition:
    """Guarded Mealy transition with conjunctive conditions."""

    src: str
    dst: str
    conditions: tuple[str, ...] = ()
    actions: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "conditions", tuple(self.conditions))
        object.__setattr__(self, "actions", tuple(sorted(self.actions)))

    def enabled(self, inputs: set[str]) -> bool:
        return set(self.conditions) <= inputs


@dataclass
class Fsm:
    """A Mealy machine over named boolean signals."""

    name: str
    states: list[str] = field(default_factory=list)
    initial: str | None = None
    transitions: list[FsmTransition] = field(default_factory=list)
    #: Moore outputs: signals asserted while residing in a state.
    state_outputs: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Mutation counter invalidating the cached kernel view.
    _version: int = field(default=0, init=False, repr=False, compare=False)
    _kernel_cache: tuple | None = field(default=None, init=False,
                                        repr=False, compare=False)

    # ------------------------------------------------------------------
    def add_state(self, name: str, outputs: tuple[str, ...] = ()) -> str:
        if name in self.states:
            raise FsmError(f"fsm {self.name!r}: duplicate state {name!r}")
        self.states.append(name)
        if outputs:
            self.state_outputs[name] = tuple(sorted(outputs))
        if self.initial is None:
            self.initial = name
        self._version += 1
        return name

    def add_transition(self, src: str, dst: str,
                       conditions: tuple[str, ...] = (),
                       actions: tuple[str, ...] = ()) -> FsmTransition:
        for endpoint in (src, dst):
            if endpoint not in self.states:
                raise FsmError(f"fsm {self.name!r}: unknown state "
                               f"{endpoint!r}")
        transition = FsmTransition(src, dst, conditions, actions)
        self.transitions.append(transition)
        self._version += 1
        return transition

    # ------------------------------------------------------------------
    def to_automaton(self) -> Automaton:
        """The interned kernel view (cached until the next mutation).

        Mutations are expected to go through ``add_state`` /
        ``add_transition``; the container lengths in the cache key
        additionally catch direct appends to the public fields.
        In-place *replacement* of an existing element
        (``fsm.transitions[0] = ...``) is outside the contract and
        would be served the stale view -- build a fresh ``Fsm`` for
        structural edits instead.
        """
        cache_key = (self._version, self.initial, len(self.states),
                     len(self.transitions), len(self.state_outputs))
        if self._kernel_cache is not None \
                and self._kernel_cache[0] == cache_key:
            return self._kernel_cache[1]
        builder = AutomatonBuilder(self.name)
        for state in self.states:
            builder.add_state(state,
                              outputs=self.state_outputs.get(state, ()))
        for t in self.transitions:
            builder.add_transition(t.src, t.dst, conditions=t.conditions,
                                   actions=t.actions)
        automaton = builder.build(initial=self.initial)
        self._kernel_cache = (cache_key, automaton,
                              SequentialRunner(automaton))
        return automaton

    def _runner(self) -> SequentialRunner:
        self.to_automaton()
        return self._kernel_cache[2]

    def fingerprint(self) -> str:
        """Content hash over states, outputs and transitions."""
        return content_hash((
            self.name, self.initial, tuple(self.states),
            tuple(sorted(self.state_outputs.items())),
            tuple((t.src, t.dst, t.conditions, t.actions)
                  for t in self.transitions)))

    # ------------------------------------------------------------------
    def out_transitions(self, state: str) -> list[FsmTransition]:
        return [t for t in self.transitions if t.src == state]

    @property
    def inputs(self) -> list[str]:
        signals: set[str] = set()
        for t in self.transitions:
            signals.update(t.conditions)
        return sorted(signals)

    @property
    def outputs(self) -> list[str]:
        signals: set[str] = set()
        for t in self.transitions:
            signals.update(t.actions)
        for outs in self.state_outputs.values():
            signals.update(outs)
        return sorted(signals)

    def validate(self) -> list[str]:
        problems: list[str] = []
        if self.initial is None:
            problems.append("no initial state")
        if len(set(self.states)) != len(self.states):
            problems.append("duplicate state names")
        # reachability
        if self.initial is not None:
            seen = {self.initial}
            stack = [self.initial]
            while stack:
                for t in self.out_transitions(stack.pop()):
                    if t.dst not in seen:
                        seen.add(t.dst)
                        stack.append(t.dst)
            unreachable = set(self.states) - seen
            if unreachable:
                problems.append(f"unreachable states: {sorted(unreachable)}")
        return problems

    # ------------------------------------------------------------------
    def step(self, state: str, inputs: set[str]) -> tuple[str, tuple[str, ...]]:
        """One clock edge: highest-priority enabled transition fires.

        Returns the next state and the asserted outputs (Mealy actions of
        the fired transition plus Moore outputs of the *current* state).
        With no enabled transition the machine stays put.
        """
        automaton = self.to_automaton()
        index = automaton.index_of(state)
        if index is None:
            return state, ()
        next_index, out_ids = self._runner().step(
            index, automaton.symbols.ids_of(inputs))
        return automaton.name_of(next_index), \
            automaton.symbols.names_of(out_ids)

    def simulate(self, input_trace: list[set[str]]) -> list[tuple[str,
                                                                  tuple]]:
        """Run from the initial state; one (state, outputs) pair per cycle."""
        if self.initial is None:
            raise FsmError(f"fsm {self.name!r} has no initial state")
        automaton = self.to_automaton()
        runner = self._runner()
        symbols = automaton.symbols
        kernel_log = runner.trace(automaton.initial,
                                  [symbols.ids_of(inputs)
                                   for inputs in input_trace])
        return [(automaton.name_of(state), symbols.names_of(out_ids))
                for state, out_ids in kernel_log]

    # ------------------------------------------------------------------
    def minimize(self) -> "Fsm":
        """Merge behaviourally equivalent states.

        Delegates to the kernel's worklist partition refinement with
        *ordered* signatures (transition priority is observable).  The
        representative of each block is its initial state when present,
        so the canonical entry name callers reference always survives;
        otherwise the earliest-declared state (deterministic).
        """
        automaton = self.to_automaton()
        refinement = refine_partition(automaton, ordered=True)
        if refinement.merged == 0:
            # already minimal: hand back an equal fresh machine without
            # replaying the add_state/add_transition validation
            return Fsm(self.name, list(self.states), self.initial,
                       list(self.transitions), dict(self.state_outputs))
        # the kernel quotient does the representative rewiring and the
        # priority-preserving transition dedup; convert its view back
        merged = quotient(automaton, refinement)
        symbols = merged.symbols
        reduced = Fsm(self.name)
        for index, state in enumerate(merged.state_names):
            reduced.add_state(state, symbols.names_of(merged.outputs_of(index)))
        reduced.initial = merged.name_of(merged.initial) \
            if merged.initial is not None else None
        for t in merged.transitions:
            reduced.add_transition(merged.name_of(t.src),
                                   merged.name_of(t.dst),
                                   symbols.names_of(t.conditions),
                                   symbols.names_of(t.actions))
        return reduced

    def stats(self) -> dict:
        return {"name": self.name, "states": len(self.states),
                "transitions": len(self.transitions),
                "inputs": len(self.inputs), "outputs": len(self.outputs)}


def encode_states(fsm: Fsm, scheme: str = "binary") -> dict[str, str]:
    """Assign a bit pattern to every state (kernel encodings).

    ``binary`` -- minimal-width counter encoding; ``one_hot`` -- one
    flip-flop per state (the XC4000-friendly choice); ``gray`` --
    single-bit-change sequence in state order.
    """
    try:
        return encode_names(fsm.states, scheme)
    except AutomataError as exc:
        raise FsmError(f"fsm {fsm.name!r}: {exc}") from exc
