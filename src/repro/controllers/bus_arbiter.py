"""Bus-arbiter synthesis.

Paper Section 2: COOL adds "bus arbiters to prevent conflicts".  Two
policies are provided; both expose the same interface to the
co-simulator (``grant``) and both can be exported as an FSM for code
generation (``to_fsm``):

* :class:`FixedPriorityArbiter` -- masters are ranked once (the system
  controller first, then processors, FPGAs, I/O);
* :class:`RoundRobinArbiter` -- the grant pointer advances past the last
  winner, guaranteeing starvation freedom.
"""

from __future__ import annotations

from ..fingerprint import content_hash
from .fsm import Fsm

__all__ = ["Arbiter", "FixedPriorityArbiter", "RoundRobinArbiter"]


class Arbiter:
    """Common interface of bus arbiters over a fixed master list."""

    policy = "abstract"

    def __init__(self, masters: list[str]) -> None:
        if not masters:
            raise ValueError("arbiter needs at least one master")
        if len(set(masters)) != len(masters):
            raise ValueError("duplicate master names")
        self.masters = list(masters)

    def fingerprint(self) -> str:
        """Content hash of the arbitration contract (policy + masters).

        Arbiters are pipeline artifacts (the controllers stage emits
        one), so they need a stable content fingerprint: the grant
        policy and the master list fully determine the exported FSM and
        therefore the codegen stage's input signature -- across
        processes and store round-trips.  Scheduling state (the
        round-robin pointer) is deliberately excluded: it is simulation
        progress, not content.
        """
        return content_hash(("arbiter", self.policy, tuple(self.masters)))

    def grant(self, requests: set[str]) -> str | None:
        """Pick the winning master among ``requests`` (None if empty)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Return to the power-up arbitration state."""

    def to_fsm(self) -> Fsm:
        """Export as an FSM: one grant state per master plus idle."""
        fsm = Fsm(f"arbiter_{self.policy}")
        fsm.add_state("idle")
        for master in self.masters:
            fsm.add_state(f"grant_{master}",
                          outputs=(f"gnt_{master}",))
        for rank, master in enumerate(self.masters):
            # priority order encodes the policy: earlier masters are
            # checked first (list order = transition priority)
            fsm.add_transition("idle", f"grant_{master}",
                               conditions=(f"req_{master}",))
            fsm.add_transition(f"grant_{master}", "idle",
                               conditions=(f"release_{master}",))
        return fsm


class FixedPriorityArbiter(Arbiter):
    """Lower list index wins."""

    policy = "fixed_priority"

    def grant(self, requests: set[str]) -> str | None:
        unknown = requests - set(self.masters)
        if unknown:
            raise ValueError(f"unknown masters request the bus: "
                             f"{sorted(unknown)}")
        for master in self.masters:
            if master in requests:
                return master
        return None


class RoundRobinArbiter(Arbiter):
    """The pointer starts after the previous winner."""

    policy = "round_robin"

    def __init__(self, masters: list[str]) -> None:
        super().__init__(masters)
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def grant(self, requests: set[str]) -> str | None:
        unknown = requests - set(self.masters)
        if unknown:
            raise ValueError(f"unknown masters request the bus: "
                             f"{sorted(unknown)}")
        n = len(self.masters)
        for offset in range(n):
            candidate = self.masters[(self._next + offset) % n]
            if candidate in requests:
                self._next = (self.masters.index(candidate) + 1) % n
                return candidate
        return None
