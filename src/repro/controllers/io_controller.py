"""I/O-controller synthesis.

Paper Section 2: COOL adds "an I/O controller to communicate with the
environment".  The controller is a processing unit like any other from
the system controller's point of view: it owns all ``input`` / ``output``
nodes of the task graph, answers ``start_<node>`` commands and reports
``done_<node>`` pulses.

For an input node it samples the environment port and produces the value
(the system controller then writes it to the node's memory cells); for
an output node it consumes the value (read from memory by the system
controller) and drives the environment port with a ``valid`` strobe.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.taskgraph import TaskGraph
from .fsm import Fsm

__all__ = ["IoController", "synthesize_io_controller"]


@dataclass
class IoController:
    """The environment interface unit."""

    fsm: Fsm
    input_ports: tuple[str, ...]
    output_ports: tuple[str, ...]

    @property
    def ports(self) -> tuple[str, ...]:
        return self.input_ports + self.output_ports

    def stats(self) -> dict:
        return {"inputs": len(self.input_ports),
                "outputs": len(self.output_ports),
                "states": len(self.fsm.states)}


def synthesize_io_controller(graph: TaskGraph) -> IoController:
    """Build the I/O controller for all environment ports of ``graph``."""
    fsm = Fsm("ioc")
    fsm.add_state("idle")
    inputs, outputs = [], []
    for node in graph.inputs():
        inputs.append(node.name)
        fsm.add_state(f"sample_{node.name}",
                      outputs=(f"port_en_{node.name}",))
        fsm.add_transition("idle", f"sample_{node.name}",
                           conditions=(f"start_{node.name}",),
                           actions=(f"sample_{node.name}",))
        fsm.add_transition(f"sample_{node.name}", "idle",
                           conditions=(f"port_ready_{node.name}",),
                           actions=(f"done_{node.name}",))
    for node in graph.outputs():
        outputs.append(node.name)
        fsm.add_state(f"drive_{node.name}",
                      outputs=(f"port_en_{node.name}",))
        fsm.add_transition("idle", f"drive_{node.name}",
                           conditions=(f"start_{node.name}",),
                           actions=(f"drive_{node.name}",
                                    f"valid_{node.name}"))
        fsm.add_transition(f"drive_{node.name}", "idle",
                           conditions=(f"port_ready_{node.name}",),
                           actions=(f"done_{node.name}",))
    return IoController(fsm, tuple(inputs), tuple(outputs))
