"""System-controller synthesis from the (minimized) STG.

The system controller "steers the complete system according to the
computed schedule" (paper Section 2).  Because the processing units run
concurrently, the controller is synthesized as a *composition* of
communicating FSMs, all derived from the STG:

* one **sequencer FSM per processing unit** -- the projection of the STG
  onto that unit's chain: it walks the unit through its scheduled nodes,
  waiting on the done flags of cross-unit data predecessors (the STG
  guards), issuing the memory reads, the start pulse and the memory
  writes of each node;
* one **phase FSM** -- the projection of the global R / X / D states:
  it resets every unit, releases the sequencers with a ``go`` broadcast,
  and collects their ``phase_done`` flags before signalling system
  completion;
* a bank of **done-flag registers** (one per task-graph node, cleared in
  the reset phase) that latch the units' done pulses; the sequencer
  guards read these flags, which is how cross-unit synchronisation
  becomes plain combinational logic.

Every synthesized FSM is state-minimized through the shared kernel
minimizer before it ships (``SystemController.stats()`` reports the
before/after counts), and the communicating composition executes on the
kernel's :class:`~repro.automata.SynchronousComposition` -- the same
product operator :func:`repro.controllers.verify.verify_composition`
uses to prove the composed controller trace-equivalent to the STG.

Everything is implemented in hardware "because hardware allows
concurrent processes" (paper), which is why the composition-of-FSMs
structure is the faithful one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..automata import Automaton, CompositionConfig, SynchronousComposition
from ..fingerprint import content_hash
from ..stg.builder import global_state
from ..stg.states import StateKind, Stg, StgError
from .fsm import Fsm

__all__ = ["SystemController", "ControllerHarness",
           "controller_composition", "synthesize_system_controller",
           "PHASE_DONE_STATE"]

#: Phase-FSM state that marks a completed activation (``system_done``).
PHASE_DONE_STATE = "done"


def controller_composition(controller: "SystemController"
                           ) -> tuple[list[Automaton], CompositionConfig]:
    """The kernel components + channel wiring of a controller.

    One source of truth for how the phase FSM and the sequencers
    communicate: ``go`` / ``phase_done_*`` ride the internal latches,
    ``clear_flags`` wipes the done-flag register, ``go`` is consumed
    once per sequencer activation and the phase FSM's ``reset`` state
    flushes the latches.  Both the executing
    :class:`ControllerHarness` and the product materialization inside
    :func:`repro.controllers.verify.verify_composition` build their
    composition from here, so the verified object and the simulated one
    cannot drift apart.
    """
    components = [fsm.to_automaton() for fsm in controller.fsms]
    internal = ("go",) + tuple(f"phase_done_{r}"
                               for r in controller.sequencers)
    config = CompositionConfig(internal=internal,
                               clear_action="clear_flags",
                               consume_once=("go",),
                               flush_component=0,
                               flush_states=("reset",))
    return components, config


@dataclass
class SystemController:
    """The synthesized controller: phase FSM + per-unit sequencers."""

    name: str
    phase_fsm: Fsm
    sequencers: dict[str, Fsm] = field(default_factory=dict)
    #: task-graph nodes whose done pulses are latched as flags
    done_flags: tuple[str, ...] = ()
    #: per-FSM state counts before kernel minimization (FSM name ->
    #: count); empty when synthesis ran with ``minimize=False``.
    unminimized_states: dict[str, int] = field(default_factory=dict)

    @property
    def fsms(self) -> list[Fsm]:
        return [self.phase_fsm] + list(self.sequencers.values())

    @property
    def total_states(self) -> int:
        return sum(len(f.states) for f in self.fsms)

    @property
    def inputs(self) -> list[str]:
        signals: set[str] = set()
        for fsm in self.fsms:
            signals.update(fsm.inputs)
        # internal handshakes are not external inputs
        internal = {"go"} | {f"phase_done_{r}" for r in self.sequencers}
        return sorted(signals - internal)

    @property
    def outputs(self) -> list[str]:
        signals: set[str] = set()
        for fsm in self.fsms:
            signals.update(fsm.outputs)
        internal = {"go"} | {f"phase_done_{r}" for r in self.sequencers}
        return sorted(signals - internal)

    def fingerprint(self) -> str:
        """Content hash over the complete composition (pipeline cache key)."""
        return content_hash((
            self.name, self.done_flags,
            self.phase_fsm.fingerprint(),
            tuple((r, f.fingerprint())
                  for r, f in sorted(self.sequencers.items()))))

    def stats(self) -> dict:
        minimization = {
            fsm.name: {"before": self.unminimized_states[fsm.name],
                       "after": len(fsm.states)}
            for fsm in self.fsms if fsm.name in self.unminimized_states}
        return {
            "fsms": len(self.fsms),
            "total_states": self.total_states,
            "sequencers": {r: len(f.states)
                           for r, f in self.sequencers.items()},
            "phase_states": len(self.phase_fsm.states),
            "done_flags": len(self.done_flags),
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "minimization": minimization,
            "states_saved": sum(m["before"] - m["after"]
                                for m in minimization.values()),
        }


def _chain_of(stg: Stg, resource: str) -> list[str]:
    """Ordered STG states of one unit's chain, following transitions.

    Works on both the full and the minimized STG: entry is the successor
    of the global EXEC state that lies on ``resource``; the chain ends
    at the global DONE state.  Both anchors are found structurally by
    kind (:func:`repro.stg.builder.global_state`), and termination is
    guaranteed by cycle detection instead of an arbitrary step bound.
    """
    exec_state = global_state(stg, StateKind.GLOBAL_EXEC)
    done_state = global_state(stg, StateKind.GLOBAL_DONE)
    entries = [t.dst for t in stg.out_transitions(exec_state.name)
               if stg.state(t.dst).resource == resource]
    if not entries:
        return []
    if len(entries) > 1:
        raise StgError(f"resource {resource!r} has {len(entries)} chain "
                       f"entries in the STG")
    chain = []
    current = entries[0]
    visited: set[str] = set()
    while current != done_state.name:
        if current in visited:
            raise StgError(f"chain of {resource!r} revisits state "
                           f"{current!r}: not a schedule chain")
        visited.add(current)
        chain.append(current)
        outs = stg.out_transitions(current)
        if len(outs) != 1:
            raise StgError(f"state {current!r}: chain expects exactly one "
                           f"successor, found {len(outs)}")
        current = outs[0].dst
    return chain


def _sequencer(stg: Stg, resource: str) -> Fsm:
    """Project the STG chain of one unit into a sequencer FSM.

    Edge-for-edge copy of the chain: every STG chain state becomes an
    FSM state; the entry edge (X -> first state) becomes the ``go`` hop
    out of ``idle`` and keeps its actions (after minimization the entry
    edge may already carry the first node's start); the exit edge
    (last state -> D) returns to ``idle`` and additionally reports
    ``phase_done_<resource>`` to the phase FSM.
    """
    fsm = Fsm(f"seq_{resource}")
    fsm.add_state("idle")
    chain = _chain_of(stg, resource)
    if not chain:
        return fsm

    for state_name in chain:
        fsm.add_state(state_name)

    exec_state = global_state(stg, StateKind.GLOBAL_EXEC)
    entry = next(t for t in stg.out_transitions(exec_state.name)
                 if stg.state(t.dst).resource == resource)
    fsm.add_transition("idle", chain[0],
                       conditions=("go",) + tuple(entry.conditions),
                       actions=entry.actions)

    for state_name, successor in zip(chain, chain[1:]):
        exit_t = stg.out_transitions(state_name)[0]
        fsm.add_transition(state_name, successor,
                           conditions=exit_t.conditions,
                           actions=exit_t.actions)

    last_exit = stg.out_transitions(chain[-1])[0]
    fsm.add_transition(chain[-1], "idle",
                       conditions=last_exit.conditions,
                       actions=tuple(last_exit.actions)
                       + (f"phase_done_{resource}",))
    return fsm


class ControllerHarness:
    """Cycle-level closed-loop execution of the controller composition.

    Models exactly the synthesized hardware: the phase FSM and the
    sequencers step once per clock; done pulses from the units are
    latched into the done-flag registers; ``clear_flags`` (issued during
    the reset phase) clears them; ``go`` is distributed as a latched
    broadcast consumed once per sequencer activation.  The execution
    itself is the kernel's synchronous product
    (:class:`repro.automata.SynchronousComposition`); this class is the
    controller-shaped view of it.  The co-simulator drives this
    harness, and the tests cross-validate its action traces against the
    STG executor -- the synthesized controller must behave exactly like
    the STG it came from.
    """

    def __init__(self, controller: SystemController) -> None:
        self.controller = controller
        components, config = controller_composition(controller)
        self._composition = SynchronousComposition(components, config)

    # ------------------------------------------------------------------
    @property
    def phase_state(self) -> str:
        return self._composition.state_names[0]

    @property
    def seq_states(self) -> dict[str, str]:
        names = self._composition.state_names
        return dict(zip(self.controller.sequencers, names[1:]))

    @property
    def flags(self) -> set[str]:
        return self._composition.flags

    @property
    def internal(self) -> set[str]:
        return self._composition.internal

    @property
    def go_consumed(self) -> set[str]:
        """Sequencers that already left idle in this activation."""
        return {resource
                for resource, consumed in zip(self.controller.sequencers,
                                              self._composition.consumed[1:])
                if consumed}

    @property
    def actions_log(self) -> list[tuple[str, ...]]:
        return self._composition.actions_log

    @property
    def system_done(self) -> bool:
        return self.phase_state == PHASE_DONE_STATE

    def configuration(self) -> tuple:
        """Hashable snapshot of the composite configuration."""
        return self._composition.configuration()

    # ------------------------------------------------------------------
    def cycle(self, unit_signals: set[str] | None = None,
              external: set[str] | None = None) -> list[str]:
        """One clock edge.  ``unit_signals`` are the done pulses of the
        processing units this cycle; ``external`` feeds e.g. ``restart``.
        Returns the externally visible commands issued this cycle."""
        return self._composition.cycle(pulses=unit_signals, held=external)

    def run(self, respond_done, max_cycles: int = 100_000) -> list[str]:
        """Closed-loop run: ``respond_done(started_nodes)`` maps the set
        of nodes started so far to the done pulses of the next cycle
        (the ideal-environment hook used by tests)."""
        started: list[str] = []
        pending: set[str] = set()
        all_actions: list[str] = []
        for _ in range(max_cycles):
            actions = self.cycle(pending)
            all_actions.extend(actions)
            newly = [a[len("start_"):] for a in actions
                     if a.startswith("start_")]
            started.extend(newly)
            pending = respond_done(newly)
            if self.system_done:
                break
        return all_actions


def synthesize_system_controller(stg: Stg,
                                 name: str = "system_controller",
                                 minimize: bool = True
                                 ) -> SystemController:
    """Derive the communicating controller composition from an STG.

    With ``minimize`` (the default) every projected FSM runs through
    the kernel minimizer before shipping; the pre-minimization state
    counts are kept on the controller for
    :meth:`SystemController.stats`.
    """
    resources = sorted({s.resource for s in stg.states
                        if s.resource is not None})
    if not resources:
        raise StgError("STG mentions no resources; nothing to control")

    sequencers = {r: _sequencer(stg, r) for r in resources}

    phase = Fsm("phase")
    phase.add_state("reset")
    phase.add_state("run")
    phase.add_state(PHASE_DONE_STATE)
    reset_actions = tuple(f"reset_{r}" for r in resources) + ("clear_flags",)
    phase.add_transition("reset", "run", actions=reset_actions + ("go",))
    phase.add_transition(
        "run", PHASE_DONE_STATE,
        conditions=tuple(f"phase_done_{r}" for r in resources),
        actions=("system_done",))
    phase.add_transition(PHASE_DONE_STATE, "reset", conditions=("restart",))

    unminimized: dict[str, int] = {}
    if minimize:
        unminimized = {f.name: len(f.states)
                       for f in [phase] + list(sequencers.values())}
        phase = phase.minimize()
        sequencers = {r: f.minimize() for r, f in sequencers.items()}

    done_flags = tuple(sorted({s.node for s in stg.states
                               if s.node is not None}))
    controller = SystemController(name, phase, sequencers, done_flags,
                                  unminimized)

    for fsm in controller.fsms:
        problems = fsm.validate()
        if problems:
            raise StgError(f"synthesized FSM {fsm.name!r} invalid: "
                           + "; ".join(problems))
    return controller
