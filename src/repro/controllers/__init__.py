"""Controller synthesis: FSM core, system/datapath/IO controllers, arbiters."""

from .fsm import Fsm, FsmError, FsmTransition, encode_states
from .system_controller import (ControllerHarness, SystemController,
                                controller_composition,
                                synthesize_system_controller)
from .verify import (DEFAULT_MAX_PRODUCT_STATES, CompositionCheck,
                     verify_composition)
from .guards import (harvest_care_sets, simplify_controller_guards,
                     simplify_fsm_conditions)
from .datapath_controller import (DatapathController,
                                  synthesize_datapath_controller)
from .io_controller import IoController, synthesize_io_controller
from .bus_arbiter import Arbiter, FixedPriorityArbiter, RoundRobinArbiter

__all__ = [
    "Fsm", "FsmError", "FsmTransition", "encode_states",
    "ControllerHarness", "SystemController", "controller_composition",
    "synthesize_system_controller",
    "CompositionCheck", "verify_composition", "DEFAULT_MAX_PRODUCT_STATES",
    "harvest_care_sets", "simplify_controller_guards",
    "simplify_fsm_conditions",
    "DatapathController", "synthesize_datapath_controller", "IoController",
    "synthesize_io_controller", "Arbiter", "FixedPriorityArbiter",
    "RoundRobinArbiter",
]
