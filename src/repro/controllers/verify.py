"""Verified composition: product-of-controllers ≡ minimized STG.

The paper's central correctness claim is that the *composition* of
communicating controllers (phase FSM x per-resource sequencers, talking
over ``go`` / ``phase_done_*`` / the done-flag registers) implements
exactly the scheduled behaviour the STG specifies.  This module checks
that claim for every synthesized design:

Both sides run in closed loop against the same family of deterministic
environments (unit latencies drawn per (environment, node), from the
ideal one-cycle responder to staggered multi-cycle ones), and their
observable behaviour must agree:

* both complete their activation (global DONE reached / phase ``done``);
* the **per-resource start sequences** are identical -- interleaving
  across concurrent units is not observable, the projection onto each
  unit is;
* the **action multisets** are identical (the controller adds only its
  ``system_done`` completion strobe);
* every data dependency is respected on both sides (producer started
  before consumer), when the task graph is available.

The check is exposed to the flow as the ``verify`` pipeline stage
(fingerprint-cached like every other stage) and surfaces in
``FlowResult.composition_check``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..stg.interp import StgExecutor
from ..stg.states import Stg
from .system_controller import ControllerHarness, SystemController

__all__ = ["CompositionCheck", "verify_composition"]

_START = "start_"
_DONE = "done_"
#: Controller-only strobes that have no STG counterpart.
_CONTROLLER_ONLY = ("system_done",)


@dataclass(frozen=True)
class CompositionCheck:
    """Outcome of one composed-controller vs. STG equivalence check."""

    equivalent: bool
    environments: int
    starts_checked: int
    actions_checked: int
    composite_configurations: int
    mismatches: tuple[str, ...] = ()

    def summary(self) -> dict:
        return {
            "equivalent": self.equivalent,
            "environments": self.environments,
            "starts_checked": self.starts_checked,
            "actions_checked": self.actions_checked,
            "composite_configurations": self.composite_configurations,
            "mismatches": list(self.mismatches),
        }


def _latency_of(environment: int, node: str) -> int:
    """Deterministic unit latency for (environment, node).

    Environment 0 is the ideal one-cycle responder; later environments
    stagger completions so the two sides are exercised under skewed
    interleavings, not just the lockstep one.
    """
    if environment == 0:
        return 1
    rng = random.Random(f"verify-composition:{environment}:{node}")
    return rng.randint(1, 1 + 2 * environment)


def _drive(step, done, stalled, environment: int,
           max_cycles: int) -> tuple[bool, list[str]]:
    """One closed-loop environment driver for both sides of the check.

    Per cycle: deliver the done pulses that fell due, call ``step`` with
    them, schedule a latency countdown for every ``start_*`` it emits.
    ``stalled(busy)`` decides when a quiet system counts as deadlocked
    (the STG executor stalls immediately, the cycle-stepped harness is
    allowed a few idle hand-off cycles).  Sharing this loop guarantees
    the STG and the controller composition are judged under *identical*
    environments.
    """
    pending: dict[str, int] = {}
    actions: list[str] = []
    for _ in range(max_cycles):
        due = {node for node, left in pending.items() if left <= 0}
        for node in due:
            del pending[node]
        emitted = step({_DONE + node for node in due})
        actions.extend(emitted)
        for action in emitted:
            if action.startswith(_START):
                node = action[len(_START):]
                pending[node] = _latency_of(environment, node)
        if done():
            return True, actions
        if stalled(bool(emitted or pending or due)):
            return False, actions
        for node in pending:
            pending[node] -= 1
    return done(), actions


def _run_stg(stg: Stg, environment: int,
             max_steps: int) -> tuple[bool, list[str]]:
    """Closed-loop STG execution; returns (completed, flat actions)."""
    executor = StgExecutor(stg)
    return _drive(executor.step, lambda: executor.done,
                  lambda busy: not busy, environment, max_steps)


def _run_controller(controller: SystemController, environment: int,
                    max_cycles: int) -> tuple[bool, list[str], int]:
    """Closed-loop harness execution; returns (completed, actions,
    distinct composite configurations visited)."""
    harness = ControllerHarness(controller)
    configurations = {harness.configuration()}
    idle_cycles = 0

    def step(signals):
        emitted = harness.cycle(signals)
        configurations.add(harness.configuration())
        return emitted

    def stalled(busy):
        nonlocal idle_cycles
        idle_cycles = 0 if busy else idle_cycles + 1
        return idle_cycles > 2

    completed, actions = _drive(step, lambda: harness.system_done,
                                stalled, environment, max_cycles)
    return completed, actions, len(configurations)


def _starts_by_resource(actions: list[str],
                        resource_of: dict[str, str]) -> dict[str, list[str]]:
    projected: dict[str, list[str]] = {}
    for action in actions:
        if not action.startswith(_START):
            continue
        node = action[len(_START):]
        projected.setdefault(resource_of.get(node, "?"), []).append(node)
    return projected


def _node_resources(controller: SystemController) -> dict[str, str]:
    """node -> resource, read off the sequencers' start actions."""
    resource_of: dict[str, str] = {}
    for resource, sequencer in controller.sequencers.items():
        for signal in sequencer.outputs:
            if signal.startswith(_START):
                resource_of[signal[len(_START):]] = resource
    return resource_of


def verify_composition(stg: Stg, controller: SystemController,
                       graph=None, environments: int = 3,
                       max_cycles: int = 100_000) -> CompositionCheck:
    """Check the communicating-controller composition against ``stg``.

    ``graph`` (a :class:`~repro.graph.taskgraph.TaskGraph`) additionally
    enables the data-dependency order check on both traces.
    """
    resource_of = _node_resources(controller)
    mismatches: list[str] = []
    starts_checked = 0
    actions_checked = 0
    configurations = 0

    for environment in range(environments):
        stg_done, stg_actions = _run_stg(stg, environment, max_cycles)
        ctl_done, ctl_actions, n_configs = _run_controller(
            controller, environment, max_cycles)
        configurations = max(configurations, n_configs)

        if not stg_done:
            mismatches.append(f"env {environment}: STG never reached its "
                              f"global DONE state")
        if not ctl_done:
            mismatches.append(f"env {environment}: controller composition "
                              f"never reached phase 'done'")
        if not (stg_done and ctl_done):
            continue

        stg_starts = _starts_by_resource(stg_actions, resource_of)
        ctl_starts = _starts_by_resource(ctl_actions, resource_of)
        if stg_starts != ctl_starts:
            mismatches.append(
                f"env {environment}: per-resource start sequences differ: "
                f"STG {stg_starts} vs controllers {ctl_starts}")
        starts_checked += sum(len(v) for v in stg_starts.values())

        comparable = [a for a in ctl_actions if a not in _CONTROLLER_ONLY]
        if sorted(comparable) != sorted(stg_actions):
            extra = sorted(set(comparable) ^ set(stg_actions))
            mismatches.append(
                f"env {environment}: action multisets differ "
                f"(symmetric difference {extra})")
        actions_checked += len(stg_actions)

        if graph is not None:
            for label, actions in (("STG", stg_actions),
                                   ("controllers", ctl_actions)):
                starts = [a[len(_START):] for a in actions
                          if a.startswith(_START)]
                position = {node: i for i, node in enumerate(starts)}
                for edge in graph.edges:
                    dst_pos = position.get(edge.dst)
                    if dst_pos is None:
                        continue  # consumer never ran: caught by the
                        # multiset/start-sequence comparison above
                    src_pos = position.get(edge.src)
                    if src_pos is None or src_pos >= dst_pos:
                        mismatches.append(
                            f"env {environment}: {label} trace starts "
                            f"{edge.dst!r} before its producer "
                            f"{edge.src!r}")

    return CompositionCheck(
        equivalent=not mismatches,
        environments=environments,
        starts_checked=starts_checked,
        actions_checked=actions_checked,
        composite_configurations=configurations,
        mismatches=tuple(mismatches))
