"""Verified composition: product-of-controllers ≡ minimized STG.

The paper's central correctness claim is that the *composition* of
communicating controllers (phase FSM x per-resource sequencers, talking
over ``go`` / ``phase_done_*`` / the done-flag registers) implements
exactly the scheduled behaviour the STG specifies.  This module checks
that claim for every synthesized design with a **tiered strategy**:

**Symbolic tier (default exhaustive tier)**.  Both sides are explored
as :class:`~repro.automata.LazyStepSystem` step systems under the
*admissible environment closure*: per state, the environment may stay
silent, deliver the done pulse of any in-flight node (started,
completion not yet reported), or -- once the activation completed --
pulse ``restart``.  Nothing automaton-shaped is materialized and there
is **no state bound**: equivalence is decided per observable class by
the determinized τ-closed pair fixpoint of
:func:`repro.automata.symbolic_trace_equivalence` (weak bisimilarity
coincides with weak trace equivalence on these determinate systems --
see :mod:`repro.automata.symbolic`), the reachable sets live as BDD
characteristic functions, and on designs small enough for the explicit
oracle the per-letter partitioned transition-relation BDDs are
re-imaged to the same fixpoint as a cross-check of the relational
machinery (``docs/SYMBOLIC_VERIFY.md``).

**Explicit tier -- materialized weak bisimulation** (the cross-check
oracle, and ``strategy="exhaustive"``).  The controller side is
:func:`repro.automata.synchronous_product` over the exact harness
composition; the STG side is the token executor explored through the
same :func:`repro.automata.reachable_automaton` materializer (both
bounded by ``max_states``).  The two automata are compared by **weak
bisimulation** (:func:`repro.automata.weak_bisimilar` -- kernel
partition refinement on the τ-saturated disjoint union), projected per
observable class.  Under ``strategy="auto"`` this tier re-proves every
design whose step systems stay within ``ORACLE_MAX_STATES``, and any
verdict disagreement with the symbolic tier is itself a mismatch:

* one projection per processing unit, keeping that unit's commands
  (its reads/starts/writes and its reset) -- interleaving *across*
  concurrent units is not observable, the per-unit command order is;
* one projection per remaining external signal.

Because the admissible closure branches over *every* environment
decision and the ``restart`` edge loops the product back through the
reset phase, a passing exhaustive tier (symbolic or explicit) proves
trace equivalence for **all** admissible environments and **all**
stream lengths of back-to-back activations -- flag-register clearing,
consume-once ``go`` re-arming and the flush of the internal latches
included.  (Simultaneous done
pulses are covered by the single-pulse alphabet: the flag registers
latch-and-hold, so delivering pulses in consecutive cycles reaches the
same configurations.)  Data-dependency order on the *controller* side
needs no separate check: a controller that starts a consumer without
its producer's done flag diverges from the STG under the environment
that withholds that pulse.  The STG's own traces are still
sanity-checked against the task graph -- bisimulation cannot see a
schedule bug both sides mirror faithfully.

**Sampled tier -- environment sampling** (fallback, recorded in
``CompositionCheck.fallback_reason``).  When an exhaustive tier bails
out (``strategy="auto"`` only falls back when the symbolic tier's
determinacy contract is violated), both sides run in closed loop against a family
of deterministic environments (unit latencies drawn per (environment,
node)) for ``activations`` back-to-back activations through the
restart path, and their observable behaviour must agree per
activation: identical per-resource start sequences, identical action
multisets (compared as multisets -- equal sets with different
multiplicities are a mismatch), and intact data-dependency order
anchored on each node's *first* start per activation.

``CompositionCheck.tier`` records which tier produced the verdict.
The check is exposed to the flow as the ``verify`` pipeline stage
(fingerprint-cached like every other stage) and surfaces in
``FlowResult.composition_check``.
"""

from __future__ import annotations

import random
import threading
from collections import Counter, OrderedDict
from dataclasses import dataclass

from ..automata import (AutomataError, LazyStepSystem,
                        SynchronousComposition, TokenExecutor,
                        symbolic_trace_equivalence, weak_bisimilar)
from ..automata.product import (ProductEnvironment, composition_stepper,
                                reachable_automaton, synchronous_product)
from ..obs import span as obs_span
from ..stg.interp import StgExecutor
from ..stg.states import StateKind, Stg
from .system_controller import (PHASE_DONE_STATE, ControllerHarness,
                                SystemController, controller_composition)

__all__ = ["CompositionCheck", "verify_composition",
           "controller_product_automaton", "controller_step_system",
           "stg_step_automaton", "stg_step_system",
           "DEFAULT_MAX_PRODUCT_STATES", "ORACLE_MAX_STATES"]

_START = "start_"
_DONE = "done_"
_RESTART = "restart"
#: Controller-only strobes that have no STG counterpart.
_CONTROLLER_ONLY = ("system_done",)

#: Largest reachable product (per side) the *explicit* bisimulation
#: tier attempts.  Only that tier materializes automata, so only it is
#: bounded: the default symbolic tier explores lazily and proves
#: designs of any size.  Calibrated on the bench suite: the 80-node
#: scale graph (~2500 composite states) proves explicitly in a few
#: seconds, so every pre-scale suite design fits the oracle bound.
DEFAULT_MAX_PRODUCT_STATES = 4000

#: Under ``strategy="auto"``, designs whose step systems both stay
#: within this many states are additionally re-proved by the explicit
#: bisimulation tier (and the symbolic tier's relational BDD image
#: iteration is cross-checked against the enumerated reachable set).
#: Deliberately below the suite's largest design: the oracle exists to
#: keep the two tiers honest against each other on the broad population
#: of small designs, not to re-pay the explicit cost on the long poles
#: the symbolic tier was built to retire.
ORACLE_MAX_STATES = 1200


@dataclass(frozen=True)
class CompositionCheck:
    """Outcome of one composed-controller vs. STG equivalence check.

    ``tier`` is ``"symbolic"`` (exhaustive and unbounded: every
    admissible environment, every stream length, lazy step systems +
    BDD fixpoints), ``"bisimulation"`` (exhaustive via the explicit
    materialized product, bounded by ``max_states``) or ``"sampled"``
    (deterministic environment family, ``activations`` streamed
    activations each).  ``fallback_reason`` records why an exhaustive
    tier was skipped when the sampled tier produced the verdict;
    ``oracle`` records the explicit cross-check verdict when the
    symbolic tier ran it.
    """

    equivalent: bool
    tier: str
    environments: int = 0
    activations: int = 1
    starts_checked: int = 0
    actions_checked: int = 0
    composite_configurations: int = 0
    #: Exhaustive tiers: reachable step-system/automaton sizes and the
    #: number of per-observable-class projections checked.
    product_states: int = 0
    reference_states: int = 0
    projections_checked: int = 0
    #: Symbolic tier observability: determinized set pairs explored by
    #: the per-class fixpoints, BDD image iterations of the relational
    #: cross-check, and the owning engine's node / unique-table /
    #: ite-hit-rate counters -- the numbers that make a verify
    #: regression diagnosable from the bench JSON alone.
    pairs_checked: int = 0
    image_iterations: int = 0
    bdd_nodes: int = 0
    bdd_unique_table: int = 0
    bdd_ite_hit_rate: float = 0.0
    #: ``"agrees"`` / ``"disagrees"`` when the explicit oracle re-proved
    #: the design under ``strategy="auto"``, None when it did not run.
    oracle: str | None = None
    fallback_reason: str | None = None
    mismatches: tuple[str, ...] = ()

    def summary(self) -> dict:
        return {
            "equivalent": self.equivalent,
            "tier": self.tier,
            "environments": self.environments,
            "activations": self.activations,
            "starts_checked": self.starts_checked,
            "actions_checked": self.actions_checked,
            "composite_configurations": self.composite_configurations,
            "product_states": self.product_states,
            "reference_states": self.reference_states,
            "projections_checked": self.projections_checked,
            "pairs_checked": self.pairs_checked,
            "image_iterations": self.image_iterations,
            "bdd_nodes": self.bdd_nodes,
            "bdd_unique_table": self.bdd_unique_table,
            "bdd_ite_hit_rate": self.bdd_ite_hit_rate,
            "oracle": self.oracle,
            "fallback_reason": self.fallback_reason,
            "mismatches": list(self.mismatches),
        }


# ----------------------------------------------------------------------
# tier 1: exhaustive weak bisimulation under the admissible closure
# ----------------------------------------------------------------------
class _AdmissibleEnvironment(ProductEnvironment):
    """All environment behaviours the processing units can exhibit.

    The environment state is the set of in-flight nodes (``start_*``
    seen, ``done_*`` not yet delivered).  Admissible letters: silence,
    the done pulse of any in-flight node, and -- once ``completed``
    holds for the configuration -- the ``restart`` command, which loops
    streamed activations into the reachable product.
    """

    def __init__(self, completed) -> None:
        super().__init__()
        self._completed = completed

    def initial_state(self):
        return frozenset()

    def letters(self, env_state, config):
        letters = [frozenset()]
        letters.extend(frozenset({_DONE + node})
                       for node in sorted(env_state))
        if self._completed(config):
            letters.append(frozenset({_RESTART}))
        return letters

    def advance(self, env_state, letter, actions):
        in_flight = set(env_state)
        for action in actions:
            if action.startswith(_START):
                in_flight.add(action[len(_START):])
        for signal in letter:
            if signal.startswith(_DONE):
                in_flight.discard(signal[len(_DONE):])
        return frozenset(in_flight)


#: Fingerprint-keyed memo of materialized products: the verify stage
#: and the guard don't-care harvester both need the same product in one
#: flow run, and the BFS is the most expensive step for large designs.
#: Automatons are immutable, so sharing the instance is safe; the lock
#: keeps lookup/insert/evict atomic under the thread-backend
#: BatchRunner (concurrent CoolFlow jobs hit this cache).
_PRODUCT_CACHE: "OrderedDict[tuple[str, int], object]" = OrderedDict()
_PRODUCT_CACHE_MAX = 8
_PRODUCT_CACHE_LOCK = threading.Lock()


def controller_product_automaton(
        controller: SystemController,
        max_states: int = DEFAULT_MAX_PRODUCT_STATES):
    """The harness composition, materialized under the admissible closure.

    One side of the bisimulation tier, exposed for kernel-level
    inspection: a finite automaton of every configuration the
    communicating controllers can reach under any admissible
    environment, restart loop included.  Results are memoized by
    ``(controller fingerprint, max_states)`` so the verify tier and the
    guard-simplification harvest share one materialization per flow.
    """
    key = (controller.fingerprint(), max_states)
    with _PRODUCT_CACHE_LOCK:
        cached = _PRODUCT_CACHE.get(key)
        if cached is not None:
            _PRODUCT_CACHE.move_to_end(key)
            return cached
    components, config = controller_composition(controller)
    phase = components[0]  # phase-first ordering set by controller_composition

    def completed(config_key: tuple) -> bool:
        states = SynchronousComposition.component_states(config_key)
        return phase.name_of(states[0]) == PHASE_DONE_STATE

    product = synchronous_product(
        components, config,
        environment=_AdmissibleEnvironment(completed),
        held=(_RESTART,), max_states=max_states)
    with _PRODUCT_CACHE_LOCK:
        _PRODUCT_CACHE[key] = product
        while len(_PRODUCT_CACHE) > _PRODUCT_CACHE_MAX:
            _PRODUCT_CACHE.popitem(last=False)
    return product


def stg_step_automaton(stg: Stg,
                       max_states: int = DEFAULT_MAX_PRODUCT_STATES):
    """The STG's token-semantics step automaton under the same closure.

    Steps fire **one round** each (``max_rounds=1``) instead of the
    executor's default run-to-fixpoint: the controller composition
    walks chained STG transitions in consecutive clock cycles, and the
    environment may slip a done pulse between them -- the reference
    must expose those intermediate configurations or harmless
    input-vs-pending-output interleavings would read as mismatches.
    ``restart`` resets the executor -- a fresh activation -- so the
    reference automaton contains the same restart loop as the product.
    """
    automaton = stg.to_automaton()
    final = frozenset(automaton.index_of(s.name)
                      for s in stg.states_of_kind(StateKind.GLOBAL_DONE))
    executor = TokenExecutor(automaton, final=final)
    symbols = automaton.symbols

    def completed(snapshot: tuple) -> bool:
        return executor.done_in(snapshot)

    def step(snapshot: tuple, letter: frozenset):
        if _RESTART in letter:
            executor.reset()
            return executor.snapshot(), ()
        executor.restore(snapshot)
        emitted = executor.step(symbols.ids_of(letter), max_rounds=1)
        return executor.snapshot(), symbols.names_of(emitted)

    return reachable_automaton(
        f"{stg.name}_steps", executor.snapshot(), step,
        environment=_AdmissibleEnvironment(completed),
        label_of=lambda snapshot, index: f"q{index}",
        max_states=max_states)


# ----------------------------------------------------------------------
# lazy step systems (the symbolic tier's unbounded side views)
# ----------------------------------------------------------------------
#: Fingerprint-keyed memo of *fully expanded* controller step systems:
#: the symbolic verify tier and the guard don't-care harvester need the
#: same exploration in one flow run.  Only fully expanded systems are
#: published (expansion drives a single scratch composition, so a
#: half-explored system is not shareable); once expanded they are
#: read-only and therefore safe across the thread-backend BatchRunner.
_STEP_SYSTEM_CACHE: "OrderedDict[str, LazyStepSystem]" = OrderedDict()
_STEP_SYSTEM_CACHE_MAX = 8
_STEP_SYSTEM_CACHE_LOCK = threading.Lock()


def controller_step_system(controller: SystemController) -> LazyStepSystem:
    """The harness composition as a fully expanded lazy step system.

    The symbolic twin of :func:`controller_product_automaton`: same
    scratch composition, same admissible closure, same state identity
    and discovery order -- but states are dense indices and step rows
    plain tuples, with no ``max_states`` bound and no automaton
    materialization.  Memoized by controller fingerprint.
    """
    key = controller.fingerprint()
    with _STEP_SYSTEM_CACHE_LOCK:
        cached = _STEP_SYSTEM_CACHE.get(key)
        if cached is not None:
            _STEP_SYSTEM_CACHE.move_to_end(key)
            return cached
    components, config = controller_composition(controller)
    phase = components[0]  # phase-first ordering set by controller_composition

    def completed(config_key: tuple) -> bool:
        states = SynchronousComposition.component_states(config_key)
        return phase.name_of(states[0]) == PHASE_DONE_STATE

    initial, step = composition_stepper(components, config,
                                        held=(_RESTART,))
    system = LazyStepSystem("controller_composition", initial, step,
                            _AdmissibleEnvironment(completed))
    system.expand_all()
    with _STEP_SYSTEM_CACHE_LOCK:
        _STEP_SYSTEM_CACHE[key] = system
        while len(_STEP_SYSTEM_CACHE) > _STEP_SYSTEM_CACHE_MAX:
            _STEP_SYSTEM_CACHE.popitem(last=False)
    return system


def stg_step_system(stg: Stg) -> LazyStepSystem:
    """The STG's token-semantics step system under the same closure.

    The symbolic twin of :func:`stg_step_automaton` -- one-round steps,
    ``restart`` resetting the executor -- as an unbounded lazy step
    system.  Not cached: the verifier expands it exactly once per
    check, and the backing executor makes a half-shared system unsafe.
    """
    automaton = stg.to_automaton()
    final = frozenset(automaton.index_of(s.name)
                      for s in stg.states_of_kind(StateKind.GLOBAL_DONE))
    executor = TokenExecutor(automaton, final=final)
    symbols = automaton.symbols

    def completed(snapshot: tuple) -> bool:
        return executor.done_in(snapshot)

    def step(snapshot: tuple, letter: frozenset):
        if _RESTART in letter:
            executor.reset()
            return executor.snapshot(), ()
        executor.restore(snapshot)
        emitted = executor.step(symbols.ids_of(letter), max_rounds=1)
        return executor.snapshot(), tuple(symbols.names_of(emitted))

    return LazyStepSystem(f"{stg.name}_steps", executor.snapshot(), step,
                          _AdmissibleEnvironment(completed))


def _has_restart_edge(automaton) -> bool:
    """Does any reachable configuration admit the restart command?"""
    restart = automaton.symbols.id_of(_RESTART)
    return restart is not None and any(restart in t.conditions
                                       for t in automaton.transitions)


def _automaton_alphabet(automata) -> tuple[set[str], list[frozenset[str]]]:
    """External actions + co-emission bursts of materialized automata."""
    actions: set[str] = set()
    bursts: list[frozenset[str]] = []
    for automaton in automata:
        symbols = automaton.symbols
        for t in automaton.transitions:
            names = symbols.names_of(t.actions)
            actions.update(names)
            if len(names) > 1:
                bursts.append(frozenset(names))
    return actions, bursts


def _system_alphabet(systems) -> tuple[set[str], list[frozenset[str]]]:
    """External actions + co-emission bursts of expanded step systems."""
    actions: set[str] = set()
    bursts: list[frozenset[str]] = []
    seen: set[tuple] = set()
    for system in systems:
        for _state, _letter, step_actions, _succ in system.iter_rows():
            if not step_actions or step_actions in seen:
                continue
            # rows intern action tuples, so distinct tuples are few
            seen.add(step_actions)
            actions.update(step_actions)
            if len(step_actions) > 1:
                bursts.append(frozenset(step_actions))
    return actions, bursts


def _observable_classes(actions: set[str],
                        bursts: list[frozenset[str]],
                        resource_of: dict[str, str]
                        ) -> list[tuple[str, frozenset[str]]]:
    """Partition the external action alphabet into projection classes.

    The exhaustive tiers compare the two sides once per class, with
    exactly that class observable.  A class is *admissible* when no
    single step of either side emits two of its members -- the kernel
    interns a step's actions in canonical (sorted) order, so two
    same-step observables would be order-indistinguishable and alias.

    Classes are built in two moves:

    * one *seed* class per processing unit holding its ``start_*``
      commands and its ``reset_*`` line -- the order of starts within a
      unit is observable (it is the schedule) and at most one fires per
      step by construction;
    * every remaining signal (the ``read_*``/``write_*`` memory
      commands) is then *packed* into the first class it does not
      conflict with (greedy coloring over the co-emission bursts of
      both sides), opening a fresh class only when every existing one
      clashes.  Packing is sound -- each projection only gets *more*
      observable, so the per-class check is strictly stronger than the
      old one-singleton-per-signal sweep -- and it collapses the
      hundreds of per-signal projections of a large design into a
      handful.  Controller-only strobes are never observable.

    The conflict test is indexed per action (``action -> co-emitted
    partners``) instead of scanning every burst per candidate class:
    on the 80-node scale graph the flat scan was millions of frozenset
    intersections and the single hottest line of the verify stage.
    """
    actions = actions - set(_CONTROLLER_ONLY)
    partners: dict[str, set[str]] = {}
    for burst in bursts:
        burst = burst & actions
        if len(burst) <= 1:
            continue
        for action in burst:
            partners.setdefault(action, set()).update(burst)
    owner: dict[str, str] = {f"reset_{r}": r
                             for r in sorted(set(resource_of.values()))}
    for action in actions:
        if action.startswith(_START):
            owner[action] = resource_of.get(action[len(_START):], "?")
    seeds: dict[str, set[str]] = {}
    loose: list[str] = []
    for action in sorted(actions):
        unit = owner.get(action)
        if unit is not None:
            seeds.setdefault(unit, set()).add(action)
        else:
            loose.append(action)
    classes: list[tuple[str, set[str]]] = sorted(
        (label, members) for label, members in seeds.items())
    empty: set[str] = set()
    for action in loose:
        conflicts = partners.get(action, empty)
        for _label, members in classes:
            if not (conflicts & members):
                members.add(action)
                break
        else:
            classes.append((action, {action}))
    return [(label, frozenset(members)) for label, members in classes]


def _schedule_sanity_mismatches(stg: Stg, graph, environments: int,
                                max_cycles: int,
                                activations: int) -> list[str]:
    """STG-vs-schedule sanity: dependency order of the STG's own traces.

    An equivalence tier proves controller ≡ STG, not STG ≡ schedule: a
    broken STG faithfully mirrored by its controller would still pass,
    so the task-graph dependency order of the STG's own traces is
    checked separately (the controller side is then covered
    transitively by the equivalence verdict).
    """
    if graph is None:
        return []
    mismatches: list[str] = []
    for environment in range(environments):
        stg_done, stg_traces = _run_stg(stg, environment, max_cycles,
                                        activations)
        if not stg_done:
            mismatches.append(
                f"env {environment}: STG never reached its global "
                f"DONE state (activation {len(stg_traces) - 1}, "
                f"schedule sanity)")
        for index, actions in enumerate(stg_traces):
            for src, dst in _dependency_violations(actions, graph.edges):
                mismatches.append(
                    f"env {environment} activation {index}: STG "
                    f"trace starts {dst!r} before its producer "
                    f"{src!r} (schedule sanity)")
    return mismatches


def _system_has_restart(system: LazyStepSystem) -> bool:
    """Does any reachable state of the expanded system admit restart?

    Letters are interned on first use, so the restart letter exists in
    the system's alphabet iff some reachable (completed) configuration
    admitted it -- the lazy twin of :func:`_has_restart_edge`.
    """
    return any(_RESTART in system.letter_of(letter_id)
               for letter_id in range(system.n_letters))


def _verify_symbolic(stg: Stg, controller: SystemController, graph,
                     max_states: int, activations: int,
                     environments: int, max_cycles: int,
                     oracle: bool) -> CompositionCheck:
    """Symbolic tier: unbounded lazy step systems + fixpoint equivalence.

    With ``oracle`` (``strategy="auto"``), designs whose step systems
    fit ``ORACLE_MAX_STATES`` are re-proved by the explicit
    bisimulation tier -- a verdict disagreement is itself a mismatch --
    and the relational BDD image iteration is cross-checked against
    the enumerated reachable sets.  Raises
    :class:`~repro.automata.AutomataError` only when the determinacy
    contract of the pair fixpoint is violated (``strategy="auto"``
    records that as the sampled tier's fallback reason).
    """
    product_system = controller_step_system(controller)
    reference_system = stg_step_system(stg)
    reference_system.expand_all()
    actions, bursts = _system_alphabet((reference_system, product_system))
    classes = _observable_classes(actions, bursts,
                                  _node_resources(controller))
    small = oracle and max(len(reference_system),
                           len(product_system)) <= ORACLE_MAX_STATES
    result = symbolic_trace_equivalence(reference_system, product_system,
                                        classes, relational_check=small)

    mismatches: list[str] = []
    for verdict in result.verdicts:
        if not verdict.equivalent:
            mismatches.append(
                f"projection {verdict.label!r}: STG and controller "
                f"composition are not weakly trace-equivalent "
                f"({verdict.explain('the STG', 'the controller composition')})")

    # completion: restart is admissible exactly at completed
    # configurations, so an interned restart letter *is* the proof that
    # the activation can finish; this catches the *mirrored* deadlock
    # trace equivalence is blind to (see _verify_exhaustive).
    completion_ok = True
    for system, what in ((reference_system, "STG"),
                         (product_system, "controller composition")):
        if not _system_has_restart(system):
            completion_ok = False
            mismatches.append(
                f"{what} never completes an activation under any "
                f"admissible environment (no restart-admissible "
                f"configuration reached)")

    mismatches.extend(_schedule_sanity_mismatches(stg, graph, environments,
                                                  max_cycles, activations))

    oracle_verdict: str | None = None
    if small:
        symbolic_core = result.equivalent and completion_ok
        try:
            explicit = _verify_exhaustive(stg, controller, None, max_states,
                                          activations, environments,
                                          max_cycles)
        except AutomataError:
            # the caller capped max_states below the oracle threshold:
            # the symbolic verdict stands alone, exactly as on designs
            # past the threshold
            explicit = None
        if explicit is not None:
            if explicit.equivalent == symbolic_core:
                oracle_verdict = "agrees"
            else:
                oracle_verdict = "disagrees"
                mismatches.append(
                    f"explicit bisimulation oracle disagrees with the "
                    f"symbolic tier (explicit: "
                    f"{'equivalent' if explicit.equivalent else 'inequivalent'}"
                    f", symbolic: "
                    f"{'equivalent' if symbolic_core else 'inequivalent'}; "
                    f"explicit mismatches: "
                    f"{'; '.join(explicit.mismatches) or 'none'})")

    starts = 0
    actions_total = 0
    for _state, _letter, step_actions, _succ in reference_system.iter_rows():
        actions_total += len(step_actions)
        starts += sum(1 for action in step_actions
                      if action.startswith(_START))
    return CompositionCheck(
        equivalent=not mismatches,
        tier="symbolic",
        environments=0,
        activations=activations,
        starts_checked=starts,
        actions_checked=actions_total,
        composite_configurations=len(product_system),
        product_states=len(product_system),
        reference_states=len(reference_system),
        projections_checked=len(classes),
        pairs_checked=result.pairs_checked,
        image_iterations=result.image_iterations,
        bdd_nodes=result.bdd_stats["nodes"],
        bdd_unique_table=result.bdd_stats["unique_table"],
        bdd_ite_hit_rate=result.bdd_stats["ite_hit_rate"],
        oracle=oracle_verdict,
        mismatches=tuple(mismatches))


def _verify_exhaustive(stg: Stg, controller: SystemController, graph,
                       max_states: int, activations: int,
                       environments: int, max_cycles: int
                       ) -> CompositionCheck:
    """Bisimulation tier; raises AutomataError when the product is too big."""
    product = controller_product_automaton(controller, max_states)
    reference = stg_step_automaton(stg, max_states)
    actions, bursts = _automaton_alphabet((reference, product))
    classes = _observable_classes(actions, bursts,
                                  _node_resources(controller))
    mismatches: list[str] = []
    for label, observable in classes:
        result = weak_bisimilar(reference, product, observable=observable)
        if not result.bisimilar:
            mismatches.append(
                f"projection {label!r}: STG and controller composition "
                f"are not weakly bisimilar ({result.explain()})")

    # completion: restart is admissible exactly at completed
    # configurations, so a reachable restart edge *is* the proof that
    # the activation can finish.  A one-sided deadlock already fails
    # the projections (the ?restart letter is visible on one side
    # only); this catches the *mirrored* deadlock bisimulation is
    # blind to.
    for automaton, what in ((reference, "STG"),
                            (product, "controller composition")):
        if not _has_restart_edge(automaton):
            mismatches.append(
                f"{what} never completes an activation under any "
                f"admissible environment (no restart-admissible "
                f"configuration reached)")

    mismatches.extend(_schedule_sanity_mismatches(stg, graph, environments,
                                                  max_cycles, activations))

    symbols = reference.symbols
    starts = sum(1 for t in reference.transitions
                 for a in symbols.names_of(t.actions)
                 if a.startswith(_START))
    actions_total = sum(len(t.actions) for t in reference.transitions)
    return CompositionCheck(
        equivalent=not mismatches,
        tier="bisimulation",
        environments=0,
        activations=activations,
        starts_checked=starts,
        actions_checked=actions_total,
        composite_configurations=len(product),
        product_states=len(product),
        reference_states=len(reference),
        projections_checked=len(classes),
        mismatches=tuple(mismatches))


# ----------------------------------------------------------------------
# tier 2: deterministic-environment sampling with streamed activations
# ----------------------------------------------------------------------
def _latency_of(environment: int, node: str) -> int:
    """Deterministic unit latency for (environment, node).

    Environment 0 is the ideal one-cycle responder; later environments
    stagger completions so the two sides are exercised under skewed
    interleavings, not just the lockstep one.
    """
    if environment == 0:
        return 1
    rng = random.Random(f"verify-composition:{environment}:{node}")
    return rng.randint(1, 1 + 2 * environment)


def _drive(step, done, stalled, restart, environment: int,
           max_cycles: int, activations: int
           ) -> tuple[bool, list[list[str]]]:
    """One closed-loop environment driver for both sides of the check.

    Per cycle: deliver the done pulses that fell due, call ``step`` with
    them, schedule a latency countdown for every ``start_*`` it emits.
    ``stalled(busy)`` decides when a quiet system counts as deadlocked
    (the STG executor stalls immediately, the cycle-stepped harness is
    allowed a few idle hand-off cycles).  After each completed
    activation, ``restart()`` re-arms the system for the next block --
    the streaming path of :meth:`repro.sim.CoSimulation.run_stream` --
    and anything it emits *during the restart cycle* is credited to the
    next activation's trace (a correct composition emits nothing
    there, so a spurious command on the restart edge must not fall
    into a blind spot between traces).  Sharing this loop guarantees
    the STG and the controller composition are judged under *identical*
    environments; returns one action list per activation.
    """
    traces: list[list[str]] = []
    for activation in range(activations):
        carried = restart() if activation else None
        pending: dict[str, int] = {}
        actions: list[str] = list(carried or ())
        traces.append(actions)
        completed = False
        for _ in range(max_cycles):
            due = {node for node, left in pending.items() if left <= 0}
            for node in due:
                del pending[node]
            emitted = step({_DONE + node for node in due})
            actions.extend(emitted)
            for action in emitted:
                if action.startswith(_START):
                    node = action[len(_START):]
                    pending[node] = _latency_of(environment, node)
            if done():
                completed = True
                break
            if stalled(bool(emitted or pending or due)):
                return False, traces
            for node in pending:
                pending[node] -= 1
        if not completed and not done():
            return False, traces
    return True, traces


def _run_stg(stg: Stg, environment: int, max_steps: int,
             activations: int) -> tuple[bool, list[list[str]]]:
    """Closed-loop STG execution; one flat action list per activation."""
    executor = StgExecutor(stg)
    return _drive(executor.step, lambda: executor.done,
                  lambda busy: not busy, executor.reset,
                  environment, max_steps, activations)


def _run_controller(controller: SystemController, environment: int,
                    max_cycles: int, activations: int
                    ) -> tuple[bool, list[list[str]], int]:
    """Closed-loop harness execution; returns (completed, per-activation
    actions, distinct composite configurations visited)."""
    harness = ControllerHarness(controller)
    configurations = {harness.configuration()}
    idle_cycles = 0

    def step(signals):
        emitted = harness.cycle(signals)
        configurations.add(harness.configuration())
        return emitted

    def stalled(busy):
        nonlocal idle_cycles
        idle_cycles = 0 if busy else idle_cycles + 1
        return idle_cycles > 2

    def restart():
        nonlocal idle_cycles
        idle_cycles = 0
        emitted = harness.cycle(external={_RESTART})
        configurations.add(harness.configuration())
        return emitted

    completed, traces = _drive(step, lambda: harness.system_done,
                               stalled, restart, environment, max_cycles,
                               activations)
    return completed, traces, len(configurations)


def _starts_by_resource(actions: list[str],
                        resource_of: dict[str, str]) -> dict[str, list[str]]:
    projected: dict[str, list[str]] = {}
    for action in actions:
        if not action.startswith(_START):
            continue
        node = action[len(_START):]
        projected.setdefault(resource_of.get(node, "?"), []).append(node)
    return projected


def _node_resources(controller: SystemController) -> dict[str, str]:
    """node -> resource, read off the sequencers' start actions."""
    resource_of: dict[str, str] = {}
    for resource, sequencer in controller.sequencers.items():
        for signal in sequencer.outputs:
            if signal.startswith(_START):
                resource_of[signal[len(_START):]] = resource
    return resource_of


def _dependency_violations(actions: list[str],
                           edges) -> list[tuple[str, str]]:
    """Data-dependency violations in one activation's action trace.

    Every node is anchored on the *first* ``start_*`` it gets in this
    activation: a dict-overwrite anchor would keep the last start and
    misjudge traces where a node starts more than once (the replayed
    starts of a streamed run, or a double-start bug).  Returns the
    ``(producer, consumer)`` pairs where the consumer started without,
    or before, its producer.
    """
    starts = [a[len(_START):] for a in actions if a.startswith(_START)]
    position: dict[str, int] = {}
    for rank, node in enumerate(starts):
        position.setdefault(node, rank)
    violations: list[tuple[str, str]] = []
    for edge in edges:
        dst_pos = position.get(edge.dst)
        if dst_pos is None:
            continue  # consumer never ran: caught by the
            # multiset/start-sequence comparison
        src_pos = position.get(edge.src)
        if src_pos is None or src_pos >= dst_pos:
            violations.append((edge.src, edge.dst))
    return violations


def _multiset_diff(reference: list[str], candidate: list[str]) -> str:
    """Signed count deltas between two action multisets.

    A plain set symmetric difference hides the case of equal action
    *sets* with different multiplicities (e.g. a double start), so the
    diff is taken on :class:`collections.Counter` views and reported
    with counts.
    """
    delta = Counter(candidate)
    delta.subtract(Counter(reference))
    surplus = {action: count for action, count in sorted(delta.items())
               if count > 0}
    missing = {action: -count for action, count in sorted(delta.items())
               if count < 0}
    return f"controller surplus {surplus}, controller missing {missing}"


def _verify_sampled(stg: Stg, controller: SystemController, graph,
                    environments: int, max_cycles: int, activations: int,
                    fallback_reason: str | None) -> CompositionCheck:
    resource_of = _node_resources(controller)
    mismatches: list[str] = []
    starts_checked = 0
    actions_checked = 0
    configurations = 0

    for environment in range(environments):
        stg_done, stg_traces = _run_stg(stg, environment, max_cycles,
                                        activations)
        ctl_done, ctl_traces, n_configs = _run_controller(
            controller, environment, max_cycles, activations)
        configurations = max(configurations, n_configs)

        if not stg_done:
            mismatches.append(f"env {environment}: STG never reached its "
                              f"global DONE state "
                              f"(activation {len(stg_traces) - 1})")
        if not ctl_done:
            mismatches.append(f"env {environment}: controller composition "
                              f"never reached phase 'done' "
                              f"(activation {len(ctl_traces) - 1})")
        if not (stg_done and ctl_done):
            continue

        for index, (stg_actions, ctl_actions) in enumerate(
                zip(stg_traces, ctl_traces)):
            where = f"env {environment} activation {index}"
            stg_starts = _starts_by_resource(stg_actions, resource_of)
            ctl_starts = _starts_by_resource(ctl_actions, resource_of)
            if stg_starts != ctl_starts:
                mismatches.append(
                    f"{where}: per-resource start sequences differ: "
                    f"STG {stg_starts} vs controllers {ctl_starts}")
            starts_checked += sum(len(v) for v in stg_starts.values())

            comparable = [a for a in ctl_actions
                          if a not in _CONTROLLER_ONLY]
            if Counter(comparable) != Counter(stg_actions):
                mismatches.append(
                    f"{where}: action multisets differ "
                    f"({_multiset_diff(stg_actions, comparable)})")
            actions_checked += len(stg_actions)

            if graph is not None:
                for label, actions in (("STG", stg_actions),
                                       ("controllers", ctl_actions)):
                    for src, dst in _dependency_violations(actions,
                                                           graph.edges):
                        mismatches.append(
                            f"{where}: {label} trace starts {dst!r} "
                            f"before its producer {src!r}")

    return CompositionCheck(
        equivalent=not mismatches,
        tier="sampled",
        environments=environments,
        activations=activations,
        starts_checked=starts_checked,
        actions_checked=actions_checked,
        composite_configurations=configurations,
        fallback_reason=fallback_reason,
        mismatches=tuple(mismatches))


# ----------------------------------------------------------------------
def verify_composition(stg: Stg, controller: SystemController,
                       graph=None, environments: int = 3,
                       max_cycles: int = 100_000,
                       activations: int = 2,
                       max_states: int = DEFAULT_MAX_PRODUCT_STATES,
                       strategy: str = "auto") -> CompositionCheck:
    """Check the communicating-controller composition against ``stg``.

    ``strategy`` selects the tier: ``"auto"`` (default) runs the
    unbounded symbolic tier, re-proves oracle-sized designs with the
    explicit bisimulation tier, and falls back to environment sampling
    only when the symbolic tier's determinacy contract is violated (the
    fallback reason is recorded on the check); ``"symbolic"`` demands
    the symbolic tier alone (no oracle, raising
    :class:`~repro.automata.AutomataError` instead of falling back);
    ``"exhaustive"`` demands the explicit bisimulation tier (raising
    when the product exceeds ``max_states``); ``"sampled"`` forces the
    sampling tier.  ``max_states`` only bounds the explicit tier -- the
    symbolic tier has no state bound, which is the point of it.

    ``activations`` streams that many back-to-back activations through
    the restart path in the sampled tier (the exhaustive tiers' restart
    loop covers every stream length).  ``graph`` (a
    :class:`~repro.graph.taskgraph.TaskGraph`) additionally enables the
    data-dependency order check: on the sampled traces of both sides in
    the sampled tier, and as an STG-vs-schedule sanity check in the
    exhaustive tiers (where the controller side is covered transitively
    by the equivalence verdict; see the module docstring).
    """
    if strategy not in ("auto", "symbolic", "exhaustive", "sampled"):
        raise ValueError(f"unknown verification strategy {strategy!r}")
    if activations < 1:
        raise ValueError("verification needs at least one activation")
    with obs_span("verify", kind="verify", strategy=strategy) as vspan:
        check = _verify_dispatch(stg, controller, graph, environments,
                                 max_cycles, activations, max_states,
                                 strategy)
        vspan.set("tier", check.tier)
        vspan.set("equivalent", check.equivalent)
        vspan.set("pairs_checked", check.pairs_checked)
        vspan.set("image_iterations", check.image_iterations)
        vspan.set("bdd_nodes", check.bdd_nodes)
        vspan.set("product_states", check.product_states)
        vspan.set("projections_checked", check.projections_checked)
        return check


def _verify_dispatch(stg: Stg, controller: SystemController, graph,
                     environments: int, max_cycles: int, activations: int,
                     max_states: int, strategy: str) -> CompositionCheck:
    """Tier selection and fallback, shared by every caller of
    :func:`verify_composition` (which wraps it in the verify span)."""
    fallback_reason: str | None = None
    if strategy in ("auto", "symbolic"):
        try:
            return _verify_symbolic(stg, controller, graph, max_states,
                                    activations, environments, max_cycles,
                                    oracle=strategy == "auto")
        except AutomataError as exc:
            if strategy == "symbolic":
                raise
            fallback_reason = str(exc)
    elif strategy == "exhaustive":
        return _verify_exhaustive(stg, controller, graph, max_states,
                                  activations, environments, max_cycles)
    return _verify_sampled(stg, controller, graph, environments,
                           max_cycles, activations, fallback_reason)
