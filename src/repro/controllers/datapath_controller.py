"""Data-path controller synthesis.

Paper Section 2: COOL adds "data path controllers to support hardware
sharing".  Every FPGA that hosts more than zero task-graph nodes gets
one controller; the datapath of each node is shared at the operator
level by :mod:`repro.hls`, and this controller dispatches between the
node-level micro-programs:

* ``idle``: waits for a ``start_<node>`` command from the system
  controller;
* ``busy_<node>``: selects the node's datapath configuration, loads the
  cycle counter with the node's latency and holds until ``count_done``;
* back in ``idle`` it pulses ``done_<node>``.

The FSM is an FSMD: the latency counter lives in the datapath (the
``load_count_<n>`` action), keeping the controller's state count
independent of node latencies -- the standard trick that makes shared
datapaths controllable with few states.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.partition import Partition
from .fsm import Fsm

__all__ = ["DatapathController", "synthesize_datapath_controller"]


@dataclass
class DatapathController:
    """One shared-datapath controller for one hardware resource."""

    resource: str
    fsm: Fsm
    #: node -> latency in resource cycles (the counter load values)
    latencies: dict[str, int]

    @property
    def nodes(self) -> list[str]:
        return sorted(self.latencies)

    def stats(self) -> dict:
        return {"resource": self.resource, "nodes": len(self.latencies),
                "states": len(self.fsm.states)}


def synthesize_datapath_controller(partition: Partition, resource: str,
                                   latencies: dict[str, int]
                                   ) -> DatapathController:
    """Build the dispatcher FSM of one hardware resource.

    ``latencies`` maps every node on ``resource`` to its execution
    latency in that resource's clock cycles (estimated before HLS, exact
    after).
    """
    nodes = partition.nodes_on(resource)
    missing = set(nodes) - set(latencies)
    if missing:
        raise ValueError(f"no latency for nodes {sorted(missing)} "
                         f"on {resource!r}")

    fsm = Fsm(f"dpc_{resource}")
    fsm.add_state("idle")
    for node in nodes:
        fsm.add_state(f"busy_{node}",
                      outputs=(f"sel_{node}",))
        fsm.add_transition(
            "idle", f"busy_{node}",
            conditions=(f"start_{node}",),
            actions=(f"load_count_{latencies[node]}", f"sel_{node}"))
        fsm.add_transition(
            f"busy_{node}", "idle",
            conditions=("count_done",),
            actions=(f"done_{node}",))
    return DatapathController(resource, fsm,
                              {n: latencies[n] for n in nodes})
