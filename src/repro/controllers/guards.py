"""Reachability don't-cares for controller guards.

The sequencer FSMs guard every hop on the done flags they need -- but
the flags are *latched*: once a producer finished, its flag stays up
until the reset phase clears it.  Inside the composition many of those
guards are therefore partially redundant: a join that waits on two
producers whose first done is always latched by the time the state is
entered only needs the second literal, and a repeated wait on a flag
the chain already consumed is unconditional.  Which literals are
redundant is exactly a *reachability* question, so this module answers
it from the same materialized product the composition verifier proves
equivalence on:

* :func:`harvest_care_sets` walks every transition of the reachable
  product under the admissible environment closure
  (:func:`repro.controllers.verify.controller_product_automaton`) and
  records, per (FSM, state), every input valuation that component can
  ever see there -- the *care set*; everything else is a reachability
  don't-care.
* :func:`simplify_controller_guards` drops condition literals that are
  constant over the care set (ESPRESSO's *expand* step against an
  explicitly enumerated care set).  Only positive literals are ever
  *removed*, never added or negated, so the result is still a plain
  :class:`~repro.controllers.fsm.Fsm` on the kernel's fast path and
  still monotone in the latched flags.

The simplified controller is behaviourally identical to the original
on every reachable configuration under every admissible environment --
``verify_composition`` re-proves it against the STG in the benchmark
gate -- while its VHDL cascade carries measurably fewer guard
literals.
"""

from __future__ import annotations

from dataclasses import replace

from ..automata import AutomataError, SynchronousComposition
from .fsm import Fsm
from .system_controller import SystemController, controller_composition
from .verify import DEFAULT_MAX_PRODUCT_STATES, controller_step_system

__all__ = ["harvest_care_sets", "simplify_controller_guards",
           "simplify_fsm_conditions"]

#: ``fsm name -> state name -> frozenset of visible input-name sets``.
CareSets = dict


def harvest_care_sets(controller: SystemController,
                      max_states: int = DEFAULT_MAX_PRODUCT_STATES
                      ) -> CareSets:
    """Every input valuation each FSM can see, per state, reachably.

    Walks the step rows of the lazily explored composition
    (:func:`repro.controllers.verify.controller_step_system` -- the
    same exploration the symbolic verify tier proves equivalence on,
    shared through its fingerprint cache): for a step out of a
    reachable configuration under input letter ``L``, component ``i``
    sees ``flags ∪ L ∪ internal`` minus its consumed broadcast channels
    -- the visibility rule of
    :meth:`repro.automata.SynchronousComposition.cycle`, where latched
    pulses and held command signals are equally visible in the cycle
    they arrive.  The lazy system has no state bound, so the harvest
    covers every design the verifier proves; ``max_states`` is kept for
    interface stability but no longer limits the walk.
    """
    del max_states  # the lazy exploration is unbounded
    components, _config = controller_composition(controller)
    system = controller_step_system(controller)
    care: CareSets = {component.name: {} for component in components}
    by_component = [care[component.name] for component in components]
    for state in range(len(system)):
        config, _env = system.key_of(state)
        states, flags, internal, consumed = \
            SynchronousComposition.configuration_parts(config)
        standing = set(flags) | set(internal)
        names = [component.name_of(states[index])
                 for index, component in enumerate(components)]
        for letter_id, _actions, _succ in system.rows(state):
            # the cycle's visibility rule collapses: latched pulses
            # (letter - held) and held command signals (letter & held)
            # are both visible in the very cycle they arrive, so the
            # component sees the whole letter on top of the latches
            visible_base = standing | system.letter_of(letter_id)
            for index in range(len(components)):
                visible = frozenset(visible_base - consumed[index])
                by_component[index].setdefault(names[index],
                                               set()).add(visible)
    return care


def simplify_fsm_conditions(fsm: Fsm, care_of: dict | None) -> Fsm:
    """Drop condition literals that are constant over the care set.

    For each state, a literal of an outgoing transition's conjunction
    is redundant when no *reachable* valuation distinguishes the guard
    with and without it -- i.e. every care valuation that satisfies the
    remaining literals also satisfies the dropped one.  Literals are
    tried in sorted order (deterministic output).  ``care_of`` maps
    state names to the observed valuations; states absent from it (or
    a ``None`` mapping) keep their guards untouched.
    """
    reduced = Fsm(fsm.name)
    for state in fsm.states:
        reduced.add_state(state, fsm.state_outputs.get(state, ()))
    reduced.initial = fsm.initial
    for t in fsm.transitions:
        conditions = t.conditions
        observed = care_of.get(t.src) if care_of else None
        if observed and conditions:
            kept = list(conditions)
            for literal in sorted(conditions):
                rest = [c for c in kept if c != literal]
                required = set(rest)
                # droppable iff no reachable valuation separates the
                # guard with and without the literal
                if all(literal in valuation
                       or not required <= valuation
                       for valuation in observed):
                    kept = rest
            conditions = tuple(kept)
        reduced.add_transition(t.src, t.dst, conditions, t.actions)
    return reduced


def simplify_controller_guards(
        controller: SystemController,
        care_sets: CareSets | None = None,
        max_states: int = DEFAULT_MAX_PRODUCT_STATES
        ) -> tuple[SystemController, dict]:
    """A controller with reachability-reduced guard literals + stats.

    ``care_sets`` defaults to a fresh :func:`harvest_care_sets` (now
    unbounded -- the lazy exploration retired the ``max_states``
    limit); should the harvest ever fail, the controller is returned
    unchanged with the reason in the stats -- don't-care simplification
    without the reachability evidence would be unsound.
    """
    if care_sets is None:
        try:
            care_sets = harvest_care_sets(controller, max_states)
        except AutomataError as exc:
            stats = {"simplified": False, "reason": str(exc),
                     "literals_before": _literals(controller),
                     "literals_after": _literals(controller)}
            return controller, stats
    phase = simplify_fsm_conditions(
        controller.phase_fsm, care_sets.get(controller.phase_fsm.name))
    sequencers = {
        resource: simplify_fsm_conditions(fsm, care_sets.get(fsm.name))
        for resource, fsm in controller.sequencers.items()}
    simplified = replace(controller, phase_fsm=phase, sequencers=sequencers)
    stats = {"simplified": True, "reason": None,
             "literals_before": _literals(controller),
             "literals_after": _literals(simplified)}
    return simplified, stats


def _literals(controller: SystemController) -> int:
    return sum(len(t.conditions)
               for fsm in controller.fsms for t in fsm.transitions)
