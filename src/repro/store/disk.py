"""Crash-safe content-addressed artifact store on the local filesystem.

Design constraints (ROADMAP "Synthesis-as-a-service"): many concurrent
writer *processes* (shard workers), warm starts that survive restarts,
and a hard rule that a damaged cache may cost a recompute but never an
exception on the flow's hot path.

* **Atomic writes** -- every record is written to a private temp file,
  fsync'd, then :func:`os.replace`'d into place; the containing
  directory entry is fsync'd after the rename.  A reader can observe a
  full record or no record, never a half-written one.  Two processes
  racing on the same key write byte-identical records (the encoding is
  canonical), so either winner is valid.
* **Self-verifying records** -- see :mod:`repro.store.record`: magic,
  schema/version header, payload checksum.  Anything that fails
  verification is moved to ``quarantine/`` (atomic rename, preserved
  for inspection) and reported as a miss.
* **Size-bounded LRU eviction** -- an on-disk ``index.json`` tracks the
  byte size of every live record; when a put pushes the total over
  ``max_bytes``, the least-recently-used records (file mtime clock,
  bumped on every hit) are unlinked until the store fits.  Eviction
  never truncates in place, so a reader holding a record mid-read keeps
  its full bytes (POSIX unlink semantics) and a reader that loses the
  race sees a clean miss.
* **Advisory locking** -- the index read-modify-write (and the eviction
  inside it) is serialized across processes by a :class:`FileLock`;
  object reads never lock.  A lost or corrupt index is rebuilt by
  scanning the object tree -- the index is an accelerator and an audit
  record, never the source of truth.

The store knows nothing about the flow: keys are opaque hex strings,
payloads are opaque bytes.  The stage-cache semantics live one layer up
in :mod:`repro.store.tiered`.
"""

from __future__ import annotations

import json
import os
from itertools import count
from pathlib import Path
from typing import Iterator, Mapping

from ..obs import MetricsRegistry
from ..obs import record as obs_record
from ..obs import span as obs_span
from .locks import FileLock
from .record import RecordError, StoreRecord, decode_record, encode_record

__all__ = ["ArtifactStore", "StoreError", "DEFAULT_MAX_BYTES"]

#: Default eviction bound: generous for stage artifacts (a cached stage
#: entry pickles at ~10-100 KB), small enough to never surprise a CI
#: container's disk.
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

_INDEX_VERSION = 1

#: Process-unique suffix source for temp files: pid + counter, so
#: concurrent writers (threads and processes) never collide on a name.
_TMP_COUNTER = count()


class StoreError(RuntimeError):
    """Raised for *caller* mistakes (bad key, bad configuration) --
    never for on-disk damage, which is quarantined instead."""


def _is_hex_key(key: str) -> bool:
    return (isinstance(key, str) and len(key) >= 8
            and all(c in "0123456789abcdef" for c in key))


def _fsync_directory(path: Path) -> None:
    """Flush a directory entry (rename durability); best-effort."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


class ArtifactStore:
    """Content-addressed record store under one root directory.

    Thread-safe and multi-process-safe: any number of stores may point
    at the same root (shard workers each construct their own).  All
    methods are total -- on-disk damage degrades to misses, never
    raises.
    """

    def __init__(self, root: str | os.PathLike,
                 max_bytes: int | None = DEFAULT_MAX_BYTES) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise StoreError(f"max_bytes must be positive or None, "
                             f"got {max_bytes}")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self._objects = self.root / "objects"
        self._tmp = self.root / "tmp"
        self._quarantine_dir = self.root / "quarantine"
        self._index_path = self.root / "index.json"
        self._lock = FileLock(self.root / ".lock")
        for directory in (self._objects, self._tmp, self._quarantine_dir):
            directory.mkdir(parents=True, exist_ok=True)
        #: Per-handle event counters (:class:`repro.obs.MetricsRegistry`):
        #: local to this handle, merged across workers by the shard
        #: reduce.  Pre-created so :meth:`stats` always reports all five.
        self.metrics = MetricsRegistry()
        for name in ("hits", "misses", "evictions", "quarantined",
                     "invalidated"):
            self.metrics.counter(name)

    # -- counter aliases: the pre-obs instance attributes, kept so the
    # -- BENCH gates and existing callers read unchanged -----------------
    @property
    def hits(self) -> int:
        return self.metrics.counter("hits").value

    @property
    def misses(self) -> int:
        return self.metrics.counter("misses").value

    @property
    def evictions(self) -> int:
        return self.metrics.counter("evictions").value

    @property
    def quarantined(self) -> int:
        return self.metrics.counter("quarantined").value

    @property
    def invalidated(self) -> int:
        return self.metrics.counter("invalidated").value

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def _object_path(self, key: str) -> Path:
        return self._objects / key[:2] / f"{key}.rec"

    def _count(self, counter: str, delta: int = 1) -> None:
        self.metrics.counter(counter).inc(delta)

    # ------------------------------------------------------------------
    # read path (lock-free)
    # ------------------------------------------------------------------
    def get(self, key: str) -> StoreRecord | None:
        """Fetch and verify one record; ``None`` on miss or damage."""
        if not _is_hex_key(key):
            raise StoreError(f"malformed store key {key!r}")
        path = self._object_path(key)
        with obs_span("store.get", kind="store", key=key[:12]) as span:
            try:
                blob = path.read_bytes()
            except (FileNotFoundError, NotADirectoryError):
                self._count("misses")
                span.set("result", "miss")
                return None
            except OSError:  # unreadable: treat as damage
                self._quarantine(path, key, "unreadable object file")
                self._count("misses")
                span.set("result", "quarantined")
                return None
            try:
                record = decode_record(blob)
            except RecordError as reason:
                self._quarantine(path, key, str(reason))
                self._count("misses")
                span.set("result", "quarantined")
                return None
            if record.key != key:
                self._quarantine(path, key,
                                 f"record answers key {record.key!r}")
                self._count("misses")
                span.set("result", "quarantined")
                return None
            try:  # LRU clock: a hit makes the record recently-used
                os.utime(path)
            except OSError:
                pass  # concurrently evicted: the bytes in hand stay valid
            self._count("hits")
            span.set("result", "hit")
            span.set("bytes", len(blob))
            return record

    def __contains__(self, key: str) -> bool:
        return self._object_path(key).exists()

    # ------------------------------------------------------------------
    # write path (atomic rename + locked index update)
    # ------------------------------------------------------------------
    def put(self, key: str, payload: bytes, schema: int,
            meta: Mapping[str, object] | None = None) -> None:
        """Durably publish ``payload`` under ``key`` (last write wins)."""
        if not _is_hex_key(key):
            raise StoreError(f"malformed store key {key!r}")
        blob = encode_record(key, payload, schema, meta)
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        with obs_span("store.put", kind="store", key=key[:12],
                      bytes=len(blob)):
            tmp = self._tmp / f"{key}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
            try:
                with open(tmp, "wb") as handle:
                    handle.write(blob)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
            finally:
                tmp.unlink(missing_ok=True)
            _fsync_directory(path.parent)
            with self._lock:
                index = self._load_index_locked()
                index["entries"][key] = len(blob)
                self._evict_locked(index, protect=key)
                self._write_index_locked(index)

    def invalidate(self, key: str) -> None:
        """Drop one record (e.g. its payload no longer deserializes)."""
        with self._lock:
            index = self._load_index_locked()
            self._object_path(key).unlink(missing_ok=True)
            if index["entries"].pop(key, None) is not None:
                self._write_index_locked(index)
        self._count("invalidated")

    # ------------------------------------------------------------------
    # quarantine: damage is preserved for inspection, never re-served
    # ------------------------------------------------------------------
    def _quarantine(self, path: Path, key: str, reason: str) -> None:
        obs_record("store.quarantine", kind="store", key=key[:12],
                   reason=reason)
        destination = self._quarantine_dir / (
            f"{key}.{os.getpid()}.{next(_TMP_COUNTER)}.rec")
        try:
            os.replace(path, destination)
        except OSError:
            path.unlink(missing_ok=True)  # raced: drop instead of keep
        else:
            try:
                destination.with_suffix(".reason").write_text(
                    reason + "\n", encoding="utf-8")
            except OSError:  # pragma: no cover - best-effort breadcrumb
                pass
        with self._lock:
            index = self._load_index_locked()
            if index["entries"].pop(key, None) is not None:
                self._write_index_locked(index)
        self._count("quarantined")

    def quarantined_files(self) -> list[Path]:
        """The quarantined records currently on disk (sorted)."""
        return sorted(self._quarantine_dir.glob("*.rec"))

    # ------------------------------------------------------------------
    # index + eviction (under the advisory lock)
    # ------------------------------------------------------------------
    def _load_index_locked(self) -> dict:
        try:
            index = json.loads(self._index_path.read_text(encoding="utf-8"))
            if (isinstance(index, dict)
                    and index.get("version") == _INDEX_VERSION
                    and isinstance(index.get("entries"), dict)):
                return index
        except FileNotFoundError:
            pass
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            pass  # corrupt index: fall through to the rebuild
        return self._rebuild_index_locked()

    def _rebuild_index_locked(self) -> dict:
        """Reconstruct the index from the object tree (source of truth)."""
        entries: dict[str, int] = {}
        for path in sorted(self._objects.glob("*/*.rec")):
            try:
                entries[path.stem] = path.stat().st_size
            except OSError:
                continue  # concurrently removed
        return {"version": _INDEX_VERSION, "entries": entries}

    def _write_index_locked(self, index: dict) -> None:
        tmp = self._tmp / f"index.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
        try:
            with open(tmp, "wb") as handle:
                handle.write(json.dumps(index, sort_keys=True).encode())
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self._index_path)
        finally:
            tmp.unlink(missing_ok=True)
        _fsync_directory(self.root)

    def _evict_locked(self, index: dict, protect: str) -> None:
        """Unlink LRU records until the store fits ``max_bytes``.

        The just-written key is never a victim (a put must not evict
        itself), and a record larger than the whole budget therefore
        still lands -- the bound is honored again on the next put.
        """
        if self.max_bytes is None:
            return
        entries: dict[str, int] = index["entries"]
        total = sum(entries.values())
        if total <= self.max_bytes:
            return
        clock: list[tuple[float, str]] = []
        for key in sorted(entries):
            if key == protect:
                continue
            try:
                clock.append((self._object_path(key).stat().st_mtime, key))
            except OSError:
                total -= entries.pop(key)  # file already gone: prune
        for _, key in sorted(clock):
            if total <= self.max_bytes:
                break
            self._object_path(key).unlink(missing_ok=True)
            total -= entries.pop(key)
            self._count("evictions")
            obs_record("store.evict", kind="store", key=key[:12])

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        """Live record keys, sorted (scans the object tree)."""
        for path in sorted(self._objects.glob("*/*.rec")):
            yield path.stem

    def stats(self) -> dict:
        """Occupancy and counter snapshot of *this* handle.

        Entry/byte occupancy reads the shared on-disk index (what every
        process sees); the hit/miss/eviction counters are local to this
        handle -- per-worker evidence, merged by the shard reduce.
        """
        with self._lock:
            index = self._load_index_locked()
        entries = index["entries"]
        return {"entries": len(entries),
                "bytes": sum(entries.values()),
                "max_bytes": self.max_bytes,
                **self.metrics.snapshot()}
