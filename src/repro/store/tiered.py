"""Tiered stage caching: in-memory L1 over a persistent on-disk L2.

The pipeline executor speaks the small ``CacheTier`` surface
(``get(stage, signature)`` / ``put(stage, signature, outputs)`` plus the
``snapshot``/``stats`` counter window protocol of
:class:`repro.flow.pipeline.StageCache`).  This module adds the two
tiers that make stage outputs survive the process:

* :class:`PersistentCache` -- the L2: serializes each stage's output
  mapping (values *with* their content fingerprints) and publishes it to
  an :class:`~repro.store.disk.ArtifactStore` under a key derived from
  ``(stage name, input-fingerprint signature, cache schema version)``.
  Because the stored entry carries the fingerprints that were computed
  when the outputs were first produced, a restore feeds the exact same
  fingerprints back into the flow context -- downstream stage signatures
  match across processes and restarts.
* :class:`TieredCache` -- composes an L1 (any ``CacheTier``; in practice
  a :class:`StageCache`) with a :class:`PersistentCache` L2: L1 hits are
  free, L2 hits are *promoted* into L1, and fresh results are written
  through to both tiers.

Values that cannot be pickled are skipped (counted, never raised), and a
record whose payload no longer unpickles is invalidated and treated as a
miss -- the cache may only ever cost a recompute.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any, Iterable, Mapping, Protocol, runtime_checkable

from ..obs import MetricsRegistry
from ..obs import record as obs_record
from ..obs import span as obs_span
from .disk import ArtifactStore

__all__ = ["CacheTier", "PersistentCache", "TieredCache",
           "PIPELINE_CACHE_SCHEMA"]

#: Schema version of the *serialized stage-output* payload.  Folded into
#: every store key (so old-schema records are simply never looked up)
#: and stamped into every record header (so a forced lookup still
#: refuses a cross-version decode).  Bump when the output serialization
#: or the fingerprint definition changes incompatibly.
PIPELINE_CACHE_SCHEMA = 1

#: Highest pickle protocol guaranteed on every supported interpreter;
#: pinned so records written by different Python patch versions stay
#: byte-compatible.
_PICKLE_PROTOCOL = 4


@runtime_checkable
class CacheTier(Protocol):
    """What the pipeline executor needs from any cache tier."""

    def get(self, stage: str,
            signature: tuple[str, ...]) -> dict[str, tuple[Any, str]] | None:
        """Cached outputs of ``stage`` for this input signature, or None."""

    def put(self, stage: str, signature: tuple[str, ...],
            outputs: dict[str, tuple[Any, str]]) -> None:
        """Record the outputs ``stage`` produced for this signature."""

    def snapshot(self) -> Mapping:
        """Counter snapshot opening a measurement window (see ``stats``)."""

    def stats(self, since: Mapping | None = None) -> dict:
        """Counters and occupancy; windowed when ``since`` is a snapshot."""


def cache_key(stage: str, signature: Iterable[str],
              schema: int = PIPELINE_CACHE_SCHEMA) -> str:
    """Content-addressed store key of one ``(stage, signature)`` entry."""
    token = repr(("stage-outputs", schema, stage, tuple(signature)))
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


class PersistentCache:
    """L2 tier: stage outputs in a content-addressed disk store.

    Many handles (threads, worker processes) may wrap stores pointing at
    one root; the store's atomic writes and advisory-locked index keep
    them coherent.  Hit/miss counters are handle-local -- shard reduce
    merges the per-worker windows.
    """

    #: Counter names, also the keys of :meth:`snapshot`.
    _COUNTERS = ("hits", "misses", "unstorable", "decode_failures")

    def __init__(self, store: ArtifactStore,
                 schema: int = PIPELINE_CACHE_SCHEMA) -> None:
        self.store = store
        self.schema = schema
        self.metrics = MetricsRegistry()
        for name in self._COUNTERS:
            self.metrics.counter(name)

    # -- counter aliases onto the metrics registry ----------------------
    @property
    def hits(self) -> int:
        return self.metrics.counter("hits").value

    @property
    def misses(self) -> int:
        return self.metrics.counter("misses").value

    @property
    def unstorable(self) -> int:
        return self.metrics.counter("unstorable").value

    @property
    def decode_failures(self) -> int:
        return self.metrics.counter("decode_failures").value

    # -- CacheTier -----------------------------------------------------
    def get(self, stage: str,
            signature: tuple[str, ...]) -> dict[str, tuple[Any, str]] | None:
        with obs_span("cache.get", kind="cache", tier="l2",
                      stage=stage) as span:
            record = self.store.get(cache_key(stage, signature, self.schema))
            if record is None or record.schema != self.schema:
                self.metrics.counter("misses").inc()
                span.set("result", "miss")
                return None
            try:
                rows = pickle.loads(record.payload)
                outputs = {str(key): (value, str(fingerprint))
                           for key, value, fingerprint in rows}
            except Exception:  # stale pickle (renamed class, ...): drop it
                self.store.invalidate(record.key)
                self.metrics.counter("decode_failures").inc()
                self.metrics.counter("misses").inc()
                span.set("result", "decode_failure")
                return None
            self.metrics.counter("hits").inc()
            span.set("result", "hit")
            return outputs

    def put(self, stage: str, signature: tuple[str, ...],
            outputs: dict[str, tuple[Any, str]]) -> None:
        with obs_span("cache.put", kind="cache", tier="l2",
                      stage=stage) as span:
            rows = sorted((key, value, fingerprint)
                          for key, (value, fingerprint) in outputs.items())
            try:
                payload = pickle.dumps(rows, protocol=_PICKLE_PROTOCOL)
            except Exception:  # unpicklable artifact: skip, never raise
                self.metrics.counter("unstorable").inc()
                span.set("result", "unstorable")
                return
            span.set("bytes", len(payload))
            self.store.put(cache_key(stage, signature, self.schema),
                           payload, self.schema,
                           meta={"stage": stage,
                                 "outputs": sorted(outputs)})

    # -- counter window protocol ----------------------------------------
    def snapshot(self) -> dict[str, int]:
        return {name: self.metrics.counter(name).value
                for name in self._COUNTERS}

    def stats(self, since: Mapping | None = None) -> dict:
        counters = self.snapshot()
        if since is not None:
            for key in counters:
                counters[key] -= since.get(key, 0)
        total = counters["hits"] + counters["misses"]
        store_stats = self.store.stats()
        counters.update(
            hit_rate=round(counters["hits"] / total, 4) if total else 0.0,
            entries=store_stats["entries"],
            bytes=store_stats["bytes"],
            evictions=store_stats["evictions"],
            quarantined=store_stats["quarantined"])
        return counters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PersistentCache(root={str(self.store.root)!r}, "
                f"schema={self.schema})")


class TieredCache:
    """L1 memory tier over an L2 persistent tier.

    * ``get``: L1 first; an L2 hit is deserialized once and *promoted*
      into L1 so the rest of the run pays memory-lookup prices.
    * ``put``: write-through -- the result lands in L1 for this process
      and is published to L2 for every process (and run) after it.

    Top-level ``hits``/``misses`` count *requests the tier pair served /
    failed*, so existing hit-rate reports stay meaningful; the nested
    ``l1``/``l2`` views break the answer down per tier.
    """

    def __init__(self, l1: CacheTier, l2: PersistentCache) -> None:
        self.l1 = l1
        self.l2 = l2
        self.metrics = MetricsRegistry()
        self.metrics.counter("promotions")

    @property
    def promotions(self) -> int:
        """L2-to-L1 promotion count (alias onto the metrics registry)."""
        return self.metrics.counter("promotions").value

    # -- CacheTier -----------------------------------------------------
    def get(self, stage: str,
            signature: tuple[str, ...]) -> dict[str, tuple[Any, str]] | None:
        outputs = self.l1.get(stage, signature)
        if outputs is not None:
            return outputs
        outputs = self.l2.get(stage, signature)
        if outputs is not None:
            self.l1.put(stage, signature, outputs)
            self.metrics.counter("promotions").inc()
            obs_record("cache.promote", kind="cache", stage=stage)
        return outputs

    def put(self, stage: str, signature: tuple[str, ...],
            outputs: dict[str, tuple[Any, str]]) -> None:
        self.l1.put(stage, signature, outputs)
        self.l2.put(stage, signature, outputs)

    def clear(self) -> None:
        """Drop the memory tier; the persistent tier is durable state."""
        clear = getattr(self.l1, "clear", None)
        if callable(clear):
            clear()

    # -- counter window protocol ----------------------------------------
    def snapshot(self) -> dict:
        return {"l1": self.l1.snapshot(), "l2": self.l2.snapshot(),
                "promotions": self.promotions}

    def stats(self, since: Mapping | None = None) -> dict:
        l1 = self.l1.stats((since or {}).get("l1"))
        l2 = self.l2.stats((since or {}).get("l2"))
        promotions = self.promotions - (since or {}).get("promotions", 0)
        hits = l1["hits"] + l2["hits"]          # served from either tier
        misses = l2["misses"]                   # missed both tiers
        total = hits + misses
        return {"hits": hits, "misses": misses,
                "hit_rate": round(hits / total, 4) if total else 0.0,
                "promotions": promotions, "l1": l1, "l2": l2}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TieredCache(l1={self.l1!r}, l2={self.l2!r})"
