"""Advisory file locking for concurrent store writers.

The artifact store serializes its index read-modify-write (and the
eviction scan inside it) across *processes* with one advisory lock file
per store root.  Object reads and the atomic temp-file+rename object
writes deliberately do not take the lock: a reader either sees a full
record or no record, and a rename either lands or loses the race to an
identical record.

On platforms without :mod:`fcntl` (non-POSIX) the lock degrades to a
process-local :class:`threading.Lock` -- single-process safety is kept,
cross-process exclusion is advisory anyway.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path

try:  # POSIX advisory locks; gated so the store stays importable anywhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = ["FileLock"]


class FileLock:
    """``with FileLock(path):`` -- exclusive advisory lock on ``path``.

    Reentrant within a process is *not* supported (and not needed: the
    store takes the lock at its public entry points only).  The in-process
    :class:`threading.Lock` layered under the flock keeps threads of one
    process from competing for the same file descriptor.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._thread_lock = threading.Lock()
        self._fd: int | None = None

    def __enter__(self) -> "FileLock":
        self._thread_lock.acquire()
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if fcntl is not None:
                self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
                fcntl.flock(self._fd, fcntl.LOCK_EX)
        except BaseException:
            self._release_fd()
            self._thread_lock.release()
            raise
        return self

    def __exit__(self, *exc_info: object) -> None:
        try:
            self._release_fd()
        finally:
            self._thread_lock.release()

    def _release_fd(self) -> None:
        if self._fd is not None:
            try:
                if fcntl is not None:
                    fcntl.flock(self._fd, fcntl.LOCK_UN)
            finally:
                os.close(self._fd)
                self._fd = None
