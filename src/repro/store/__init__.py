"""Persistent content-addressed artifact store (``repro.store``).

The disk half of the caching stack: crash-safe record files
(:mod:`.record`), the size-bounded content-addressed store
(:mod:`.disk`), advisory locking (:mod:`.locks`) and the cache tiers
that plug the store into the pipeline executor (:mod:`.tiered`).

This package is the one sanctioned home of file I/O in the repro tree
(see ``repro.analysis.config.SANCTIONED_IO_PATHS``): everything above it
stays pure and receives persistence by injection -- ``CoolFlow(
store_path=...)``, ``BatchRunner(store=...)``, ``sharded_sweep(
store_path=...)``.
"""

from .disk import DEFAULT_MAX_BYTES, ArtifactStore, StoreError
from .locks import FileLock
from .record import (MAGIC, STORE_SCHEMA_VERSION, RecordError, StoreRecord,
                     decode_record, encode_record)
from .tiered import (PIPELINE_CACHE_SCHEMA, CacheTier, PersistentCache,
                     TieredCache, cache_key)

__all__ = [
    "ArtifactStore", "StoreError", "DEFAULT_MAX_BYTES", "FileLock",
    "MAGIC", "STORE_SCHEMA_VERSION", "RecordError", "StoreRecord",
    "encode_record", "decode_record",
    "CacheTier", "PersistentCache", "TieredCache", "PIPELINE_CACHE_SCHEMA",
    "cache_key",
]
