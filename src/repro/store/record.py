"""On-disk record format of the artifact store.

One record is one self-verifying file::

    MAGIC | header length (4 bytes, big-endian) | header JSON | payload

The header is a canonical (sorted-keys) JSON object carrying the store
schema version, the record's content key, the payload size and its
SHA-256 -- everything :func:`decode_record` needs to prove the bytes on
disk are the bytes that were written.  Any violation (bad magic,
truncated header or payload, checksum mismatch, undecodable JSON)
raises :class:`RecordError`; the store reacts by *quarantining* the
file, never by crashing the flow (a corrupt cache entry is a miss, not
an error).

Because the header serialization is canonical, two writers encoding the
same ``(key, schema, payload, meta)`` produce byte-identical records --
which is what lets concurrent writers of one fingerprint converge on a
single valid file regardless of who wins the rename race.

Schema versioning: ``schema`` is stamped into every header.  A reader
built for a different schema treats the record as a miss (the tier keys
also fold the schema in, so mismatched records are normally never even
looked up); it never attempts a cross-version decode.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["MAGIC", "STORE_SCHEMA_VERSION", "RecordError", "StoreRecord",
           "encode_record", "decode_record"]

#: File magic: identifies artifact-store records (and their format era).
MAGIC = b"repro-store\x00"

#: Version of the record format itself (header layout + checksum).
#: Bumped when the container format changes; the *payload* schema is the
#: separate per-record ``schema`` field owned by the writer.
STORE_SCHEMA_VERSION = 1

_HEADER_LENGTH_BYTES = 4


class RecordError(ValueError):
    """A record's bytes do not decode to what its header promises."""


@dataclass(frozen=True)
class StoreRecord:
    """One decoded record: verified payload plus its header metadata."""

    key: str
    schema: int
    payload: bytes
    meta: Mapping[str, Any] = field(default_factory=dict)


def encode_record(key: str, payload: bytes, schema: int,
                  meta: Mapping[str, Any] | None = None) -> bytes:
    """Serialize one record; deterministic for identical inputs."""
    if not isinstance(payload, (bytes, bytearray)):
        raise TypeError(f"payload must be bytes, got "
                        f"{type(payload).__name__}")
    header = {
        "format": STORE_SCHEMA_VERSION,
        "key": key,
        "schema": schema,
        "size": len(payload),
        "sha256": hashlib.sha256(payload).hexdigest(),
        "meta": dict(meta or {}),
    }
    header_bytes = json.dumps(header, sort_keys=True,
                              separators=(",", ":")).encode("utf-8")
    return (MAGIC + len(header_bytes).to_bytes(_HEADER_LENGTH_BYTES, "big")
            + header_bytes + bytes(payload))


def decode_record(blob: bytes) -> StoreRecord:
    """Parse and *verify* one record; :class:`RecordError` on any damage."""
    if not blob.startswith(MAGIC):
        raise RecordError("bad magic: not an artifact-store record")
    offset = len(MAGIC)
    length_end = offset + _HEADER_LENGTH_BYTES
    if len(blob) < length_end:
        raise RecordError("truncated record: header length missing")
    header_length = int.from_bytes(blob[offset:length_end], "big")
    header_end = length_end + header_length
    if len(blob) < header_end:
        raise RecordError("truncated record: header incomplete")
    try:
        header = json.loads(blob[length_end:header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RecordError(f"undecodable header: {exc}") from None
    if not isinstance(header, dict):
        raise RecordError("header is not a JSON object")
    try:
        key, schema = header["key"], header["schema"]
        size, sha256 = header["size"], header["sha256"]
        record_format = header["format"]
    except KeyError as exc:
        raise RecordError(f"header missing field {exc}") from None
    if record_format != STORE_SCHEMA_VERSION:
        raise RecordError(f"record format {record_format} != "
                          f"{STORE_SCHEMA_VERSION}")
    payload = blob[header_end:]
    if len(payload) != size:
        raise RecordError(f"payload size {len(payload)} != declared {size} "
                          f"(torn write)")
    if hashlib.sha256(payload).hexdigest() != sha256:
        raise RecordError("payload checksum mismatch (corrupt record)")
    return StoreRecord(key=key, schema=schema, payload=payload,
                       meta=header.get("meta", {}))
