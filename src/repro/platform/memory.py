"""Shared memory devices.

The paper's prototyping board carries a 64 kB static RAM card used for all
inter-unit communication; the co-synthesis step allocates memory cells
inside it starting from a base address (paper Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from .processors import PlatformError

__all__ = ["MemoryDevice"]


@dataclass(frozen=True)
class MemoryDevice:
    """A shared memory reachable over the system bus.

    Parameters
    ----------
    name:
        Unique resource name, e.g. ``"sram"``.
    size_bytes:
        Capacity of the device.
    base_address:
        First address of the device in the global memory map.
    word_bytes:
        Width of one addressable cell as used by the allocator.
    read_cycles / write_cycles:
        Access latencies in bus clock cycles.
    """

    name: str
    size_bytes: int
    base_address: int = 0
    word_bytes: int = 2
    read_cycles: int = 2
    write_cycles: int = 2

    def __post_init__(self) -> None:
        if not self.name:
            raise PlatformError("memory name must be non-empty")
        if self.size_bytes <= 0:
            raise PlatformError(f"memory {self.name!r}: size must be positive")
        if self.base_address < 0:
            raise PlatformError(f"memory {self.name!r}: negative base address")
        if self.word_bytes <= 0:
            raise PlatformError(f"memory {self.name!r}: word size must be positive")

    @property
    def words(self) -> int:
        """Number of addressable words in the device."""
        return self.size_bytes // self.word_bytes

    @property
    def end_address(self) -> int:
        """One past the last valid address."""
        return self.base_address + self.words

    def contains(self, address: int, n_words: int = 1) -> bool:
        """True if ``[address, address + n_words)`` lies inside the device."""
        return (self.base_address <= address
                and address + n_words <= self.end_address)
