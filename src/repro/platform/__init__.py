"""Target platform library: processors, FPGAs, memories, buses, boards."""

from .processors import PlatformError, Processor
from .fpgas import Fpga
from .memory import MemoryDevice
from .bus import Bus
from .architecture import TargetArchitecture
from .presets import cool_board, dsp56001, minimal_board, multi_board, xc4005

__all__ = [
    "PlatformError", "Processor", "Fpga", "MemoryDevice", "Bus",
    "TargetArchitecture", "cool_board", "dsp56001", "minimal_board",
    "multi_board", "xc4005",
]
