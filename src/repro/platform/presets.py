"""Preset platform components matching the paper's prototyping board.

The paper implements the fuzzy controller on "a Motorola DSP56001 placed
on a plug-in card in a PC and two Xilinx FPGAs 4005 (with 196 CLBs each)
on a board.  In addition, a memory card with 64kB static RAM was build and
all components were connected by a bus card."  :func:`cool_board` builds
exactly this architecture; :func:`minimal_board` is the one-CPU/one-FPGA
target used for the 4-band equalizer example (paper Fig. 2).
"""

from __future__ import annotations

from .architecture import TargetArchitecture
from .bus import Bus
from .fpgas import Fpga
from .memory import MemoryDevice
from .processors import Processor

__all__ = ["dsp56001", "xc4005", "cool_board", "minimal_board", "multi_board"]


def dsp56001(name: str = "dsp0", clock_hz: float = 20e6) -> Processor:
    """Motorola DSP56001 executing *compiled C*, as COOL generates it.

    The device can retire a MAC per instruction cycle in hand-written
    assembly, but COOL emits C; late-90s C compilers for the 56k family
    kept pipelines far from full.  The table models compiled code
    (2-3 cycles per ALU op, software-emulated division), which is the
    code the synthesized system actually runs.
    """
    return Processor(
        name=name,
        model="DSP56001",
        clock_hz=clock_hz,
        cycles=(("mov", 2), ("add", 2), ("mul", 3), ("mac", 3),
                ("div", 25), ("cmp", 2), ("shift", 2), ("logic", 2)),
        call_overhead_cycles=24,
        word_bytes=3,
    )


def xc4005(name: str = "fpga0", clock_hz: float = 10e6) -> Fpga:
    """Xilinx XC4005 model: 196 CLBs, XC4000-class operator tables."""
    return Fpga(
        name=name,
        model="XC4005",
        clb_capacity=196,
        clock_hz=clock_hz,
    )


def cool_board(memory_kib: int = 64) -> TargetArchitecture:
    """The paper's board: DSP56001 + 2x XC4005 + 64 kB SRAM + bus card."""
    return TargetArchitecture(
        name="cool_board",
        processors=(dsp56001("dsp0"),),
        fpgas=(xc4005("fpga0"), xc4005("fpga1")),
        memory=MemoryDevice("sram", memory_kib * 1024, base_address=0x1000,
                            word_bytes=2, read_cycles=1, write_cycles=1),
        bus=Bus("sysbus", width_bits=16, clock_hz=10e6, cycles_per_word=1),
    )


def minimal_board() -> TargetArchitecture:
    """One CPU + one FPGA: the equalizer target of paper Fig. 2."""
    return TargetArchitecture(
        name="minimal_board",
        processors=(dsp56001("dsp0"),),
        fpgas=(xc4005("fpga0"),),
        memory=MemoryDevice("sram", 64 * 1024, base_address=0x1000,
                            word_bytes=2, read_cycles=1, write_cycles=1),
        bus=Bus("sysbus", width_bits=16, clock_hz=10e6, cycles_per_word=1),
    )


def multi_board(n_processors: int = 2, n_fpgas: int = 2,
                clb_capacity: int = 400) -> TargetArchitecture:
    """A larger multi-processor / multi-ASIC board for scaling studies."""
    processors = tuple(dsp56001(f"dsp{i}") for i in range(n_processors))
    fpgas = tuple(
        Fpga(name=f"fpga{i}", model="XC4010", clb_capacity=clb_capacity,
             clock_hz=10e6)
        for i in range(n_fpgas))
    return TargetArchitecture(
        name=f"multi_board_{n_processors}p{n_fpgas}f",
        processors=processors,
        fpgas=fpgas,
        memory=MemoryDevice("sram", 256 * 1024, base_address=0x1000,
                            word_bytes=2, read_cycles=1, write_cycles=1),
        bus=Bus("sysbus", width_bits=32, clock_hz=20e6, cycles_per_word=1),
    )
