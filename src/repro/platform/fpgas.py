"""Hardware processing units (FPGAs / ASICs).

An :class:`Fpga` models an XC4000-class device: a CLB capacity, a system
clock, per-operation latencies (in clock cycles, as produced by high-level
synthesis) and per-operator CLB area costs.  The paper's board carries two
Xilinx XC4005 devices with 196 CLBs each; :mod:`repro.platform.presets`
instantiates exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.semantics import OP_CATEGORIES
from .processors import PlatformError

__all__ = ["Fpga"]

#: Default operator latencies in FPGA clock cycles (XC4000-class, 16 bit).
_DEFAULT_LATENCY = {
    "mov": 1, "add": 1, "mul": 2, "mac": 2, "div": 8,
    "cmp": 1, "shift": 1, "logic": 1,
}

#: Default operator CLB areas (XC4000-class, 16-bit operands).  A CLB of
#: the XC4000 family holds two 4-input LUTs + two flip-flops; a 16-bit
#: ripple adder needs ~9 CLBs, a 16x16 multiplier is far larger.
_DEFAULT_AREA = {
    "mov": 0, "add": 9, "mul": 42, "mac": 48, "div": 60,
    "cmp": 5, "shift": 6, "logic": 4,
}


@dataclass(frozen=True)
class Fpga:
    """A field-programmable hardware resource.

    Parameters
    ----------
    name:
        Unique resource name, e.g. ``"fpga0"``.
    model:
        Device model string, e.g. ``"XC4005"``.
    clb_capacity:
        Number of configurable logic blocks available for datapaths and
        controllers mapped onto this device.
    clock_hz:
        Clock of the synthesized design.
    latency / area:
        Optional overrides for the per-operator latency (cycles) and area
        (CLBs) tables.
    register_clbs_per_bit:
        Area cost of one register bit, in CLBs (two flip-flops per CLB in
        the XC4000 family -> 0.5 CLB per bit).
    controller_clbs_per_state:
        Area contribution of one controller state (state register +
        next-state logic share).
    """

    name: str
    model: str
    clb_capacity: int
    clock_hz: float
    latency: tuple = field(default_factory=tuple)
    area: tuple = field(default_factory=tuple)
    register_clbs_per_bit: float = 0.5
    controller_clbs_per_state: float = 1.5

    def __post_init__(self) -> None:
        if not self.name:
            raise PlatformError("fpga name must be non-empty")
        if self.clb_capacity <= 0:
            raise PlatformError(f"fpga {self.name!r}: CLB capacity must be positive")
        if self.clock_hz <= 0:
            raise PlatformError(f"fpga {self.name!r}: clock must be positive")
        for table_name, table in (("latency", self.latency), ("area", self.area)):
            unknown = {op for op, _ in table} - set(OP_CATEGORIES)
            if unknown:
                raise PlatformError(
                    f"fpga {self.name!r}: unknown categories in {table_name}: "
                    f"{sorted(unknown)}")

    @property
    def latency_table(self) -> dict[str, int]:
        table = dict(_DEFAULT_LATENCY)
        table.update(dict(self.latency))
        return table

    @property
    def area_table(self) -> dict[str, float]:
        table = dict(_DEFAULT_AREA)
        table.update(dict(self.area))
        return table

    def latency_for(self, op: str) -> int:
        if op not in OP_CATEGORIES:
            raise PlatformError(f"unknown op category {op!r}")
        return self.latency_table[op]

    def area_for(self, op: str) -> float:
        if op not in OP_CATEGORIES:
            raise PlatformError(f"unknown op category {op!r}")
        return self.area_table[op]

    def seconds(self, cycles: int) -> float:
        return cycles / self.clock_hz

    @property
    def is_software(self) -> bool:
        return False

    @property
    def is_hardware(self) -> bool:
        return True
