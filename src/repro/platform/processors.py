"""Software processing units (processors / DSPs).

A :class:`Processor` is described by its clock and an instruction cycle
table keyed by the primitive operation categories of
:mod:`repro.graph.semantics`.  The table abstracts the instruction set the
way 1990s co-design estimators did: one average cycle count per operation
class, with multiply-accumulate as a first-class citizen because the
paper's target, the Motorola DSP56001, executes a MAC per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.semantics import OP_CATEGORIES

__all__ = ["Processor", "PlatformError"]


class PlatformError(ValueError):
    """Raised for inconsistent platform descriptions."""


@dataclass(frozen=True)
class Processor:
    """A programmable processing unit executing the software partition.

    Parameters
    ----------
    name:
        Unique resource name, e.g. ``"dsp0"``.
    model:
        Device model string, e.g. ``"DSP56001"``.
    clock_hz:
        Core clock frequency.
    cycles:
        Cycles per primitive operation category.  Missing categories
        default to :attr:`default_cycles`.
    call_overhead_cycles:
        Fixed per-activation overhead (function call, loop setup, start /
        done handshake with the system controller).
    word_bytes:
        Natural data word size used when estimating moves.
    """

    name: str
    model: str
    clock_hz: float
    cycles: tuple = field(default_factory=tuple)
    call_overhead_cycles: int = 20
    default_cycles: int = 2
    word_bytes: int = 3  # DSP56001: 24-bit words

    def __post_init__(self) -> None:
        if not self.name:
            raise PlatformError("processor name must be non-empty")
        if self.clock_hz <= 0:
            raise PlatformError(f"processor {self.name!r}: clock must be positive")
        unknown = {op for op, _ in self.cycles} - set(OP_CATEGORIES)
        if unknown:
            raise PlatformError(
                f"processor {self.name!r}: unknown op categories {sorted(unknown)}")

    @property
    def cycle_table(self) -> dict[str, int]:
        """Cycles per op category, with defaults filled in."""
        table = {op: self.default_cycles for op in OP_CATEGORIES}
        table.update(dict(self.cycles))
        return table

    def cycles_for(self, op: str) -> int:
        if op not in OP_CATEGORIES:
            raise PlatformError(f"unknown op category {op!r}")
        return self.cycle_table[op]

    def seconds(self, cycles: int) -> float:
        """Convert a cycle count into seconds on this processor."""
        return cycles / self.clock_hz

    @property
    def is_software(self) -> bool:
        return True

    @property
    def is_hardware(self) -> bool:
        return False
