"""Target architectures: the multi-processor / multi-ASIC boards COOL maps to.

A :class:`TargetArchitecture` bundles processors, FPGAs, one shared memory
and one system bus.  It is consumed by estimation, partitioning,
scheduling, memory allocation, controller synthesis and co-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fingerprint import content_hash
from .bus import Bus
from .fpgas import Fpga
from .memory import MemoryDevice
from .processors import PlatformError, Processor

__all__ = ["TargetArchitecture"]


@dataclass(frozen=True)
class TargetArchitecture:
    """A complete co-design target platform.

    Parameters
    ----------
    name:
        Board name, e.g. ``"cool_board"``.
    processors / fpgas:
        The programmable and the hardware resources.  At least one
        resource in total is required; the paper's board has one DSP and
        two FPGAs.
    memory:
        The shared communication memory.
    bus:
        The system bus connecting everything.
    """

    name: str
    processors: tuple[Processor, ...] = ()
    fpgas: tuple[Fpga, ...] = ()
    memory: MemoryDevice = field(default_factory=lambda: MemoryDevice("sram", 65536))
    bus: Bus = field(default_factory=lambda: Bus("sysbus"))

    def __post_init__(self) -> None:
        names = [p.name for p in self.processors] + [f.name for f in self.fpgas]
        names += [self.memory.name, self.bus.name, "io"]
        if len(names) != len(set(names)):
            raise PlatformError(f"architecture {self.name!r}: duplicate resource names")
        if not self.processors and not self.fpgas:
            raise PlatformError(f"architecture {self.name!r}: no processing resources")

    # ------------------------------------------------------------------
    @property
    def processor_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.processors)

    @property
    def fpga_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fpgas)

    @property
    def resource_names(self) -> tuple[str, ...]:
        """All processing resource names, software first."""
        return self.processor_names + self.fpga_names

    def processor(self, name: str) -> Processor:
        for proc in self.processors:
            if proc.name == name:
                return proc
        raise PlatformError(f"unknown processor {name!r}")

    def fpga(self, name: str) -> Fpga:
        for dev in self.fpgas:
            if dev.name == name:
                return dev
        raise PlatformError(f"unknown fpga {name!r}")

    def resource(self, name: str) -> Processor | Fpga:
        """Look up any processing resource by name."""
        for proc in self.processors:
            if proc.name == name:
                return proc
        for dev in self.fpgas:
            if dev.name == name:
                return dev
        raise PlatformError(f"unknown resource {name!r}")

    def is_software(self, name: str) -> bool:
        return name in self.processor_names

    def is_hardware(self, name: str) -> bool:
        return name in self.fpga_names

    def clock_of(self, name: str) -> float:
        return self.resource(name).clock_hz

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content hash of the complete platform description.

        All components are frozen dataclasses, so their ``repr`` is a
        deterministic function of their content; two boards built with
        the same parameters fingerprint identically.  The flow pipeline
        keys architecture-dependent stage caches on this.
        """
        return content_hash((self.name, self.processors, self.fpgas,
                             self.memory, self.bus))

    def describe(self) -> str:
        """Human-readable one-paragraph architecture summary."""
        procs = ", ".join(f"{p.name} ({p.model}, {p.clock_hz / 1e6:.0f} MHz)"
                          for p in self.processors) or "none"
        fpgas = ", ".join(f"{f.name} ({f.model}, {f.clb_capacity} CLBs)"
                          for f in self.fpgas) or "none"
        return (f"architecture {self.name}: processors: {procs}; "
                f"fpgas: {fpgas}; memory: {self.memory.size_bytes // 1024} kB "
                f"@0x{self.memory.base_address:04X}; bus: {self.bus.width_bits}-bit "
                f"{self.bus.clock_hz / 1e6:.0f} MHz")
