"""System buses.

All processing units of the COOL target architecture communicate over a
shared bus (the paper's "bus card"); conflicts are prevented by a
synthesized bus arbiter.  The model here covers what estimation, memory
allocation and co-simulation need: width, clock, per-word transfer cost
and arbitration overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from .processors import PlatformError

__all__ = ["Bus"]


@dataclass(frozen=True)
class Bus:
    """A shared system bus.

    Parameters
    ----------
    name:
        Unique name, e.g. ``"sysbus"``.
    width_bits:
        Data width of the bus.
    clock_hz:
        Bus clock.
    cycles_per_word:
        Bus cycles needed to move one bus word once granted.
    arbitration_cycles:
        Fixed cycles from request to grant under no contention.
    """

    name: str
    width_bits: int = 16
    clock_hz: float = 10e6
    cycles_per_word: int = 2
    arbitration_cycles: int = 2

    def __post_init__(self) -> None:
        if not self.name:
            raise PlatformError("bus name must be non-empty")
        if self.width_bits <= 0:
            raise PlatformError(f"bus {self.name!r}: width must be positive")
        if self.clock_hz <= 0:
            raise PlatformError(f"bus {self.name!r}: clock must be positive")
        if self.cycles_per_word <= 0:
            raise PlatformError(f"bus {self.name!r}: cycles_per_word must be positive")

    def beats_for(self, width_bits: int, words: int) -> int:
        """Number of bus words needed to move ``words`` x ``width_bits``."""
        per_word = max(1, ceil(width_bits / self.width_bits))
        return per_word * words

    def transfer_cycles(self, width_bits: int, words: int) -> int:
        """Bus cycles for one granted burst transfer (without arbitration)."""
        return self.beats_for(width_bits, words) * self.cycles_per_word

    def seconds(self, cycles: int) -> float:
        return cycles / self.clock_hz
