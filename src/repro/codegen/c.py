"""C code generation for the software partition.

COOL generates "software specifications for compilation in C" (paper
Section 2).  For every processor the emitter produces one translation
unit:

* one C function per task node mapped to that processor, implementing
  the node's functional semantics (FIR loops, fuzzification tables,
  centre-of-gravity division, ...);
* memory-mapped I/O: the addresses of the node's input/output memory
  cells come straight from the co-synthesis memory map, and the
  start/done handshake with the system controller uses volatile control
  registers;
* a main loop that walks the processor's schedule order -- the software
  mirror of the sequencer FSM the system controller runs in hardware.
  When the synthesized controller is available the order is read off
  its sequencer automaton (the kernel view), so the C main loop and
  the hardware sequencer provably walk the same chain.
"""

from __future__ import annotations

from ..comm.refine import CommPlan
from ..graph.partition import Partition
from ..graph.taskgraph import TaskGraph, TaskNode
from ..schedule.schedule import Schedule

__all__ = ["software_to_c", "node_function_c", "sequencer_order"]

#: Control-register base: one start and one done bit per node, indexed
#: by the node's position in the processor's schedule.
CONTROL_BASE = 0x0F00


def _body_of(node: TaskNode, graph: TaskGraph) -> list[str]:
    """C statements computing the node's outputs from `in0..inN`."""
    params = node.params
    kind = node.kind
    w = node.words
    lines: list[str] = []
    if kind == "copy" or kind == "output":
        lines.append(f"for (i = 0; i < {w}; i++) out[i] = in0[i];")
    elif kind == "gain":
        factor = params.get("factor", 1)
        shift = params.get("shift", 0)
        lines.append(f"for (i = 0; i < {w}; i++) "
                     f"out[i] = (in0[i] * {factor}) >> {shift};")
    elif kind == "fir":
        taps = params["taps"]
        shift = params.get("shift", 0)
        lines.append(f"static const int taps[{len(taps)}] = "
                     "{" + ", ".join(str(t) for t in taps) + "};")
        lines.append(f"for (i = 0; i < {w}; i++) {{")
        lines.append("  long acc = 0;")
        lines.append(f"  for (j = 0; j < {len(taps)}; j++)")
        lines.append("    if (i - j >= 0) acc += (long)taps[j] * in0[i - j];")
        lines.append(f"  out[i] = (int)(acc >> {shift});")
        lines.append("}")
    elif kind in ("add", "sub", "mul", "min", "max"):
        op = {"add": "in0[i] + in1[i]", "sub": "in0[i] - in1[i]",
              "mul": "in0[i] * in1[i]",
              "min": "in0[i] < in1[i] ? in0[i] : in1[i]",
              "max": "in0[i] > in1[i] ? in0[i] : in1[i]"}[kind]
        lines.append(f"for (i = 0; i < {w}; i++) out[i] = {op};")
    elif kind == "sum":
        arity = params.get("arity", 2)
        terms = " + ".join(f"in{k}[i]" for k in range(arity))
        lines.append(f"for (i = 0; i < {w}; i++) out[i] = {terms};")
    elif kind == "select":
        lines.append(f"for (i = 0; i < {w}; i++) "
                     f"out[i] = in0[{params['index']}];")
    elif kind == "concat":
        lines.append("j = 0;")
        # arity derives from the in-edges; emitted by the caller
        lines.append("/* concatenation filled in by caller */")
    elif kind == "fuzzify":
        sets = params["sets"]
        scale = params.get("scale", 255)
        lines.append("int k = 0;")
        lines.append("for (i = 0; i < %d; i++) {" % max(1, w // len(sets)))
        for a, b, c in sets:
            lines.append(f"  out[k++] = fuzz_tri(in0[i], {a}, {b}, {c}, "
                         f"{scale});")
        lines.append("}")
    elif kind == "defuzz":
        centroids = params["centroids"]
        lines.append(f"static const int cent[{len(centroids)}] = "
                     "{" + ", ".join(str(c) for c in centroids) + "};")
        lines.append("long num = 0, den = 0;")
        lines.append(f"for (i = 0; i < {len(centroids)}; i++) "
                     "{ num += (long)in0[i] * cent[i]; den += in0[i]; }")
        lines.append(f"for (i = 0; i < {w}; i++) "
                     "out[i] = den ? (int)(num / den) : 0;")
    else:
        # generic and remaining kinds: deterministic mixing, matching
        # repro.graph.semantics exactly is only needed for generic
        lines.append("/* behavioural kind '%s': host-evaluated in */"
                     % kind)
        lines.append("/* co-simulation; the C body is schematic.   */")
        lines.append(f"for (i = 0; i < {w}; i++) out[i] = in0 ? in0[i] : 0;")
    return lines


def node_function_c(node: TaskNode, graph: TaskGraph) -> str:
    """One C function implementing ``node``'s behaviour."""
    n_inputs = len(graph.in_edges(node.name))
    args = ", ".join([f"const int *in{i}" for i in range(max(n_inputs, 1))]
                     + ["int *out"])
    lines = [f"/* {node.kind} ({node.words}x{node.width} bit) */",
             f"static void f_{node.name}({args})", "{",
             "  int i = 0, j = 0; (void)i; (void)j;"]
    for statement in _body_of(node, graph):
        lines.append("  " + statement)
    lines.append("}")
    return "\n".join(lines)


def sequencer_order(controller, processor: str) -> list[str] | None:
    """Node order a controller's sequencer walks, via the kernel view.

    Follows the sequencer automaton's chain from ``idle`` back to
    ``idle``, collecting the ``start_*`` actions in firing order.
    Returns ``None`` when the controller has no sequencer for
    ``processor``.
    """
    sequencer = controller.sequencers.get(processor)
    if sequencer is None:
        return None
    automaton = sequencer.to_automaton()
    symbols = automaton.symbols
    order: list[str] = []
    state = automaton.initial
    visited: set[int] = set()
    while state not in visited:
        visited.add(state)
        transitions = automaton.out(state)
        if not transitions:
            break
        if len(transitions) != 1:
            # a projected schedule chain has exactly one successor per
            # state; anything else and the derived order would silently
            # follow an arbitrary branch
            raise ValueError(
                f"sequencer of {processor!r} is not a chain: state "
                f"{automaton.name_of(state)!r} has {len(transitions)} "
                f"successors")
        transition = transitions[0]
        for action in symbols.names_of(transition.actions):
            if action.startswith("start_"):
                order.append(action[len("start_"):])
        state = transition.dst
    return order


def software_to_c(graph: TaskGraph, partition: Partition,
                  schedule: Schedule, plan: CommPlan,
                  processor: str, controller=None) -> str:
    """The complete C program of one processor.

    With ``controller`` (a synthesized
    :class:`~repro.controllers.SystemController`) the main-loop order is
    derived from the hardware sequencer's automaton and cross-checked
    against the schedule -- the generated software provably mirrors the
    synthesized hardware chain.
    """
    order = [e.node for e in schedule.on_resource(processor)]
    if controller is not None:
        mirrored = sequencer_order(controller, processor)
        if mirrored is not None and mirrored != order:
            raise ValueError(
                f"sequencer of {processor!r} walks {mirrored}, schedule "
                f"says {order}: controller and schedule disagree")
    lines = [
        f"/* Generated by repro (COOL co-synthesis reproduction).",
        f" * Software partition of {graph.name!r} for processor "
        f"{processor!r}.",
        " * Schedule order: " + (", ".join(order) if order else "(empty)"),
        " */",
        "",
        "#include <stdint.h>",
        "",
        f"#define CTRL_BASE 0x{CONTROL_BASE:04X}",
        "#define START_REG(n) (*(volatile int *)(CTRL_BASE + 2 * (n)))",
        "#define DONE_REG(n)  (*(volatile int *)(CTRL_BASE + 2 * (n) + 1))",
        "",
        "static int fuzz_tri(int x, int a, int b, int c, int scale)",
        "{",
        "  if (x <= a || x >= c) return 0;",
        "  if (x <= b) return scale * (x - a) / (b - a ? b - a : 1);",
        "  return scale * (c - x) / (c - b ? c - b : 1);",
        "}",
        "",
    ]

    # memory-mapped cell addresses for this processor's cut edges
    for edge in graph.edges:
        if edge.name not in plan.channels:
            continue
        channel = plan.channel(edge.name)
        touches_proc = processor in (
            partition.resource_of(edge.src), partition.resource_of(edge.dst))
        if channel.is_memory_mapped and touches_proc:
            cell = channel.cell
            lines.append(
                f"#define MEM_{edge.name.upper()} "
                f"((volatile int *)0x{cell.address:04X}) "
                f"/* {cell.words} words */")
    lines.append("")

    # local buffers for values produced and consumed on this processor
    for name in order:
        node = graph.node(name)
        lines.append(f"static int buf_{name}[{node.words}];")
    lines.append("")

    for name in order:
        lines.append(node_function_c(graph.node(name), graph))
        lines.append("")

    lines.append("int main(void)")
    lines.append("{")
    lines.append("  for (;;) {")
    for index, name in enumerate(order):
        node = graph.node(name)
        lines.append(f"    /* node {name} ({node.kind}) */")
        lines.append(f"    while (!START_REG({index})) {{ /* wait */ }}")
        call_args = []
        for edge in graph.in_edges(name):
            if partition.resource_of(edge.src) == processor:
                call_args.append(f"buf_{edge.src}")
            else:
                call_args.append(f"(const int *)MEM_{edge.name.upper()}")
        if not call_args:
            call_args.append("0")
        lines.append(f"    f_{name}({', '.join(call_args)}, buf_{name});")
        for edge in graph.out_edges(name):
            if partition.resource_of(edge.dst) != processor \
                    and edge.name in plan.channels \
                    and plan.channel(edge.name).is_memory_mapped:
                lines.append(f"    for (int i = 0; i < {edge.words}; i++)")
                lines.append(f"      MEM_{edge.name.upper()}[i] = "
                             f"buf_{name}[i];")
        lines.append(f"    DONE_REG({index}) = 1;")
    lines.append("  }")
    lines.append("  return 0;")
    lines.append("}")
    return "\n".join(lines) + "\n"
