"""Code generation: VHDL, C, board netlists, and structural checking."""

from .vhdl import (HEADER, datapath_to_vhdl, fsm_guard_literals,
                   fsm_to_vhdl, guard_literal_count)
from .vhdl_check import VhdlCheckError, check_vhdl
from .c import node_function_c, sequencer_order, software_to_c
from .netlist import Component, Net, Netlist, generate_netlist, netlist_text

__all__ = [
    "HEADER", "datapath_to_vhdl", "fsm_guard_literals", "fsm_to_vhdl",
    "guard_literal_count",
    "VhdlCheckError", "check_vhdl", "node_function_c", "sequencer_order",
    "software_to_c",
    "Component", "Net", "Netlist", "generate_netlist", "netlist_text",
]
