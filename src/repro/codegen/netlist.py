"""Board-level netlist generation (paper Fig. 4).

The generated netlist wires the processing units (processor cards,
FPGAs, the memory card, the bus card) to the synthesized pieces: system
controller, data-path controllers, I/O controller and bus arbiter.  The
paper's Fig. 4 shows exactly this picture; :func:`generate_netlist`
reproduces it for any partitioned system, and :func:`netlist_text`
renders the component/net listing the benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..comm.refine import CommPlan
from ..controllers.system_controller import SystemController
from ..graph.partition import IO_RESOURCE, Partition
from ..platform.architecture import TargetArchitecture

__all__ = ["Component", "Net", "Netlist", "generate_netlist", "netlist_text"]


@dataclass(frozen=True)
class Component:
    """One board-level component instance."""

    name: str
    kind: str      # processor | fpga | memory | bus | controller | arbiter
    device: str    # device/model or host resource


@dataclass(frozen=True)
class Net:
    """One named connection from a driver pin to sink pins."""

    name: str
    driver: str            # "component.pin"
    sinks: tuple[str, ...]  # ("component.pin", ...)


@dataclass
class Netlist:
    """A complete generated net-list."""

    name: str
    components: list[Component] = field(default_factory=list)
    nets: list[Net] = field(default_factory=list)

    def component(self, name: str) -> Component:
        for c in self.components:
            if c.name == name:
                return c
        raise KeyError(f"no component {name!r}")

    def add_component(self, component: Component) -> None:
        if any(c.name == component.name for c in self.components):
            raise ValueError(f"duplicate component {component.name!r}")
        self.components.append(component)

    def add_net(self, net: Net) -> None:
        known = {c.name for c in self.components}
        for endpoint in (net.driver,) + net.sinks:
            component = endpoint.split(".", 1)[0]
            if component not in known:
                raise ValueError(f"net {net.name!r} references unknown "
                                 f"component {component!r}")
        self.nets.append(net)

    def nets_of(self, component: str) -> list[Net]:
        prefix = component + "."
        return [n for n in self.nets
                if n.driver.startswith(prefix)
                or any(s.startswith(prefix) for s in n.sinks)]

    def validate(self) -> list[str]:
        problems = []
        names = [n.name for n in self.nets]
        if len(names) != len(set(names)):
            problems.append("duplicate net names")
        connected = {e.split(".", 1)[0]
                     for n in self.nets
                     for e in (n.driver,) + n.sinks}
        for component in self.components:
            if component.name not in connected:
                problems.append(f"component {component.name!r} is "
                                f"unconnected")
        return problems

    def stats(self) -> dict:
        kinds: dict[str, int] = {}
        for c in self.components:
            kinds[c.kind] = kinds.get(c.kind, 0) + 1
        return {"components": len(self.components), "nets": len(self.nets),
                "by_kind": kinds}


def _unit_component(resource: str, arch: TargetArchitecture) -> str:
    """Netlist component name hosting a processing resource."""
    if resource == IO_RESOURCE:
        return "io_controller"
    return resource


def generate_netlist(partition: Partition, arch: TargetArchitecture,
                     controller: SystemController,
                     plan: CommPlan) -> Netlist:
    """Build the Fig. 4 netlist of one implementation."""
    graph = partition.graph
    netlist = Netlist(f"board_{graph.name}")

    # -- components -----------------------------------------------------
    netlist.add_component(Component("sysctl", "controller",
                                    controller.name))
    netlist.add_component(Component("io_controller", "controller", "ioc"))
    netlist.add_component(Component("arbiter", "arbiter", "bus_arbiter"))
    for proc in arch.processors:
        netlist.add_component(Component(proc.name, "processor", proc.model))
    for fpga in arch.fpgas:
        netlist.add_component(Component(fpga.name, "fpga", fpga.model))
        if partition.nodes_on(fpga.name):
            netlist.add_component(Component(
                f"dpc_{fpga.name}", "controller", fpga.name))
    netlist.add_component(Component(arch.memory.name, "memory",
                                    f"{arch.memory.size_bytes // 1024}kB"))
    netlist.add_component(Component(arch.bus.name, "bus",
                                    f"{arch.bus.width_bits}-bit"))

    # -- control nets: start/done per node, reset per unit ---------------
    for node in graph.nodes:
        resource = partition.resource_of(node.name)
        unit = _unit_component(resource, arch)
        target = f"dpc_{unit}" if arch.is_hardware(resource) else unit
        netlist.add_net(Net(f"start_{node.name}",
                            driver=f"sysctl.start_{node.name}",
                            sinks=(f"{target}.start_{node.name}",)))
        netlist.add_net(Net(f"done_{node.name}",
                            driver=f"{target}.done_{node.name}",
                            sinks=(f"sysctl.done_{node.name}",)))
    for resource in partition.resources_used:
        unit = _unit_component(resource, arch)
        target = f"dpc_{unit}" if arch.is_hardware(resource) else unit
        netlist.add_net(Net(f"reset_{resource}",
                            driver=f"sysctl.reset_{resource}",
                            sinks=(f"{target}.rst",)))

    # -- board wiring: every processing card sits on the bus ------------
    on_bus = ["io_controller"] + [p.name for p in arch.processors] \
        + [f.name for f in arch.fpgas]
    for unit in on_bus:
        netlist.add_net(Net(f"bus_attach_{unit}",
                            driver=f"{unit}.bus_port",
                            sinks=(f"{arch.bus.name}.port_{unit}",)))
    netlist.add_net(Net("bus_memory",
                        driver=f"{arch.bus.name}.mem_port",
                        sinks=(f"{arch.memory.name}.bus",)))

    # -- bus masters: units with memory-mapped channels + the controller -
    masters: list[str] = ["sysctl"]
    for channel in plan.memory_mapped():
        for resource in (channel.channel.producer_unit,
                         channel.channel.consumer_unit):
            unit = _unit_component(resource, arch)
            if unit not in masters:
                masters.append(unit)
    for master in masters:
        netlist.add_net(Net(f"req_{master}",
                            driver=f"{master}.bus_req",
                            sinks=("arbiter.req_" + master,)))
        netlist.add_net(Net(f"gnt_{master}",
                            driver=f"arbiter.gnt_{master}",
                            sinks=(f"{master}.bus_gnt",)))
    if "sysctl" not in on_bus:
        netlist.add_net(Net("bus_attach_sysctl",
                            driver="sysctl.bus_port",
                            sinks=(f"{arch.bus.name}.port_sysctl",)))

    # -- direct point-to-point channels ----------------------------------
    for channel in plan.direct():
        producer = _unit_component(channel.channel.producer_unit, arch)
        consumer = _unit_component(channel.channel.consumer_unit, arch)
        netlist.add_net(Net(f"direct_{channel.edge}",
                            driver=f"{producer}.d_{channel.edge}",
                            sinks=(f"{consumer}.d_{channel.edge}",)))

    # -- environment ports ------------------------------------------------
    for node in graph.inputs():
        netlist.add_net(Net(f"pad_{node.name}",
                            driver=f"io_controller.pad_{node.name}",
                            sinks=(f"io_controller.port_{node.name}",)))
    for node in graph.outputs():
        netlist.add_net(Net(f"pad_{node.name}",
                            driver=f"io_controller.port_{node.name}",
                            sinks=(f"io_controller.pad_{node.name}",)))

    problems = netlist.validate()
    if problems:
        raise ValueError("generated inconsistent netlist:\n  - "
                         + "\n  - ".join(problems))
    return netlist


def netlist_text(netlist: Netlist) -> str:
    """Readable component + net listing (the Fig. 4 artefact)."""
    lines = [f"netlist {netlist.name}", "", "components:"]
    for c in netlist.components:
        lines.append(f"  {c.name:<16} {c.kind:<11} {c.device}")
    lines.append("")
    lines.append(f"nets ({len(netlist.nets)}):")
    for n in netlist.nets:
        sinks = ", ".join(n.sinks)
        lines.append(f"  {n.name:<28} {n.driver} -> {sinks}")
    return "\n".join(lines)
