"""Structural checking of generated VHDL.

The 1998 flow handed the generated VHDL to Synopsys; offline, this
module plays the front-end acceptance role: it tokenizes the text and
checks the structural invariants that catch real emitter bugs --
balanced design units and compound statements, declared-before-driven
signals, port/entity consistency.  It is intentionally not a full VHDL
parser; it is the contract the code generator is tested against.
"""

from __future__ import annotations

import re

__all__ = ["check_vhdl", "VhdlCheckError"]


class VhdlCheckError(ValueError):
    """Raised by :func:`check_vhdl` when the text is malformed."""


_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _strip_comments(text: str) -> str:
    return "\n".join(line.split("--", 1)[0] for line in text.splitlines())


def check_vhdl(text: str) -> list[str]:
    """Return a list of structural problems (empty = accepted)."""
    problems: list[str] = []
    code = _strip_comments(text)
    lower = code.lower()

    # ------------------------------------------------------------------
    # bracket-style balance of compound constructs
    # ------------------------------------------------------------------
    counts = {
        "entity": len(re.findall(r"\bentity\s+\w+\s+is\b", lower)),
        "end entity": len(re.findall(r"\bend\s+entity\b", lower)),
        "architecture": len(re.findall(
            r"\barchitecture\s+\w+\s+of\b", lower)),
        "end architecture": len(re.findall(r"\bend\s+architecture\b", lower)),
        "process": len(re.findall(r"\bprocess\b\s*\(", lower)),
        "end process": len(re.findall(r"\bend\s+process\b", lower)),
        "case": len(re.findall(r"(?<!end )\bcase\b", lower)),
        "end case": len(re.findall(r"\bend\s+case\b", lower)),
    }
    for opener, closer in (("entity", "end entity"),
                           ("architecture", "end architecture"),
                           ("process", "end process"),
                           ("case", "end case")):
        if counts[opener] != counts[closer]:
            problems.append(f"unbalanced {opener}: {counts[opener]} opened, "
                            f"{counts[closer]} closed")

    # if/end if balance ("elsif" never matches \bif\b; "end if" excluded)
    n_if = len(re.findall(r"(?<!end )\bif\b", lower))
    n_end_if = len(re.findall(r"\bend\s+if\b", lower))
    if n_if != n_end_if:
        problems.append(f"unbalanced if: {n_if} opened, {n_end_if} closed")

    # ------------------------------------------------------------------
    # declared-before-driven: every `x <=` target must be a declared
    # signal, port or variable
    # ------------------------------------------------------------------
    declared: set[str] = set()
    for m in re.finditer(r"\bsignal\s+([\w\s,]+?):", lower):
        for name in m.group(1).split(","):
            declared.add(name.strip())
    # ports: "name : in|out|inout type"
    for m in re.finditer(r"(\w+)\s*:\s*(?:in|out|inout)\b", lower):
        declared.add(m.group(1))
    # array-typed signals used with indexing: regs(0) etc. handled by
    # stripping the index before lookup
    for m in re.finditer(r"^\s*(\w+)\s*(?:\([\w\s+*-]+\))?\s*<=", lower,
                         re.MULTILINE):
        target = m.group(1)
        if target not in declared:
            problems.append(f"assignment to undeclared signal {target!r}")

    # each architecture must reference an existing entity
    entities = {m.group(1) for m in
                re.finditer(r"\bentity\s+(\w+)\s+is\b", lower)}
    for m in re.finditer(r"\barchitecture\s+\w+\s+of\s+(\w+)\s+is\b", lower):
        if m.group(1) not in entities:
            problems.append(f"architecture of unknown entity {m.group(1)!r}")

    return problems
