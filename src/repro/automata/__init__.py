"""Shared automaton kernel: one core, one minimizer, one executor.

``repro.stg`` and ``repro.controllers.fsm`` are thin views over this
package; see :mod:`repro.automata.core` for the design notes.
"""

from .core import (AutomataError, Automaton, AutomatonBuilder, SymbolTable,
                   Transition)
from .encoding import encode_automaton, encode_names
from .executor import Firing, SequentialRunner, TokenExecutor
from .minimize import (PartitionRefinement, minimize_automaton, quotient,
                       refine_partition)
from .product import (CompositionConfig, SynchronousComposition,
                      internal_signals, synchronous_product)

__all__ = [
    "AutomataError", "Automaton", "AutomatonBuilder", "SymbolTable",
    "Transition", "encode_automaton", "encode_names", "Firing",
    "SequentialRunner", "TokenExecutor", "PartitionRefinement",
    "minimize_automaton", "quotient", "refine_partition",
    "CompositionConfig", "SynchronousComposition", "internal_signals",
    "synchronous_product",
]
