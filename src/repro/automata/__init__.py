"""Shared automaton kernel: one core, one minimizer, one executor.

``repro.stg`` and ``repro.controllers.fsm`` are thin views over this
package; see :mod:`repro.automata.core` for the design notes.
"""

from .bisim import BisimResult, distinguishing_trace, weak_bisimilar
from .core import (AutomataError, Automaton, AutomatonBuilder, SymbolTable,
                   Transition)
from .encoding import encode_automaton, encode_names
from .executor import Firing, SequentialRunner, TokenExecutor
from .minimize import (PartitionRefinement, minimize_automaton, quotient,
                       refine_partition)
from .product import (CompositionConfig, ProductEnvironment,
                      SynchronousComposition, internal_signals,
                      reachable_automaton, synchronous_product)
from .simplify import (SimplifyReport, simplify_automaton_guards,
                       state_care_node)
from .symbolic import (ClassVerdict, LazyStepSystem, SymbolicEquivalence,
                       reachable_set_summary, symbolic_trace_equivalence)

__all__ = [
    "AutomataError", "Automaton", "AutomatonBuilder", "SymbolTable",
    "Transition", "encode_automaton", "encode_names", "Firing",
    "SequentialRunner", "TokenExecutor", "PartitionRefinement",
    "minimize_automaton", "quotient", "refine_partition",
    "BisimResult", "distinguishing_trace", "weak_bisimilar",
    "CompositionConfig", "ProductEnvironment", "SynchronousComposition",
    "internal_signals", "reachable_automaton", "synchronous_product",
    "SimplifyReport", "simplify_automaton_guards", "state_care_node",
    "ClassVerdict", "LazyStepSystem", "SymbolicEquivalence",
    "reachable_set_summary", "symbolic_trace_equivalence",
]
