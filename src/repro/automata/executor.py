"""The one step/trace executor of the automaton kernel.

Two execution disciplines share the interned :class:`~.core.Automaton`
representation, the latching model and the trace format:

* :class:`TokenExecutor` -- marked-graph (token) semantics for
  concurrent graphs: a state activates once all its incoming
  transitions fired, an active state's transition fires as soon as its
  latched conditions hold, each structurally distinct transition fires
  at most once per activation.  This is the reference semantics of the
  STG (:class:`repro.stg.StgExecutor` is a name-level view of it).
* :class:`SequentialRunner` -- prioritized Mealy semantics for
  controller FSMs: per clock edge the highest-priority enabled
  transition of the *single* current state fires; outputs are the
  transition's actions plus the Moore outputs of the departed state.
  ``Fsm.step`` / ``Fsm.simulate`` and every FSM inside the synchronous
  composition (:mod:`repro.automata.product`) run on it.

Both operate purely on symbol IDs; views translate names at the edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .core import Automaton, AutomataError

__all__ = ["Firing", "TokenExecutor", "SequentialRunner"]


@dataclass(frozen=True)
class Firing:
    """Record of one transition firing (trace entry)."""

    step: int
    src: int
    dst: int
    actions: tuple[int, ...]


class TokenExecutor:
    """Marked-graph interpreter of one automaton activation.

    ``final`` names the states whose activation completes the run (the
    STG's global DONE state).  Conditions are latched: once a signal was
    asserted during the activation it stays usable, modelling done-flag
    registers.  Within a step, transitions fire to a fixed point -- an
    unguarded chain collapses into one step, matching a controller that
    walks action states faster than the units it observes.
    """

    __slots__ = ("automaton", "final", "latched", "active", "fired_in",
                 "fired_out", "trace", "step_count", "_fired_keys")

    def __init__(self, automaton: Automaton,
                 final: Iterable[int] = ()) -> None:
        if automaton.initial is None:
            raise AutomataError(
                f"automaton {automaton.name!r} has no initial state")
        self.automaton = automaton
        self.final = frozenset(final)
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Start a fresh activation."""
        self.latched: set[int] = set()
        self.active: set[int] = {self.automaton.initial}
        self.fired_in = [0] * len(self.automaton)
        self.fired_out = [0] * len(self.automaton)
        self.trace: list[Firing] = []
        self.step_count = 0
        self._fired_keys: set[tuple] = set()

    @property
    def done(self) -> bool:
        """True once a final state has activated."""
        return any(s in self.active for s in self.final)

    def snapshot(self) -> tuple:
        """Hashable snapshot of the activation state.

        Captures exactly what determines future behaviour -- latched
        signals, active states, firing counters and the fired-once
        markers.  The trace and step counter are diagnostics, not
        semantics, so they are excluded (and reset by :meth:`restore`);
        two configurations reached along different paths therefore
        snapshot equal, which is what lets reachability explorers use
        snapshots as state identities.
        """
        return (frozenset(self.latched), frozenset(self.active),
                tuple(self.fired_in), tuple(self.fired_out),
                frozenset(self._fired_keys))

    def done_in(self, snapshot: tuple) -> bool:
        """Would :attr:`done` hold in ``snapshot``, without restoring it?

        Lives next to :meth:`snapshot` on purpose: callers must not
        index into the snapshot tuple themselves.
        """
        _, active, _, _, _ = snapshot
        return any(s in active for s in self.final)

    def restore(self, snapshot: tuple) -> None:
        """Load a :meth:`snapshot`; trace/step diagnostics start fresh."""
        latched, active, fired_in, fired_out, fired_keys = snapshot
        self.latched = set(latched)
        self.active = set(active)
        self.fired_in = list(fired_in)
        self.fired_out = list(fired_out)
        self._fired_keys = set(fired_keys)
        self.trace = []
        self.step_count = 0

    # ------------------------------------------------------------------
    def step(self, signals: Iterable[int] | None = None,
             max_rounds: int | None = None) -> list[int]:
        """Latch ``signals``, fire enabled transitions, return the
        emitted action IDs in firing order.

        By default transitions fire to a fixed point -- an unguarded
        chain collapses into one step.  ``max_rounds`` bounds the
        number of firing rounds instead: with ``max_rounds=1`` only the
        states active at the start of the step fire, which exposes the
        intermediate configurations a cycle-stepped controller walks
        through (the granularity the composition verifier compares at).
        """
        if signals:
            self.latched.update(signals)
        self.step_count += 1
        emitted: list[int] = []
        automaton = self.automaton
        latched = self.latched
        name_of = automaton.name_of
        rounds = 0
        progress = True
        while progress and (max_rounds is None or rounds < max_rounds):
            progress = False
            rounds += 1
            for state in sorted(self.active, key=name_of):
                for transition in automaton.out(state):
                    key = (transition.src, transition.dst,
                           transition.actions)
                    if key in self._fired_keys:
                        continue
                    guard = transition.guard
                    if guard is not None:
                        if not guard.eval(latched):
                            continue
                    elif not all(c in latched
                                 for c in transition.conditions):
                        continue
                    self._fire(transition, key)
                    emitted.extend(transition.actions)
                    progress = True
        return emitted

    def run(self, signal_schedule: Sequence[Iterable[int]],
            max_extra_steps: int = 1000) -> list[int]:
        """Feed a signal trace, then run until done; returns all actions."""
        actions: list[int] = []
        for signals in signal_schedule:
            actions.extend(self.step(signals))
        extra = 0
        while not self.done and extra < max_extra_steps:
            before = len(self.trace)
            actions.extend(self.step())
            extra += 1
            if len(self.trace) == before:
                break  # no progress without new signals
        return actions

    # ------------------------------------------------------------------
    def _fire(self, transition, key: tuple) -> None:
        self.trace.append(Firing(self.step_count, transition.src,
                                 transition.dst, transition.actions))
        self._fired_keys.add(key)
        self.fired_out[transition.src] += 1
        self.fired_in[transition.dst] += 1
        # source deactivates when all its out-transitions fired
        if self.fired_out[transition.src] == \
                len(self.automaton.out(transition.src)):
            self.active.discard(transition.src)
        # destination activates when all its in-transitions fired
        if self.fired_in[transition.dst] == \
                self.automaton.in_count(transition.dst):
            self.active.add(transition.dst)

    def action_trace(self) -> list[tuple[int, ...]]:
        """Per-firing action tuples, in firing order (minimization oracle)."""
        return [f.actions for f in self.trace if f.actions]


class SequentialRunner:
    """Prioritized Mealy stepping over a single current state.

    Stateless with respect to the run: callers carry the current state
    index, so one runner instance serves any number of concurrent
    simulations of the same automaton.
    """

    __slots__ = ("automaton",)

    def __init__(self, automaton: Automaton) -> None:
        self.automaton = automaton

    def step(self, state: int,
             inputs: set[int]) -> tuple[int, tuple[int, ...]]:
        """One clock edge: the highest-priority enabled transition fires.

        Returns the next state and the asserted outputs (Mealy actions
        plus the Moore outputs of the *current* state), sorted by signal
        name.  With no enabled transition the machine stays put.
        """
        automaton = self.automaton
        moore = automaton.outputs_of(state)
        for transition in automaton.out(state):
            if transition.enabled(inputs):
                return transition.dst, self._sorted_by_name(
                    set(transition.actions) | set(moore))
        return state, self._sorted_by_name(set(moore))

    def trace(self, state: int, input_trace: Sequence[Iterable[int]]
              ) -> list[tuple[int, tuple[int, ...]]]:
        """Run from ``state``; one (state, outputs) pair per cycle."""
        log: list[tuple[int, tuple[int, ...]]] = []
        for inputs in input_trace:
            state, outputs = self.step(state, set(inputs))
            log.append((state, outputs))
        return log

    def _sorted_by_name(self, sids: set[int]) -> tuple[int, ...]:
        name_of = self.automaton.symbols.name_of
        return tuple(sorted(sids, key=name_of))
