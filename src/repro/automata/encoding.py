"""State encodings for code generation.

Binary (minimal-width counter), one-hot (one flip-flop per state, the
XC4000-friendly choice) and gray (single-bit-change sequence) encodings
over an ordered state list.  Both the FSM layer and the VHDL emitter
consume this -- the encoding lives in the kernel so every view assigns
identical bit patterns to identical automata.
"""

from __future__ import annotations

from typing import Sequence

from .core import Automaton, AutomataError

__all__ = ["encode_names", "encode_automaton"]

SCHEMES = ("binary", "one_hot", "gray")


def encode_names(names: Sequence[str], scheme: str = "binary"
                 ) -> dict[str, str]:
    """Assign a bit pattern to every name, in list order."""
    n = len(names)
    if n == 0:
        raise AutomataError("no states to encode")
    if scheme == "one_hot":
        return {s: format(1 << i, f"0{n}b") for i, s in enumerate(names)}
    width = max(1, (n - 1).bit_length())
    if scheme == "binary":
        return {s: format(i, f"0{width}b") for i, s in enumerate(names)}
    if scheme == "gray":
        return {s: format(i ^ (i >> 1), f"0{width}b")
                for i, s in enumerate(names)}
    raise AutomataError(f"unknown encoding scheme {scheme!r}")


def encode_automaton(automaton: Automaton, scheme: str = "binary"
                     ) -> dict[str, str]:
    """State-name to bit-pattern map of ``automaton``."""
    return encode_names(automaton.state_names, scheme)
