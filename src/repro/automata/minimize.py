"""The one partition-refinement minimizer behind every state-machine view.

Signature-based refinement with a worklist: states start partitioned by
their declared key + Moore outputs; a block is re-examined only when the
block of some successor changed, and each split enqueues exactly the
predecessor blocks it can have invalidated (Hopcroft-style scheduling).
This replaces two older implementations -- the whole-signature-recompute
loop of ``Fsm.minimize`` and the equivalence-merge pass of
``repro.stg.minimize`` -- which recomputed the signature of *every*
state on *every* iteration.

Signatures come in two flavours:

* ``ordered=False`` -- a frozenset of ``(conditions, actions,
  successor-block)`` triples: structural equivalence for concurrent
  token-semantics graphs (STGs);
* ``ordered=True`` -- the tuple of triples in declaration order:
  transition priority is observable for sequential Mealy machines, so
  two states merge only when their prioritized cascades agree.

Representative selection prefers the initial state of its block (the
canonical entry name callers reference must survive the merge) and is
otherwise the earliest-declared state, so minimization is deterministic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..symbolic import BddEngine
from .core import Automaton, AutomatonBuilder

__all__ = ["PartitionRefinement", "refine_partition", "quotient",
           "minimize_automaton"]


def _semantic_signature(automaton: Automaton, block_of: list[int],
                        ordered: bool):
    """Block signatures over canonical BDD guards (guard_canonical mode).

    Per state the outgoing transitions are precomputed once by
    :func:`repro.automata.simplify.effective_branches` -- for ordered
    automata the guards are the cascade's disjoint *effective* guards
    (``g_i and not (g_1 or ... or g_{i-1})``), dead branches dropped
    and same-``(dst, actions)`` branches pre-merged -- and each
    signature merges the nodes of triples sharing ``(actions, successor
    block)`` by disjunction.  Node indices are canonical within the one
    shared engine, so the frozenset of ``(merged node, actions, block)``
    is a semantic state signature: priority order and guard syntax are
    abstracted, the input->outcome map is not.
    """
    from .simplify import effective_branches
    engine = BddEngine()
    branches = [
        [(node, actions, dst)
         for node, dst, actions in effective_branches(automaton, state,
                                                      engine, ordered)]
        for state in range(len(automaton))]

    if ordered:
        # disjoint effective guards make cross-transition disjunction
        # sound: the input->outcome map is preserved exactly
        def signature(state: int):
            merged: dict[tuple, int] = {}
            for node, actions, dst in branches[state]:
                key = (actions, block_of[dst])
                seen = merged.get(key)
                merged[key] = node if seen is None \
                    else engine.or_(seen, node)
            return frozenset((node, actions, block)
                             for (actions, block), node in merged.items())
    else:
        # token semantics: transitions fire individually (activation
        # thresholds count them), so guards are canonicalized but
        # parallel transitions are not fused
        def signature(state: int):
            return frozenset((node, actions, block_of[dst])
                             for node, actions, dst in branches[state])

    return signature


@dataclass(frozen=True)
class PartitionRefinement:
    """Result of refining an automaton's states into equivalence blocks.

    Blocks are numbered densely in order of their earliest member, so
    two runs over the same automaton produce identical numberings.
    """

    block_of: tuple[int, ...]        #: state index -> block id
    representative: tuple[int, ...]  #: block id -> representative state

    @property
    def n_blocks(self) -> int:
        return len(self.representative)

    @property
    def merged(self) -> int:
        """How many states the refinement removed."""
        return len(self.block_of) - len(self.representative)


def refine_partition(automaton: Automaton,
                     ordered: bool = False,
                     guard_canonical: bool = False) -> PartitionRefinement:
    """Coarsest behaviour-preserving partition of the automaton's states.

    ``guard_canonical=True`` switches to *semantic* signatures built on
    the shared BDD engine: every transition's firing condition becomes a
    canonical node, transitions to the same successor block with the
    same actions are merged by guard disjunction, and -- for ordered
    (prioritized Mealy) automata -- the cascade is first rewritten into
    its disjoint *effective* guards, so two states whose cascades
    differ syntactically but pick the same (successor block, actions)
    for every input valuation land in one block.  Strictly at least as
    coarse as the syntactic signatures, never coarser than behaviour
    allows.  The default syntactic path stays BDD-free (its cost gates
    the controller-synthesis benchmark).
    """
    n = len(automaton)
    if n == 0:
        return PartitionRefinement((), ())

    # initial partition: declared key + Moore outputs
    seed: dict[tuple, int] = {}
    block_of = [0] * n
    blocks: dict[int, set[int]] = {}
    for state in range(n):
        key = (automaton.key_of(state), automaton.outputs_of(state))
        bid = seed.setdefault(key, len(seed))
        block_of[state] = bid
        blocks.setdefault(bid, set()).add(state)
    next_bid = len(seed)

    preds: list[list[int]] = [[] for _ in range(n)]
    for t in automaton.transitions:
        preds[t.dst].append(t.src)

    out = automaton.out
    wrap = tuple if ordered else frozenset

    if guard_canonical:
        signature = _semantic_signature(automaton, block_of, ordered)
    elif automaton.has_guards():
        # syntactic, but guard-backed transitions keyed by their cover
        def signature(state: int):
            return wrap((t.guard_key(), t.actions, block_of[t.dst])
                        for t in out(state))
    else:
        def signature(state: int):
            return wrap((t.conditions, t.actions, block_of[t.dst])
                        for t in out(state))

    worklist: deque[int] = deque(b for b, members in blocks.items()
                                 if len(members) > 1)
    queued = set(worklist)
    while worklist:
        bid = worklist.popleft()
        queued.discard(bid)
        members = blocks[bid]
        if len(members) <= 1:
            continue
        groups: dict[object, list[int]] = {}
        for state in sorted(members):
            groups.setdefault(signature(state), []).append(state)
        if len(groups) == 1:
            continue
        # the largest group keeps the block id (fewest reassignments);
        # ties break on the smallest member for determinism
        split = sorted(groups.values(), key=lambda g: (-len(g), g[0]))
        blocks[bid] = set(split[0])
        touched: set[int] = set()
        for group in split[1:]:
            new_bid = next_bid
            next_bid += 1
            blocks[new_bid] = set(group)
            for state in group:
                block_of[state] = new_bid
                touched.update(preds[state])
            if len(group) > 1 and new_bid not in queued:
                worklist.append(new_bid)
                queued.add(new_bid)
        if len(blocks[bid]) > 1 and bid not in queued:
            worklist.append(bid)
            queued.add(bid)
        for pred in touched:
            pb = block_of[pred]
            if len(blocks[pb]) > 1 and pb not in queued:
                worklist.append(pb)
                queued.add(pb)

    # densify block ids in order of earliest member; pick representatives
    first_member: dict[int, int] = {}
    for state in range(n):
        first_member.setdefault(block_of[state], state)
    dense = {bid: rank for rank, bid in
             enumerate(sorted(first_member, key=first_member.get))}
    representative = [first_member[bid]
                      for bid in sorted(first_member, key=first_member.get)]
    initial = automaton.initial
    if initial is not None:
        representative[dense[block_of[initial]]] = initial
    return PartitionRefinement(
        tuple(dense[b] for b in block_of), tuple(representative))


def quotient(automaton: Automaton,
             refinement: PartitionRefinement,
             representative_only: bool = False) -> Automaton:
    """The merged automaton: representative-named states, transitions
    deduplicated in declaration (priority) order.

    ``representative_only`` emits each block's transitions from its
    representative state alone instead of the union over all members.
    With syntactic signatures the two coincide (members of a block have
    identical rewritten transition sets); with the semantic signatures
    of ``refine_partition(guard_canonical=True)`` members may implement
    the same input->outcome map through *different* cascades, and
    interleaving two cascades can put a shadowed low-priority
    transition in front of the branch that should win -- the
    representative's own cascade is always a correct implementation of
    its block.
    """
    builder = AutomatonBuilder(automaton.name)
    sym = automaton.symbols
    for rep in refinement.representative:
        builder.add_state(automaton.name_of(rep),
                          outputs=sym.names_of(automaton.outputs_of(rep)),
                          key=automaton.key_of(rep))
    block_of = refinement.block_of
    rep_name = [automaton.name_of(r) for r in refinement.representative]
    if representative_only:
        transitions = [t for rep in refinement.representative
                       for t in automaton.out(rep)]
    else:
        transitions = automaton.transitions
    seen: set[tuple] = set()
    for t in transitions:
        src = rep_name[block_of[t.src]]
        dst = rep_name[block_of[t.dst]]
        key = (src, dst, t.guard_key(), t.actions)
        if key in seen:
            continue
        seen.add(key)
        if t.guard is not None:
            builder.add_transition(src, dst,
                                   guard_cover=automaton.named_cover(t.guard),
                                   actions=sym.names_of(t.actions))
        else:
            builder.add_transition(src, dst,
                                   conditions=sym.names_of(t.conditions),
                                   actions=sym.names_of(t.actions))
    initial = None
    if automaton.initial is not None:
        initial = rep_name[block_of[automaton.initial]]
    return builder.build(initial=initial)


def minimize_automaton(automaton: Automaton, ordered: bool = False,
                       simplify_guards: bool = False,
                       care_sets=None
                       ) -> tuple[Automaton, PartitionRefinement]:
    """Minimize ``automaton``; returns the quotient and the refinement.

    ``simplify_guards=True`` runs the symbolic pipeline: semantic
    (guard-canonical) refinement, representative-only quotient, and a
    final :func:`repro.automata.simplify.simplify_automaton_guards`
    pass that merges transitions to the same successor by guard
    disjunction (ordered automata), prunes dead branches and minimizes
    every guard's cover -- exploiting the reachability don't-cares in
    ``care_sets`` (a mapping ``state name -> iterable of observed input
    valuations``, e.g. harvested from a materialized
    :func:`repro.automata.reachable_automaton` product) when given.
    The default path is unchanged and BDD-free.
    """
    if not simplify_guards:
        refinement = refine_partition(automaton, ordered=ordered)
        if refinement.merged == 0:
            return automaton, refinement
        return quotient(automaton, refinement), refinement
    from .simplify import simplify_automaton_guards
    refinement = refine_partition(automaton, ordered=ordered,
                                  guard_canonical=True)
    merged = automaton if refinement.merged == 0 \
        else quotient(automaton, refinement, representative_only=True)
    return simplify_automaton_guards(merged, ordered=ordered,
                                     care_sets=care_sets), refinement
