"""The one partition-refinement minimizer behind every state-machine view.

Signature-based refinement with a worklist: states start partitioned by
their declared key + Moore outputs; a block is re-examined only when the
block of some successor changed, and each split enqueues exactly the
predecessor blocks it can have invalidated (Hopcroft-style scheduling).
This replaces two older implementations -- the whole-signature-recompute
loop of ``Fsm.minimize`` and the equivalence-merge pass of
``repro.stg.minimize`` -- which recomputed the signature of *every*
state on *every* iteration.

Signatures come in two flavours:

* ``ordered=False`` -- a frozenset of ``(conditions, actions,
  successor-block)`` triples: structural equivalence for concurrent
  token-semantics graphs (STGs);
* ``ordered=True`` -- the tuple of triples in declaration order:
  transition priority is observable for sequential Mealy machines, so
  two states merge only when their prioritized cascades agree.

Representative selection prefers the initial state of its block (the
canonical entry name callers reference must survive the merge) and is
otherwise the earliest-declared state, so minimization is deterministic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .core import Automaton, AutomatonBuilder

__all__ = ["PartitionRefinement", "refine_partition", "quotient",
           "minimize_automaton"]


@dataclass(frozen=True)
class PartitionRefinement:
    """Result of refining an automaton's states into equivalence blocks.

    Blocks are numbered densely in order of their earliest member, so
    two runs over the same automaton produce identical numberings.
    """

    block_of: tuple[int, ...]        #: state index -> block id
    representative: tuple[int, ...]  #: block id -> representative state

    @property
    def n_blocks(self) -> int:
        return len(self.representative)

    @property
    def merged(self) -> int:
        """How many states the refinement removed."""
        return len(self.block_of) - len(self.representative)


def refine_partition(automaton: Automaton,
                     ordered: bool = False) -> PartitionRefinement:
    """Coarsest behaviour-preserving partition of the automaton's states."""
    n = len(automaton)
    if n == 0:
        return PartitionRefinement((), ())

    # initial partition: declared key + Moore outputs
    seed: dict[tuple, int] = {}
    block_of = [0] * n
    blocks: dict[int, set[int]] = {}
    for state in range(n):
        key = (automaton.key_of(state), automaton.outputs_of(state))
        bid = seed.setdefault(key, len(seed))
        block_of[state] = bid
        blocks.setdefault(bid, set()).add(state)
    next_bid = len(seed)

    preds: list[list[int]] = [[] for _ in range(n)]
    for t in automaton.transitions:
        preds[t.dst].append(t.src)

    out = automaton.out
    wrap = tuple if ordered else frozenset

    def signature(state: int):
        return wrap((t.conditions, t.actions, block_of[t.dst])
                    for t in out(state))

    worklist: deque[int] = deque(b for b, members in blocks.items()
                                 if len(members) > 1)
    queued = set(worklist)
    while worklist:
        bid = worklist.popleft()
        queued.discard(bid)
        members = blocks[bid]
        if len(members) <= 1:
            continue
        groups: dict[object, list[int]] = {}
        for state in sorted(members):
            groups.setdefault(signature(state), []).append(state)
        if len(groups) == 1:
            continue
        # the largest group keeps the block id (fewest reassignments);
        # ties break on the smallest member for determinism
        split = sorted(groups.values(), key=lambda g: (-len(g), g[0]))
        blocks[bid] = set(split[0])
        touched: set[int] = set()
        for group in split[1:]:
            new_bid = next_bid
            next_bid += 1
            blocks[new_bid] = set(group)
            for state in group:
                block_of[state] = new_bid
                touched.update(preds[state])
            if len(group) > 1 and new_bid not in queued:
                worklist.append(new_bid)
                queued.add(new_bid)
        if len(blocks[bid]) > 1 and bid not in queued:
            worklist.append(bid)
            queued.add(bid)
        for pred in touched:
            pb = block_of[pred]
            if len(blocks[pb]) > 1 and pb not in queued:
                worklist.append(pb)
                queued.add(pb)

    # densify block ids in order of earliest member; pick representatives
    first_member: dict[int, int] = {}
    for state in range(n):
        first_member.setdefault(block_of[state], state)
    dense = {bid: rank for rank, bid in
             enumerate(sorted(first_member, key=first_member.get))}
    representative = [first_member[bid]
                      for bid in sorted(first_member, key=first_member.get)]
    initial = automaton.initial
    if initial is not None:
        representative[dense[block_of[initial]]] = initial
    return PartitionRefinement(
        tuple(dense[b] for b in block_of), tuple(representative))


def quotient(automaton: Automaton,
             refinement: PartitionRefinement) -> Automaton:
    """The merged automaton: representative-named states, transitions
    deduplicated in declaration (priority) order."""
    builder = AutomatonBuilder(automaton.name)
    sym = automaton.symbols
    for rep in refinement.representative:
        builder.add_state(automaton.name_of(rep),
                          outputs=sym.names_of(automaton.outputs_of(rep)),
                          key=automaton.key_of(rep))
    block_of = refinement.block_of
    rep_name = [automaton.name_of(r) for r in refinement.representative]
    seen: set[tuple] = set()
    for t in automaton.transitions:
        src = rep_name[block_of[t.src]]
        dst = rep_name[block_of[t.dst]]
        key = (src, dst, t.conditions, t.actions)
        if key in seen:
            continue
        seen.add(key)
        builder.add_transition(src, dst,
                               conditions=sym.names_of(t.conditions),
                               actions=sym.names_of(t.actions))
    initial = None
    if automaton.initial is not None:
        initial = rep_name[block_of[automaton.initial]]
    return builder.build(initial=initial)


def minimize_automaton(automaton: Automaton, ordered: bool = False
                       ) -> tuple[Automaton, PartitionRefinement]:
    """Minimize ``automaton``; returns the quotient and the refinement."""
    refinement = refine_partition(automaton, ordered=ordered)
    if refinement.merged == 0:
        return automaton, refinement
    return quotient(automaton, refinement), refinement
