"""Synchronous composition and product of communicating Mealy automata.

The synthesized system controller is a *set of communicating FSMs*: a
phase FSM and one sequencer per processing unit, talking over latched
channels (``go``, ``phase_done_*``) while the environment's done pulses
are latched into a flag register cleared by ``clear_flags``.  This
module gives that composition a kernel-level home:

* :class:`SynchronousComposition` -- the lazy product: all components
  step once per cycle on the shared input view; hidden channel signals
  emitted in cycle *t* become visible from cycle *t+1* until the
  composition flushes.  This is the execution model of
  :class:`repro.controllers.ControllerHarness` and of the co-simulated
  controller.
* :func:`synchronous_product` -- the materialized product automaton:
  explicit BFS over reachable composite configurations with transitions
  labelled by external input pulses, so the composed behaviour can be
  minimized, fingerprinted and compared like any other automaton.

The composition semantics is deliberately exactly the synthesized
hardware's: per-cycle lockstep, one-cycle channel delay, latch-and-hold
flags, per-component consume-once broadcast channels.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Sequence

from .core import Automaton, AutomataError, AutomatonBuilder
from .executor import SequentialRunner

__all__ = ["CompositionConfig", "SynchronousComposition",
           "composition_stepper", "internal_signals", "ProductEnvironment",
           "reachable_automaton", "synchronous_product"]


def internal_signals(components: Sequence[Automaton]) -> tuple[str, ...]:
    """Signals produced by one component and consumed by another.

    These are the composition's hidden channels: they never cross the
    composition boundary, they ride the internal latches instead.
    """
    produced: set[str] = set()
    consumed: set[str] = set()
    for component in components:
        produced.update(component.output_names())
        consumed.update(component.input_names())
    return tuple(sorted(produced & consumed))


@dataclass(frozen=True)
class CompositionConfig:
    """How a set of automata communicate.

    ``internal`` channels are hidden and latched (visible from the
    cycle after emission).  ``clear_action`` names the action that
    clears the external flag latch (the controller's ``clear_flags``).
    ``consume_once`` channels are broadcast-consumed: a component sees
    them only until it first leaves its initial state (the ``go``
    release is one activation per sequencer).  When the component at
    ``flush_component`` sits in one of ``flush_states`` after a cycle,
    internal latches and consume markers reset -- the composition's
    reset phase.
    """

    internal: tuple[str, ...] = ()
    clear_action: str | None = None
    consume_once: tuple[str, ...] = ()
    flush_component: int | None = None
    flush_states: tuple[str, ...] = ()


class SynchronousComposition:
    """Cycle-lockstep execution of communicating automata."""

    def __init__(self, components: Sequence[Automaton],
                 config: CompositionConfig | None = None) -> None:
        if not components:
            raise AutomataError("composition needs at least one component")
        for component in components:
            if component.initial is None:
                raise AutomataError(f"component {component.name!r} has no "
                                    f"initial state")
        self.components = tuple(components)
        if config is None:
            config = CompositionConfig(internal=internal_signals(components))
        self.config = config
        self._runners = [SequentialRunner(c) for c in components]
        self._internal = frozenset(config.internal)
        self._consume_once = frozenset(config.consume_once)
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.states: list[int] = [c.initial for c in self.components]
        #: latched external pulses (the done-flag register)
        self.flags: set[str] = set()
        #: latched hidden channel signals
        self.internal: set[str] = set()
        #: per-component consumed broadcast channels
        self.consumed: list[set[str]] = [set() for _ in self.components]
        self.actions_log: list[tuple[str, ...]] = []

    @property
    def state_names(self) -> tuple[str, ...]:
        return tuple(c.name_of(s)
                     for c, s in zip(self.components, self.states))

    def configuration(self) -> tuple:
        """Hashable snapshot of the composite configuration."""
        return (tuple(self.states), frozenset(self.flags),
                frozenset(self.internal),
                tuple(frozenset(c) for c in self.consumed))

    @staticmethod
    def component_states(configuration: tuple) -> tuple[int, ...]:
        """The per-component state indices inside a
        :meth:`configuration` key.  Lives next to the layout definition
        on purpose: consumers of configuration keys (e.g. completion
        predicates over product states) must not index into the tuple
        themselves."""
        states, _, _, _ = configuration
        return states

    @staticmethod
    def configuration_parts(configuration: tuple
                            ) -> tuple[tuple[int, ...], frozenset,
                                       frozenset, tuple]:
        """The full ``(states, flags, internal, consumed)`` layout of a
        :meth:`configuration` key (same contract as
        :meth:`component_states`: consumers must not unpack the tuple
        themselves).  Used by the guard don't-care harvester to replay
        what each component could see in a reachable configuration."""
        states, flags, internal, consumed = configuration
        return states, flags, internal, consumed

    # ------------------------------------------------------------------
    def cycle(self, pulses: Iterable[str] | None = None,
              held: Iterable[str] | None = None) -> list[str]:
        """One lockstep clock edge.

        ``pulses`` are latched into the flag register before stepping;
        ``held`` signals are visible this cycle only (e.g. ``restart``).
        Returns the externally visible actions in emission order.
        """
        if pulses:
            self.flags.update(pulses)
        inputs = self.flags | self.internal | set(held or ())

        emitted: list[str] = []
        for index, (component, runner) in enumerate(
                zip(self.components, self._runners)):
            visible = inputs - self.consumed[index]
            state = self.states[index]
            new_state, out_ids = runner.step(
                state, component.symbols.ids_of(visible))
            if state == component.initial and new_state != component.initial:
                self.consumed[index] |= self._consume_once
            self.states[index] = new_state
            emitted.extend(component.symbols.names_of(out_ids))

        external: list[str] = []
        for action in emitted:
            if action == self.config.clear_action:
                self.flags.clear()
            elif action in self._internal:
                self.internal.add(action)
            else:
                external.append(action)

        flush = self.config.flush_component
        if flush is not None:
            name = self.components[flush].name_of(self.states[flush])
            if name in self.config.flush_states:
                self.internal.clear()
                for consumed in self.consumed:
                    consumed.clear()
        if external:
            self.actions_log.append(tuple(external))
        return external


class ProductEnvironment:
    """State-dependent input policy for product materialization.

    The base class replays a fixed alphabet in every state (the open
    product).  Subclasses refine which letters are *admissible* in a
    given configuration by overriding :meth:`letters` and fold any
    bookkeeping the policy needs (e.g. which units are busy) into an
    immutable environment state threaded through :meth:`advance`.  The
    environment state is part of the product's state identity, so two
    visits to the same component configuration under different
    environment histories stay distinct.
    """

    def __init__(self, letters: Sequence[Iterable[str]] = ()) -> None:
        self._letters = tuple(frozenset(letter) for letter in letters)

    def initial_state(self) -> Hashable:
        return None

    def letters(self, env_state: Hashable,
                config: Hashable) -> Iterable[frozenset]:
        """Admissible input letters in ``config`` (deterministic order)."""
        return self._letters

    def advance(self, env_state: Hashable, letter: frozenset,
                actions: tuple[str, ...]) -> Hashable:
        """Environment state after one step under ``letter``/``actions``."""
        return None


def reachable_automaton(name: str, initial_config: Hashable,
                        step: Callable[[Hashable, frozenset],
                                       tuple[Hashable, tuple[str, ...]]],
                        *, letters: Sequence[Iterable[str]] = (),
                        environment: ProductEnvironment | None = None,
                        label_of: Callable[[Hashable, int], str] | None = None,
                        max_states: int = 4096) -> Automaton:
    """Materialize the reachable step-transition system of a stepper.

    Generic BFS over the configurations a deterministic ``step(config,
    letter) -> (successor, actions)`` function reaches from
    ``initial_config`` under an input alphabet.  Configurations are
    discovered breadth-first, so state indices are stable distance-then-
    discovery ranks and the result is deterministic.  Both the
    composition product (:func:`synchronous_product`) and the STG
    reference explorer of the composition verifier are views over this
    one materializer.

    ``environment`` decides the letters admissible in each state
    (default: the fixed ``letters`` alphabet everywhere); its state is
    folded into the explored state identity.  The two alphabet sources
    are mutually exclusive -- an environment policy owns its letters
    entirely, so passing both is rejected rather than silently
    preferring one.  Raises :class:`AutomataError` when the reachable
    set exceeds ``max_states``.
    """
    if environment is None:
        environment = ProductEnvironment(letters)
    elif letters:
        raise AutomataError("pass either a fixed letters alphabet or an "
                            "environment policy, not both")

    def state_label(key: tuple, index: int) -> str:
        if label_of is not None:
            return label_of(key[0], index)
        return f"s{index}"

    initial_key = (initial_config, environment.initial_state())
    labels: dict[tuple, str] = {initial_key: state_label(initial_key, 0)}
    builder = AutomatonBuilder(name)
    builder.add_state(labels[initial_key], key=initial_key)
    pending: deque[tuple] = deque([initial_key])
    transitions: list[tuple[str, str, frozenset, tuple[str, ...]]] = []
    while pending:
        key = pending.popleft()
        config, env_state = key
        for letter in environment.letters(env_state, config):
            letter = frozenset(letter)
            successor_config, actions = step(config, letter)
            successor = (successor_config,
                         environment.advance(env_state, letter, actions))
            if successor not in labels:
                if len(labels) >= max_states:
                    raise AutomataError(
                        f"product exceeds {max_states} composite states")
                labels[successor] = state_label(successor, len(labels))
                builder.add_state(labels[successor], key=successor)
                pending.append(successor)
            transitions.append((labels[key], labels[successor],
                                letter, tuple(actions)))
    for src, dst, letter, actions in transitions:
        builder.add_transition(src, dst, conditions=sorted(letter),
                               actions=actions)
    return builder.build(initial=labels[initial_key])


def composition_stepper(components: Sequence[Automaton],
                        config: CompositionConfig | None = None,
                        held: Iterable[str] = ()
                        ) -> tuple[tuple, Callable[[tuple, frozenset],
                                                   tuple[tuple, tuple]]]:
    """``(initial configuration, step function)`` over a scratch composition.

    The step contract of :func:`reachable_automaton`: given a
    configuration key and an input letter, run one composition cycle
    (``held`` signals delivered level-style, the rest latched) and
    return the successor configuration plus the external actions.  Both
    the materializing product below and the lazy step systems of the
    symbolic verification tier (:mod:`repro.automata.symbolic`) drive
    the same scratch composition through this one function, so the two
    tiers cannot diverge on cycle semantics.  The returned step closes
    over one scratch composition and is therefore not thread-safe;
    callers that publish explored systems must finish exploring first.
    """
    scratch = SynchronousComposition(components, config)
    held = frozenset(held)

    def step(config_key: tuple,
             letter: frozenset) -> tuple[tuple, tuple[str, ...]]:
        _restore(scratch, config_key)
        actions = scratch.cycle(pulses=letter - held, held=letter & held)
        return scratch.configuration(), tuple(actions)

    return scratch.configuration(), step


def synchronous_product(components: Sequence[Automaton],
                        config: CompositionConfig | None = None,
                        letters: Sequence[Iterable[str]] | None = None,
                        max_states: int = 4096,
                        environment: ProductEnvironment | None = None,
                        held: Iterable[str] = ()) -> Automaton:
    """Materialize the reachable product automaton of a composition.

    Composite configurations become product states; every cycle under
    an input *letter* (a set of external pulses) becomes a transition
    whose conditions are the letter and whose actions are the external
    outputs of that cycle.  States are explored breadth-first, so the
    ``p<index>[...]`` labels are distance-then-discovery ranks.
    ``letters`` defaults to the silent letter plus one single-pulse
    letter per external input signal -- the alphabet under which
    controller compositions are driven in closed loop; alternatively an
    ``environment`` policy chooses the admissible letters per state
    (and its bookkeeping becomes part of the product state).  Signals
    in ``held`` are delivered level-style for one cycle (command pulses
    like ``restart``) instead of being latched into the flag register.
    Raises :class:`AutomataError` when the reachable set exceeds
    ``max_states``.
    """
    initial, step = composition_stepper(components, config, held)
    if letters is None and environment is None:
        hidden = frozenset(config.internal) if config is not None \
            else frozenset(internal_signals(components))
        externals = sorted({name for c in components
                            for name in c.input_names()} - hidden)
        letters = [frozenset()] + [frozenset({s}) for s in externals]

    def label_of(config_key: tuple, index: int) -> str:
        names = "|".join(c.name_of(s)
                         for c, s in zip(components, config_key[0]))
        return f"p{index}[{names}]"

    return reachable_automaton(
        "x".join(c.name for c in components), initial, step,
        letters=letters or (), environment=environment, label_of=label_of,
        max_states=max_states)


def _restore(composition: SynchronousComposition, config_key: tuple) -> None:
    """Load a configuration snapshot into ``composition``."""
    states, flags, internal, consumed = config_key
    composition.states = list(states)
    composition.flags = set(flags)
    composition.internal = set(internal)
    composition.consumed = [set(c) for c in consumed]
    # the scratch composition is replayed once per (state, letter) edge;
    # nothing reads its log during materialization, so don't grow it
    composition.actions_log.clear()
