"""The shared automaton kernel: one transition-system core for the repo.

Historically the repository carried two disconnected state-machine
stacks -- ``repro.stg`` (Stg + equivalence merging + StgExecutor) and
``repro.controllers.fsm`` (Fsm + its own minimizer and simulator) --
with code generation and co-simulation each consuming a different one.
This package is the single substrate both are thin views over:

* :class:`Automaton` -- an immutable transition system whose states,
  condition signals and action signals are interned to integer IDs
  (one :class:`SymbolTable` per automaton), with a stable
  ``fingerprint()`` so automata are first-class pipeline artifacts;
* :mod:`repro.automata.minimize` -- the one signature-based
  partition-refinement minimizer (worklist-driven, Hopcroft-style
  "process the split block" scheduling);
* :mod:`repro.automata.executor` -- the one step/trace executor pair:
  token (marked-graph) semantics for STGs, sequential prioritized
  Mealy semantics for controller FSMs;
* :mod:`repro.automata.product` -- the synchronous composition /
  product operator for communicating FSMs (the system controller is a
  phase FSM x per-resource sequencers talking over latched channels);
* :mod:`repro.automata.encoding` -- state encodings (binary / one-hot
  / gray) consumed by code generation.

Automata are immutable once built: construct through
:class:`AutomatonBuilder` and treat every exposed tuple as read-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from ..fingerprint import content_hash
from ..symbolic import BddEngine, Guard, guard_from_cover, plain_cube

__all__ = ["AutomataError", "SymbolTable", "Transition", "Automaton",
           "AutomatonBuilder"]


class AutomataError(ValueError):
    """Raised for malformed automata or invalid kernel operations."""


def _stable_repr(value) -> str:
    """Deterministic text form of a state key, across processes.

    ``repr`` of sets/frozensets follows string hash order, which varies
    per process under hash randomization; fingerprints must not.
    """
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_stable_repr(v) for v in value)) + "}"
    if isinstance(value, (tuple, list)):
        return "(" + ",".join(_stable_repr(v) for v in value) + ")"
    if isinstance(value, dict):
        items = sorted((_stable_repr(k), _stable_repr(v))
                       for k, v in value.items())
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    return repr(value)


class SymbolTable:
    """Bidirectional interning of signal names to dense integer IDs."""

    __slots__ = ("_ids", "_names")

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._names: list[str] = []

    def intern(self, name: str) -> int:
        """The ID of ``name``, allocating one on first sight."""
        sid = self._ids.get(name)
        if sid is None:
            sid = len(self._names)
            self._ids[name] = sid
            self._names.append(name)
        return sid

    def id_of(self, name: str) -> int | None:
        """The ID of ``name``, or ``None`` when never interned."""
        return self._ids.get(name)

    def name_of(self, sid: int) -> str:
        return self._names[sid]

    def ids_of(self, names: Iterable[str]) -> set[int]:
        """IDs of the known names in ``names`` (unknown names dropped --
        a signal this automaton never mentions cannot affect it)."""
        ids = self._ids
        return {ids[n] for n in names if n in ids}

    def names_of(self, sids: Iterable[int]) -> tuple[str, ...]:
        names = self._names
        return tuple(names[s] for s in sids)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._ids


class Transition:
    """One interned transition: guarded condition, emitted actions.

    ``conditions`` and ``actions`` are symbol IDs sorted by signal name,
    so structurally equal transitions compare equal regardless of the
    order their signals were declared in.  ``conditions`` denotes a
    conjunction of positive literals -- the zero-cost fast path every
    transition historically had.  A transition whose firing condition
    is richer (negated literals, OR-terms from guard-merging
    minimization) instead carries a BDD-backed
    :class:`~repro.symbolic.Guard` in ``guard``; ``conditions`` is
    ``()`` then and :meth:`enabled` consults the guard.  A plain
    slotted class (not a dataclass): transitions are created in bulk on
    every view conversion, so construction cost matters.  Treat
    instances as immutable.
    """

    __slots__ = ("src", "dst", "conditions", "actions", "guard")

    def __init__(self, src: int, dst: int,
                 conditions: tuple[int, ...] = (),
                 actions: tuple[int, ...] = (),
                 guard: Guard | None = None) -> None:
        self.src = src
        self.dst = dst
        self.conditions = conditions
        self.actions = actions
        self.guard = guard

    def enabled(self, inputs: set[int]) -> bool:
        if self.guard is not None:
            return self.guard.eval(inputs)
        return all(c in inputs for c in self.conditions)

    def guard_key(self) -> tuple:
        """Hashable firing-condition identity (fast path: the literals)."""
        if self.guard is not None:
            return self.guard.key()
        return self.conditions

    def condition_support(self) -> Iterable[int]:
        """Signal IDs the firing condition depends on."""
        if self.guard is not None:
            return self.guard.support()
        return self.conditions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        when = self.guard if self.guard is not None else self.conditions
        return (f"Transition({self.src}->{self.dst}, "
                f"when={when}, do={self.actions})")


class Automaton:
    """An immutable, symbol-interned transition system.

    States are integer indices in insertion order; every state carries
    an optional Moore-output tuple (asserted while residing there) and
    an optional hashable ``key`` used as the minimizer's initial
    partition (e.g. the STG state kind + resource).  Per-state outgoing
    transitions preserve declaration order -- the sequential executor's
    priority order.
    """

    __slots__ = ("name", "symbols", "_state_names", "_index", "_initial",
                 "_transitions", "_out", "_in_count", "_state_outputs",
                 "_state_keys", "_fingerprint", "_obs_summary")

    def __init__(self, name: str, symbols: SymbolTable,
                 state_names: Sequence[str],
                 initial: int | None,
                 transitions: Sequence[Transition],
                 state_outputs: Sequence[tuple[int, ...]],
                 state_keys: Sequence[Hashable]) -> None:
        self.name = name
        self.symbols = symbols
        self._state_names = tuple(state_names)
        self._index = {n: i for i, n in enumerate(self._state_names)}
        if len(self._index) != len(self._state_names):
            raise AutomataError(f"automaton {name!r}: duplicate state names")
        if initial is not None and not 0 <= initial < len(self._state_names):
            raise AutomataError(f"automaton {name!r}: initial state index "
                                f"{initial} out of range")
        self._initial = initial
        self._transitions = tuple(transitions)
        out: list[list[Transition]] = [[] for _ in self._state_names]
        in_count = [0] * len(self._state_names)
        for t in self._transitions:
            out[t.src].append(t)
            in_count[t.dst] += 1
        self._out = tuple(tuple(ts) for ts in out)
        self._in_count = tuple(in_count)
        self._state_outputs = tuple(tuple(o) for o in state_outputs)
        self._state_keys = tuple(state_keys)
        self._fingerprint: str | None = None
        #: Lazy cache of :func:`repro.automata.bisim` observation rows
        #: (name-rendered transitions), shared across projections.
        self._obs_summary = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._state_names)

    @property
    def state_names(self) -> tuple[str, ...]:
        return self._state_names

    @property
    def initial(self) -> int | None:
        return self._initial

    @property
    def transitions(self) -> tuple[Transition, ...]:
        return self._transitions

    def index_of(self, name: str) -> int | None:
        return self._index.get(name)

    def name_of(self, state: int) -> str:
        return self._state_names[state]

    def out(self, state: int) -> tuple[Transition, ...]:
        """Outgoing transitions of ``state`` in priority order."""
        return self._out[state]

    def in_count(self, state: int) -> int:
        """Number of incoming transitions (token-activation threshold)."""
        return self._in_count[state]

    def outputs_of(self, state: int) -> tuple[int, ...]:
        """Moore outputs asserted while residing in ``state``."""
        return self._state_outputs[state]

    def key_of(self, state: int) -> Hashable:
        """The minimizer's initial-partition key of ``state``."""
        return self._state_keys[state]

    # ------------------------------------------------------------------
    def has_guards(self) -> bool:
        """Does any transition carry a BDD-backed guard?"""
        return any(t.guard is not None for t in self._transitions)

    def named_cover(self, guard: Guard) -> tuple:
        """A guard's cover with signal IDs rendered as names."""
        name_of = self.symbols.name_of
        return tuple(tuple((name_of(v), positive) for v, positive in cube)
                     for cube in guard.cover)

    def input_names(self) -> list[str]:
        """All condition signal names (guard support included), sorted."""
        seen: set[int] = set()
        for t in self._transitions:
            if t.guard is not None:
                seen.update(t.guard.support())
            else:
                seen.update(t.conditions)
        return sorted(self.symbols.name_of(s) for s in seen)

    def output_names(self) -> list[str]:
        """All action + Moore signal names, sorted."""
        seen: set[int] = set()
        for t in self._transitions:
            seen.update(t.actions)
        for outs in self._state_outputs:
            seen.update(outs)
        return sorted(self.symbols.name_of(s) for s in seen)

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content hash (independent of interning order)."""
        if self._fingerprint is None:
            sym = self.symbols
            self._fingerprint = content_hash((
                self.name,
                None if self._initial is None
                else self._state_names[self._initial],
                tuple((name, sym.names_of(self._state_outputs[i]),
                       _stable_repr(self._state_keys[i]))
                      for i, name in enumerate(self._state_names)),
                tuple((self._state_names[t.src], self._state_names[t.dst],
                       sym.names_of(t.conditions), sym.names_of(t.actions))
                      if t.guard is None
                      else (self._state_names[t.src],
                            self._state_names[t.dst],
                            sym.names_of(t.conditions),
                            sym.names_of(t.actions),
                            self.named_cover(t.guard))
                      for t in self._transitions)))
        return self._fingerprint

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Automaton({self.name!r}, {len(self)} states, "
                f"{len(self._transitions)} transitions)")


class AutomatonBuilder:
    """Accumulates states/transitions by name, then freezes an Automaton."""

    def __init__(self, name: str = "automaton") -> None:
        self.name = name
        self._symbols = SymbolTable()
        self._state_names: list[str] = []
        self._index: dict[str, int] = {}
        self._transitions: list[Transition] = []
        self._state_outputs: list[tuple[int, ...]] = []
        self._state_keys: list[Hashable] = []
        #: One shared engine per automaton, created on the first
        #: non-plain guard (plain automata never pay for it).
        self._engine: BddEngine | None = None

    def add_state(self, name: str, outputs: Iterable[str] = (),
                  key: Hashable = None) -> int:
        if name in self._index:
            raise AutomataError(f"automaton {self.name!r}: duplicate state "
                                f"{name!r}")
        index = len(self._state_names)
        self._index[name] = index
        self._state_names.append(name)
        self._state_outputs.append(self._intern_signals(outputs))
        self._state_keys.append(key)
        return index

    def add_transition(self, src: str, dst: str,
                       conditions: Iterable[str] = (),
                       actions: Iterable[str] = (),
                       guard_cover: Iterable[Iterable[tuple[str, bool]]]
                       | None = None) -> None:
        """Add a transition guarded by ``conditions`` or ``guard_cover``.

        ``conditions`` is the historical fast path: a conjunction of
        positive signal names.  ``guard_cover`` instead gives the guard
        as a sum-of-products cover -- cubes of ``(signal, polarity)``
        literals -- and may use negated literals and OR-terms.  A cover
        that denotes a plain positive conjunction is transparently
        downgraded to the fast path, so round-tripping simplified
        guards never pessimizes unguarded automata.
        """
        for endpoint in (src, dst):
            if endpoint not in self._index:
                raise AutomataError(f"automaton {self.name!r}: transition "
                                    f"references unknown state {endpoint!r}")
        guard: Guard | None = None
        if guard_cover is not None:
            if not isinstance(conditions, (tuple, list)) or conditions:
                raise AutomataError(
                    f"automaton {self.name!r}: pass either conditions or "
                    f"a guard_cover, not both")
            conditions, guard = self._intern_guard(guard_cover)
        else:
            conditions = self._intern_signals(conditions)
        self._transitions.append(Transition(
            self._index[src], self._index[dst],
            conditions, self._intern_signals(actions), guard))

    def _intern_signals(self, names: Iterable[str]) -> tuple[int, ...]:
        """Intern ``names`` sorted by signal name (canonical order).

        The no-signal and one-signal cases dominate real transitions,
        so they skip the dedup/sort machinery.
        """
        if not isinstance(names, (tuple, list)):
            names = tuple(names)
        if not names:
            return ()
        if len(names) == 1:
            return (self._symbols.intern(names[0]),)
        return tuple(self._symbols.intern(n) for n in sorted(set(names)))

    def _intern_guard(self, guard_cover) -> tuple[tuple[int, ...],
                                                  Guard | None]:
        """Intern a named cover; plain positive conjunctions take the
        fast path.

        The cover is re-minimized through the engine first, so a
        redundant multi-cube cover that *denotes* a plain conjunction
        (e.g. ``a&b&c | a&b&!c``) still downgrades to ``conditions``
        and structurally equal guards store equal covers.
        """
        from ..symbolic import minimal_cover
        cover = tuple(
            tuple(sorted((self._symbols.intern(name), bool(positive))
                         for name, positive in cube))
            for cube in guard_cover)
        cover = tuple(sorted(set(cover)))
        if plain_cube(cover) is None and cover:
            if self._engine is None:
                self._engine = BddEngine()
            node = self._engine.disj(self._engine.cube(cube)
                                     for cube in cover)
            cover = minimal_cover(self._engine, node)
        plain = plain_cube(cover)
        if plain is not None:
            names = self._symbols.names_of(plain)
            return self._intern_signals(names), None
        if self._engine is None:
            self._engine = BddEngine()
        return (), guard_from_cover(self._engine, cover)

    def build(self, initial: str | None = None) -> Automaton:
        if initial is None:
            index = 0 if self._state_names else None
        else:
            if initial not in self._index:
                raise AutomataError(f"automaton {self.name!r}: unknown "
                                    f"initial state {initial!r}")
            index = self._index[initial]
        return Automaton(self.name, self._symbols, self._state_names,
                         index, self._transitions, self._state_outputs,
                         self._state_keys)
