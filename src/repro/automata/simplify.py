"""Symbolic guard simplification over kernel automata.

This module is where the :mod:`repro.symbolic` engine meets the
automaton kernel: it rewrites an automaton's transition guards into
compact, semantically equivalent covers.

For **ordered** (prioritized Mealy) automata the cascade of a state is
first converted into its disjoint *effective* guards (``g_i and not
(g_1 or ... or g_{i-1})``) -- dead branches vanish here -- and branches
picking the same ``(successor, actions)`` outcome are merged by guard
disjunction.  Each surviving branch is then re-covered by the
ESPRESSO-lite extractor, with two sources of don't-care freedom:

* the *cascade* don't-cares: a branch may overlap anything a
  higher-priority branch already takes (the if/elsif order resolves
  it), which is what keeps single-literal cascades single-literal
  instead of sprouting ``not`` terms;
* the *reachability* don't-cares of ``care_sets``: input valuations
  that can never occur while residing in the state (harvested from a
  materialized product, e.g. :func:`repro.automata.reachable_automaton`
  over the controller composition) are free, so a join guard whose
  producer flag is always latched by the time the state is entered
  drops that literal.

For **unordered** (token-semantics) automata, transitions are never
fused -- activation thresholds count individual firings -- but each
guard is still cover-minimized under the reachability don't-cares.

The rewritten automaton preserves states, outputs, keys and the
initial state; plain positive-conjunction guards remain plain (the
builder downgrades single positive cubes), so unguarded consumers see
no representation change.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..symbolic import (FALSE, BddEngine, cover_literals, cover_node,
                        minimal_cover)
from .core import Automaton, AutomatonBuilder

__all__ = ["SimplifyReport", "baseline_literals", "effective_branches",
           "live_prefix", "simplified_state_covers", "state_care_node",
           "simplify_automaton_guards"]


class SimplifyReport(dict):
    """Literal/branch counts of one simplification pass (plain dict)."""


def _guard_node(engine: BddEngine, transition) -> int:
    if transition.guard is not None:
        return cover_node(engine, transition.guard.cover)
    return engine.conj(transition.conditions)


def state_care_node(engine: BddEngine, automaton: Automaton,
                    valuations: Iterable, support: Iterable[int]) -> int:
    """The BDD of the observed input valuations, as minterms over
    ``support``.

    ``valuations`` are the input sets (signal names or IDs) seen in the
    state on any reachable path; only the variables in ``support`` (the
    state's guard support) are constrained -- everything else stays
    free, which keeps the don't-care harvest cheap without giving up
    the literals it can actually remove.
    """
    support = sorted(set(support))
    symbols = automaton.symbols
    minterms = set()
    for valuation in valuations:
        ids = {symbols.id_of(v) if isinstance(v, str) else v
               for v in valuation}
        minterms.add(tuple((var, var in ids) for var in support))
    return engine.disj(engine.cube(minterm) for minterm in minterms)


def effective_branches(automaton: Automaton, state: int, engine: BddEngine,
              ordered: bool) -> list[tuple[int, int, tuple[int, ...]]]:
    """Per-state ``(guard node, dst, actions)`` branches.

    Ordered automata get disjoint effective guards with dead branches
    dropped and same-``(dst, actions)`` branches merged by disjunction
    (first-occurrence order); unordered automata keep one branch per
    transition.
    """
    entries: list[tuple[int, int, tuple[int, ...]]] = []
    if not ordered:
        for t in automaton.out(state):
            entries.append((_guard_node(engine, t), t.dst, t.actions))
        return entries
    taken = FALSE
    merged: dict[tuple[int, tuple[int, ...]], int] = {}
    order: list[tuple[int, tuple[int, ...]]] = []
    for t in automaton.out(state):
        node = _guard_node(engine, t)
        effective = engine.diff(node, taken)
        taken = engine.or_(taken, node)
        if effective == FALSE:
            continue  # dead: fully shadowed by higher-priority branches
        key = (t.dst, t.actions)
        if key in merged:
            merged[key] = engine.or_(merged[key], effective)
        else:
            merged[key] = effective
            order.append(key)
    return [(merged[key], key[0], key[1]) for key in order]


def live_prefix(automaton: Automaton, state: int):
    """The firing cascade's live transitions: everything up to and
    including the first always-enabled one (lower priorities are
    unreachable in ordered semantics)."""
    live = []
    for t in automaton.out(state):
        live.append(t)
        if t.guard is None and not t.conditions:
            break
        if t.guard is not None and t.guard.is_tautology():
            break
    return live


def baseline_literals(automaton: Automaton, state: int,
                      ordered: bool) -> int:
    """Guard literals of the state's original cascade (the cost the
    rewrite must beat).  Ordered automata count only the live prefix --
    exactly what the VHDL emitter would have spelled out."""
    transitions = live_prefix(automaton, state) if ordered \
        else automaton.out(state)
    total = 0
    for t in transitions:
        if t.guard is not None:
            total += cover_literals(t.guard.cover)
        else:
            total += len(t.conditions)
    return total


def simplified_state_covers(automaton: Automaton, state: int,
                            engine: BddEngine, ordered: bool,
                            observed: Iterable | None
                            ) -> list[tuple[tuple, int, tuple[int, ...]]]:
    """Minimized ``(cover, dst, actions)`` branches of one state.

    The shared core of guard simplification -- consumed by both
    :func:`simplify_automaton_guards` and the VHDL emitter's
    ``simplify=True`` path, so cascade don't-cares, reachability
    don't-cares (``observed`` valuations) and the
    tautology-truncation rule cannot drift apart.  Covers are in the
    automaton's signal-ID space.
    """
    branches = effective_branches(automaton, state, engine, ordered)
    dont_care = FALSE
    if observed is not None:
        support: set[int] = set()
        for node, _, _ in branches:
            support.update(engine.support(node))
        if support:
            care = state_care_node(engine, automaton, observed, support)
            dont_care = engine.not_(care)
    taken = FALSE
    simplified: list[tuple[tuple, int, tuple[int, ...]]] = []
    for node, dst, actions in branches:
        if ordered:
            # anything a higher-priority branch takes is free here
            cover = minimal_cover(engine, node,
                                  engine.or_(taken, dont_care))
            taken = engine.or_(taken, node)
        else:
            cover = minimal_cover(engine, node, dont_care)
        simplified.append((cover, dst, actions))
        if ordered and any(not cube for cube in cover):
            break  # tautology arm always fires: the rest is dead
    return simplified


def simplify_automaton_guards(
        automaton: Automaton, ordered: bool = False,
        care_sets: Mapping[str, Iterable] | None = None,
        report: SimplifyReport | None = None) -> Automaton:
    """Rewrite every guard as a minimal cover; see the module docstring.

    ``care_sets`` maps state names to the input valuations observed in
    that state (reachability don't-cares); states missing from the
    mapping are treated as fully cared (no extra freedom).  A state
    whose rewritten cascade would cost more literals than the original
    keeps the original -- simplification never pessimizes.  When
    ``report`` is given it is filled with before/after literal and
    branch counts.
    """
    engine = BddEngine()
    builder = AutomatonBuilder(automaton.name)
    symbols = automaton.symbols
    name_of = symbols.name_of
    for state in range(len(automaton)):
        builder.add_state(automaton.name_of(state),
                          outputs=symbols.names_of(
                              automaton.outputs_of(state)),
                          key=automaton.key_of(state))

    literals_before = 0
    literals_after = 0
    branches_before = 0
    branches_after = 0
    for state in range(len(automaton)):
        branches_before += len(automaton.out(state))
        observed = care_sets.get(automaton.name_of(state)) \
            if care_sets is not None else None
        simplified = simplified_state_covers(automaton, state, engine,
                                             ordered, observed)
        original = baseline_literals(automaton, state, ordered)
        rewritten = sum(cover_literals(cover)
                        for cover, _, _ in simplified)
        literals_before += original
        if rewritten < original or (rewritten == original and
                                    len(simplified)
                                    < len(automaton.out(state))):
            literals_after += rewritten
            branches_after += len(simplified)
            src = automaton.name_of(state)
            for cover, dst, actions in simplified:
                builder.add_transition(
                    src, automaton.name_of(dst),
                    guard_cover=tuple(
                        tuple((name_of(v), positive) for v, positive in cube)
                        for cube in cover),
                    actions=symbols.names_of(actions))
        else:
            # never pessimize: keep the state's original cascade
            literals_after += original
            branches_after += len(automaton.out(state))
            src = automaton.name_of(state)
            for t in automaton.out(state):
                if t.guard is not None:
                    builder.add_transition(
                        src, automaton.name_of(t.dst),
                        guard_cover=automaton.named_cover(t.guard),
                        actions=symbols.names_of(t.actions))
                else:
                    builder.add_transition(
                        src, automaton.name_of(t.dst),
                        conditions=symbols.names_of(t.conditions),
                        actions=symbols.names_of(t.actions))

    if report is not None:
        report.update(literals_before=literals_before,
                      literals_after=literals_after,
                      branches_before=branches_before,
                      branches_after=branches_after)
    initial = None
    if automaton.initial is not None:
        initial = automaton.name_of(automaton.initial)
    return builder.build(initial=initial)
