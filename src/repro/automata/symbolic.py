"""Symbolic verification tier: fixpoint equivalence without the product.

The explicit composition verifier materializes both sides of the check
as :class:`~repro.automata.core.Automaton` objects and hands them to the
τ-saturating bisimulation -- which caps at ``max_states`` and makes the
largest suite design the long pole.  This module is the unbounded tier:

* :class:`LazyStepSystem` -- an on-the-fly interned step-transition
  system.  States are discovered and densely numbered as the check
  needs them; per state the ``(letter, actions, successor)`` step rows
  are computed exactly once and shared by every projection class.  No
  :class:`Automaton` is ever built, no symbol table is populated per
  transition, and there is no ``max_states`` bound.
* :func:`symbolic_trace_equivalence` -- per observable class, a
  determinized fixpoint over τ-closed element sets.  Both step systems
  are deterministic per admissible input letter (every state has one
  silent row and one row per deliverable pulse), so weak bisimilarity
  coincides with weak trace equivalence (the determinacy argument of
  :mod:`repro.automata.bisim`), and trace equivalence is decided
  exactly by a joint breadth-first fixpoint over pairs of τ-closed
  observation sets: the pair frontier is equivalent iff every reachable
  pair enables the same observable labels on both sides.  τ-saturation
  is a per-set transitive-closure fixpoint over the (deterministic)
  silent rows; chain unrolling inserts the same pending-action
  intermediate elements the explicit observation LTS uses, so timing
  skew between the cycle-stepped controllers and the one-burst STG
  stays invisible, exactly as weak equivalence demands.  On failure the
  breadth-first parent links reconstruct the shortest distinguishing
  trace -- the concrete ``?letter`` / ``!action`` counterexample the
  explicit tier would have reported.
* :func:`reachable_set_summary` -- the reachable state-index set as a
  BDD characteristic function over a
  :class:`~repro.symbolic.relation.VariablePairing` block, with an
  optional *relational cross-check*: the same set recomputed from
  nothing but per-letter partitioned transition-relation BDDs by
  :func:`~repro.symbolic.relation.reachable_states` image iteration.
  The composition verifier runs that cross-check on every design small
  enough for the explicit oracle, so the relational layer is re-proved
  against the enumerative explorer on every bench run.

Engineering note on representations: reachable sets and transition
relations live as BDDs (hash-consing makes set equality and the
relational algebra O(1)-ish), while the *frontier sets* inside the pair
fixpoint are sorted element-index tuples -- over a dense index space a
reduced BDD of a small set degenerates to a chain of index cubes, and
the tuple is the same canonical object at a fraction of the constant
factor.  ``docs/SYMBOLIC_VERIFY.md`` carries the full rationale.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Sequence

from ..symbolic import FALSE, TRUE, BddEngine, VariablePairing, \
    reachable_states
from .bisim import INPUT_PREFIX, OUTPUT_PREFIX
from .core import AutomataError
from .product import ProductEnvironment

__all__ = ["LazyStepSystem", "ClassVerdict", "SymbolicEquivalence",
           "symbolic_trace_equivalence", "reachable_set_summary",
           "MAX_PAIR_FIXPOINT"]

#: Safety valve for the determinized pair fixpoint: the subset
#: construction is linear-ish on the determinate systems this tier
#: compares, so hitting this bound means the inputs violate the
#: determinacy contract -- raise (and let ``verify_composition`` fall
#: back with a recorded reason) instead of filling memory.
MAX_PAIR_FIXPOINT = 2_000_000


class LazyStepSystem:
    """Demand-driven interned step graph of a deterministic stepper.

    The lazily-explored twin of
    :func:`repro.automata.product.reachable_automaton`: same
    ``step(config, letter) -> (successor_config, actions)`` contract,
    same :class:`~repro.automata.product.ProductEnvironment` letter
    policy, same state identity ``(config, env_state)`` -- but states
    are interned to dense indices on first visit and step rows are
    tuples of ``(letter_id, action_names, successor_index)``, so
    nothing automaton-shaped (symbol tables, transition objects,
    labels) is ever allocated and there is no state bound.

    Expansion mutates (``rows`` interns successors); a fully
    :meth:`expand_all`-ed system is read-only afterwards and therefore
    safe to share across threads, which is what the verifier's
    fingerprint cache relies on.
    """

    __slots__ = ("name", "_step", "_environment", "_index", "_keys",
                 "_rows", "_letters", "_letter_index", "_actions_interned")

    def __init__(self, name: str, initial_config: Hashable,
                 step: Callable[[Hashable, frozenset],
                                tuple[Hashable, tuple[str, ...]]],
                 environment: ProductEnvironment | None = None) -> None:
        self.name = name
        self._step = step
        self._environment = environment or ProductEnvironment()
        initial_key = (initial_config, self._environment.initial_state())
        self._index: dict[tuple, int] = {initial_key: 0}
        self._keys: list[tuple] = [initial_key]
        self._rows: list[tuple | None] = [None]
        self._letters: list[frozenset] = []
        self._letter_index: dict[frozenset, int] = {}
        #: action tuples recur massively (every silent self-loop, every
        #: done-pulse wait): intern them so rows share one object
        self._actions_interned: dict[tuple, tuple] = {}

    def __len__(self) -> int:
        """States discovered so far (all of them after expand_all)."""
        return len(self._keys)

    def key_of(self, state: int) -> tuple:
        """The ``(config, env_state)`` identity of ``state``."""
        return self._keys[state]

    def letter_of(self, letter_id: int) -> frozenset:
        return self._letters[letter_id]

    @property
    def n_letters(self) -> int:
        return len(self._letters)

    def rows(self, state: int) -> tuple:
        """The step rows of ``state``: ``(letter_id, actions, succ)``.

        Computed once (the step function runs exactly once per
        (state, letter)) and cached; interns any newly discovered
        successor states.
        """
        row = self._rows[state]
        if row is None:
            config, env_state = self._keys[state]
            out = []
            for letter in self._environment.letters(env_state, config):
                letter = frozenset(letter)
                letter_id = self._letter_index.get(letter)
                if letter_id is None:
                    letter_id = len(self._letters)
                    self._letters.append(letter)
                    self._letter_index[letter] = letter_id
                successor_config, actions = self._step(config, letter)
                successor = (successor_config,
                             self._environment.advance(env_state, letter,
                                                       actions))
                succ = self._index.get(successor)
                if succ is None:
                    succ = len(self._keys)
                    self._index[successor] = succ
                    self._keys.append(successor)
                    self._rows.append(None)
                actions = tuple(actions)
                actions = self._actions_interned.setdefault(actions, actions)
                out.append((letter_id, actions, succ))
            row = tuple(out)
            self._rows[state] = row
        return row

    def expand_all(self) -> int:
        """Breadth-first expansion of every reachable state.

        Deterministic: states are numbered in distance-then-discovery
        order under the environment's (deterministic) letter order, the
        same ranks :func:`~repro.automata.product.reachable_automaton`
        assigns.  Returns the number of reachable states.
        """
        cursor = 0
        while cursor < len(self._keys):
            self.rows(cursor)
            cursor += 1
        return cursor

    def iter_rows(self) -> Iterable[tuple[int, int, tuple, int]]:
        """``(state, letter_id, actions, successor)`` over expanded rows."""
        for state, row in enumerate(self._rows):
            if row is None:
                continue
            for letter_id, actions, succ in row:
                yield state, letter_id, actions, succ


# ----------------------------------------------------------------------
# reachable set as a BDD characteristic function (+ relational oracle)
# ----------------------------------------------------------------------
def _interval_below(engine: BddEngine, pairing: VariablePairing,
                    n: int) -> int:
    """Characteristic function of ``{i : i < n}`` over the current block.

    Dense interning makes a system's reachable index set exactly this
    interval predicate, whose reduced BDD is O(bits) nodes -- building
    it in closed form instead of disjoining one cube per state keeps
    the summary O(bits) even for the 60k-state scale designs.
    """
    if n >= 1 << pairing.bits:
        return TRUE  # the block is saturated: every index is in the set
    node = FALSE  # "x < n" with no bits left means x == n: false
    for bit in range(pairing.bits):
        positive = engine.var(pairing.current(bit))
        if n >> bit & 1:
            node = engine.ite(positive, node, TRUE)
        else:
            node = engine.ite(positive, FALSE, node)
    return node


def reachable_set_summary(engine: BddEngine, system: LazyStepSystem,
                          relational_check: bool = False
                          ) -> tuple[int, int, int]:
    """The system's reachable index set as a characteristic function.

    The set ``{0 .. len(system)-1}`` over the current block of an
    interleaved :class:`~repro.symbolic.VariablePairing` (state ``i``
    encoded in binary over the block's bits).  With
    ``relational_check`` the same set is *recomputed* from nothing but
    per-letter partitioned transition-relation BDDs by
    :func:`~repro.symbolic.reachable_states` image iteration and
    compared -- a full-system consistency proof of the relational layer
    against the enumerative explorer.  Returns ``(characteristic node,
    BDD size of it, image iterations)`` (iterations 0 when the
    relational check is skipped).
    """
    bits = max(1, (len(system) - 1).bit_length())
    pairing = VariablePairing(bits)
    reached = _interval_below(engine, pairing, len(system))
    iterations = 0
    if relational_check:
        partitions: dict[int, int] = {}
        for state, letter_id, _actions, succ in system.iter_rows():
            edge = engine.and_(
                pairing.state_cube(engine, state),
                pairing.state_cube(engine, succ, primed=True))
            partitions[letter_id] = engine.or_(
                partitions.get(letter_id, FALSE), edge)
        relations = [partitions[letter_id]
                     for letter_id in sorted(partitions)]
        imaged, iterations = reachable_states(
            engine, pairing.state_cube(engine, 0), relations, pairing,
            disjunctive=True)
        if imaged != reached:
            raise AutomataError(
                f"relational image iteration disagrees with the "
                f"enumerated reachable set of {system.name!r}")
    return reached, engine.size(reached), iterations


# ----------------------------------------------------------------------
# the determinized per-class fixpoint
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClassVerdict:
    """Outcome of one projection class under the symbolic tier."""

    label: str
    equivalent: bool
    pairs: int
    counterexample: tuple[str, ...] = ()
    missing_side: str | None = None

    def explain(self, left_name: str = "the left system",
                right_name: str = "the right system") -> str:
        if self.equivalent:
            return "weakly trace-equivalent"
        if not self.counterexample:
            return "observable labels diverge (no linear counterexample)"
        where = left_name if self.missing_side == "right" else right_name
        return (f"trace {' '.join(self.counterexample)} is possible only "
                f"in {where}")


@dataclass(frozen=True)
class SymbolicEquivalence:
    """Aggregate outcome of the symbolic tier over every class."""

    equivalent: bool
    verdicts: tuple[ClassVerdict, ...]
    left_states: int
    right_states: int
    pairs_checked: int
    image_iterations: int
    bdd_stats: dict


class _Side:
    """Per-system element space shared by every projection class.

    Elements are either plain states (element id == state index) or
    *pending-action intermediates* ``(state, row)`` -- the point inside
    a two-label step where the input letter was consumed but the
    observable action not yet emitted.  Intermediate ids are interned
    globally (class-independent keys), so their cubes and labels are
    shared across classes too.
    """

    __slots__ = ("system", "n_states", "_letter_labels", "_mid_index",
                 "_next_eid")

    def __init__(self, system: LazyStepSystem) -> None:
        self.system = system
        self.n_states = len(system)
        self._letter_labels: list[str | None] = []
        self._mid_index: dict[tuple[int, int], int] = {}
        self._next_eid = self.n_states

    def letter_label(self, letter_id: int) -> str | None:
        labels = self._letter_labels
        while len(labels) <= letter_id:
            names = sorted(self.system.letter_of(len(labels)))
            labels.append(INPUT_PREFIX + "+".join(names) if names else None)
        return labels[letter_id]

    def mid(self, state: int, row: int) -> int:
        eid = self._mid_index.get((state, row))
        if eid is None:
            eid = self._next_eid
            self._next_eid += 1
            self._mid_index[(state, row)] = eid
        return eid


class _ClassView:
    """One side's single-label observation edges under one class.

    Per element the view keeps the (unique -- the environment offers
    silence exactly once per state, so silent rows are deterministic)
    τ-successor in ``_tau`` and the observable edges in ``_obs``.
    The class-restricted action view is memoized per *interned* action
    tuple rather than per state: distinct states overwhelmingly share
    the same few action tuples, so the per-element expansion reduces to
    dictionary lookups.  Closed sets themselves are NOT memoized -- the
    pair fixpoint visits each reachable set pair once and distinct
    pairs carry distinct sets, so such a cache costs memory at the
    60k-state scale designs without ever hitting.
    """

    __slots__ = ("side", "observable", "_tau", "_obs", "_visible")

    #: ``_tau`` sentinel: the element has no silent successor.
    _NO_TAU = -1

    def __init__(self, side: _Side, observable: frozenset[str]) -> None:
        self.side = side
        self.observable = observable
        self._tau: dict[int, int] = {}
        self._obs: dict[int, tuple] = {}
        self._visible: dict[tuple, str | None] = {}

    def _visible_of(self, actions: tuple) -> str | None:
        """The class-visible action of an interned action tuple."""
        visible = [a for a in actions if a in self.observable]
        if len(visible) > 1:
            # the verifier's projection classes guarantee at most one
            # observable action per step (same-step observables are
            # order-indistinguishable); a class violating that is a
            # caller bug, not a verdict
            raise AutomataError(
                f"projection class admits two same-step observables "
                f"{sorted(visible)!r} in {self.side.system.name!r}")
        return visible[0] if visible else None

    def _expand(self, eid: int) -> None:
        """Derive ``eid``'s τ-successor and observable edges.

        Only plain states reach here: pending-action intermediates are
        populated eagerly when their parent state creates them (they
        have no step rows of their own).
        """
        side = self.side
        visible_of = self._visible
        out = []
        tau = self._NO_TAU
        for row_index, (letter_id, actions, succ) in \
                enumerate(side.system.rows(eid)):
            letter = side.letter_label(letter_id)
            if actions in visible_of:
                action = visible_of[actions]
            else:
                action = visible_of[actions] = self._visible_of(actions)
            if letter is None and action is None:
                tau = succ
            elif letter is not None and action is not None:
                mid = side.mid(eid, row_index)
                self._tau[mid] = self._NO_TAU
                self._obs[mid] = ((OUTPUT_PREFIX + action, succ),)
                out.append((letter, mid))
            elif letter is not None:
                out.append((letter, succ))
            else:
                out.append((OUTPUT_PREFIX + action, succ))
        self._tau[eid] = tau
        self._obs[eid] = tuple(out)

    def closure(self, eids: Iterable[int]) -> tuple[int, ...]:
        """τ-closure: the transitive-closure fixpoint over silent rows."""
        tau = self._tau
        seen = set(eids)
        stack = list(seen)
        while stack:
            eid = stack.pop()
            succ = tau.get(eid)
            if succ is None:
                self._expand(eid)
                succ = tau[eid]
            if succ >= 0 and succ not in seen:
                seen.add(succ)
                stack.append(succ)
        return tuple(sorted(seen))

    def successors(self, members: tuple[int, ...]) -> dict[str, tuple]:
        """Closed successor sets of a τ-closed set, per observable label."""
        obs = self._obs
        grouped: dict[str, set[int]] = {}
        for eid in members:
            edges = obs.get(eid)
            if edges is None:
                self._expand(eid)
                edges = obs[eid]
            for label, succ in edges:
                if label in grouped:
                    grouped[label].add(succ)
                else:
                    grouped[label] = {succ}
        return {label: self.closure(targets)
                for label, targets in grouped.items()}


def _check_class(label: str, left: _ClassView, right: _ClassView
                 ) -> ClassVerdict:
    """Joint breadth-first fixpoint over pairs of τ-closed sets."""
    start = (left.closure((0,)), right.closure((0,)))
    seen: dict[tuple, int] = {start: 0}
    parents: list[tuple[int, str | None]] = [(-1, None)]
    queue: deque[tuple] = deque([start])
    pairs = 0
    while queue:
        pair = queue.popleft()
        entry = seen[pair]
        pairs += 1
        left_out = left.successors(pair[0])
        right_out = right.successors(pair[1])
        if left_out.keys() != right_out.keys():
            divergent = sorted(left_out.keys() ^ right_out.keys())[0]
            missing = "right" if divergent in left_out else "left"
            trace: list[str] = [divergent]
            while entry > 0:
                parent, step_label = parents[entry]
                trace.append(step_label)
                entry = parent
            return ClassVerdict(label, False, pairs,
                                tuple(reversed(trace)), missing)
        for step_label in sorted(left_out):
            successor = (left_out[step_label], right_out[step_label])
            if successor not in seen:
                if len(seen) >= MAX_PAIR_FIXPOINT:
                    raise AutomataError(
                        f"pair fixpoint exceeds {MAX_PAIR_FIXPOINT} "
                        f"determinized set pairs (projection {label!r})")
                seen[successor] = len(parents)
                parents.append((seen[pair], step_label))
                queue.append(successor)
    return ClassVerdict(label, True, pairs)


def symbolic_trace_equivalence(
        left: LazyStepSystem, right: LazyStepSystem,
        classes: Sequence[tuple[str, frozenset[str]]],
        engine: BddEngine | None = None,
        relational_check: bool = False) -> SymbolicEquivalence:
    """Weak trace equivalence of two step systems, per projection class.

    Expands both systems fully (the joint fixpoint touches every
    reachable state anyway, and a fully expanded system is immutable),
    builds the reachable-set characteristic functions (with the
    relational image-iteration cross-check when requested), then runs
    the determinized τ-closed pair fixpoint once per class.  Every
    class must agree for the systems to be equivalent; each failing
    class carries its shortest distinguishing trace.
    """
    engine = engine or BddEngine()
    left.expand_all()
    right.expand_all()
    iterations = 0
    set_sizes = []
    for system in (left, right):
        _reached, size, steps = reachable_set_summary(
            engine, system, relational_check=relational_check)
        set_sizes.append(size)
        iterations += steps
    left_side = _Side(left)
    right_side = _Side(right)
    verdicts = []
    pairs_checked = 0
    for label, observable in classes:
        verdict = _check_class(label, _ClassView(left_side, observable),
                               _ClassView(right_side, observable))
        verdicts.append(verdict)
        pairs_checked += verdict.pairs
    return SymbolicEquivalence(
        equivalent=all(v.equivalent for v in verdicts),
        verdicts=tuple(verdicts),
        left_states=len(left),
        right_states=len(right),
        pairs_checked=pairs_checked,
        image_iterations=iterations,
        bdd_stats=dict(engine.stats(),
                       reachable_set_nodes=tuple(set_sizes)))
