"""Kernel-level weak bisimulation between two step automata.

The composition verifier needs to compare two *reactive* transition
systems -- the STG's token-semantics step automaton and the
materialized product of the communicating controllers -- whose states
and cycle timings differ but whose observable behaviour must agree.
This module provides that comparison as a kernel operation:

1. **Observation normalization** -- every transition of a step
   automaton (conditions = the input letter of the step, actions = the
   outputs emitted during it) is unrolled into a chain of single-label
   edges: one ``?letter`` edge for the input, one ``!action`` edge per
   *observable* output.  Note the kernel interns a transition's actions
   sorted by signal name, so *within one step* the chain follows that
   canonical order, not emission order -- two observable actions of the
   same step are order-indistinguishable, and callers who need order
   must ensure at most one observable fires per step (as the composition
   verifier's projection classes do).  Order *across* steps is real.
   Hidden actions vanish; an edge with no labels left becomes an
   internal (τ) move.  Timing skew between the two systems -- the
   controller spreads over clock cycles what the STG fires in one
   burst -- therefore turns into τ-moves, which is exactly what weak
   equivalence abstracts.  The name-rendered transition rows are
   computed once per automaton and cached (projections only re-filter
   the action labels), parallel BDD-guarded edges are fused by guard
   disjunction -- an edge whose guard *implies* a parallel edge's guard
   is skipped before saturation ever sees it -- and deterministic
   τ-chains are compressed away (:func:`_compress_tau_chains`): a state
   whose only move is a single τ-edge is weakly bisimilar to its
   target, so whole silent walks collapse to their endpoint before the
   quadratic-ish saturation runs.
2. **Weak saturation** -- the τ-closure of every state is computed and
   the weak transition relation ``s ⇒ℓ t  iff  s →τ* →ℓ →τ* t`` (plus
   the reflexive-transitive ``⇒τ``) is materialized.  By Milner's
   classic reduction, *strong* bisimilarity of the saturated systems
   coincides with *weak* bisimilarity of the originals.
3. **Partition refinement on the disjoint union** -- the saturated
   systems are dumped into one automaton (states prefixed per side) and
   handed to the one kernel minimizer,
   :func:`repro.automata.minimize.refine_partition`; the systems are
   weakly bisimilar iff both initial states land in the same block.

For diagnostics, :func:`distinguishing_trace` searches the shortest
observable trace present in exactly one side (a determinized BFS over
τ-closed state sets).  The step automata produced by
:func:`repro.automata.product.reachable_automaton` are deterministic
per input letter, and for determinate systems weak bisimilarity and
weak trace equivalence coincide -- so whenever the refinement check
fails, a concrete counterexample trace exists and is reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .core import Automaton, Transition
from .minimize import refine_partition

__all__ = ["BisimResult", "weak_bisimilar", "distinguishing_trace"]

#: Label prefixes of the normalized observation LTS.
INPUT_PREFIX = "?"
OUTPUT_PREFIX = "!"
#: Reserved internal-move label of the saturated union (no signal may
#: carry this name).
TAU_LABEL = "τ"

#: Safety valve for the determinized counterexample search.
_MAX_SEARCH_PAIRS = 200_000


@dataclass(frozen=True)
class BisimResult:
    """Outcome of one weak-bisimulation check.

    ``observable`` echoes the action filter the check ran under
    (``None`` = every action observable).  When the systems are not
    bisimilar, ``counterexample`` is the shortest observable trace --
    ``?letter`` / ``!action`` labels -- that one side can perform and
    the other cannot, and ``missing_side`` names the side that cannot
    (``"left"`` / ``"right"``, matching the argument order).
    """

    bisimilar: bool
    left_states: int
    right_states: int
    blocks: int
    observable: tuple[str, ...] | None
    counterexample: tuple[str, ...] = ()
    missing_side: str | None = None

    def explain(self) -> str:
        if self.bisimilar:
            return "weakly bisimilar"
        if not self.counterexample:
            return "not weakly bisimilar (no linear counterexample found)"
        return (f"trace {' '.join(self.counterexample)} possible only in "
                f"the {'right' if self.missing_side == 'left' else 'left'} "
                f"system")


class _Lts:
    """Normalized single-label LTS (τ edges carry label ``None``)."""

    __slots__ = ("adjacency", "initial")

    def __init__(self, adjacency: list[list[tuple[str | None, int]]],
                 initial: int) -> None:
        self.adjacency = adjacency
        self.initial = initial

    def __len__(self) -> int:
        return len(self.adjacency)


def _canonical_guard_label(guard, name_of) -> str:
    """A label that depends only on the guard's *function* and names.

    Stored covers are not canonical (a redundant cube changes the text
    but not the function) and neither are per-engine covers (interning
    order steers the ISOP variable branching), so the guard is rebuilt
    cube-by-cube in a fresh engine whose variable order is the *name*
    order of the mentioned signals.  The reduced BDD prunes cancelled
    variables, so the node -- and the deterministic ``minimal_cover``
    over it -- depends only on the function and the names: two
    semantically equal guards label identically across automata,
    whatever their stored covers or interning orders.  Cost is linear
    in the cover, not exponential in the support.
    """
    from ..symbolic import BddEngine, minimal_cover, render_cover

    from ..symbolic import plain_cube

    mentioned = sorted({variable for cube in guard.cover
                        for variable, _ in cube}, key=name_of)
    names = [name_of(variable) for variable in mentioned]
    remap = {variable: index for index, variable in enumerate(mentioned)}
    engine = BddEngine()
    onset = engine.disj(
        engine.cube(tuple((remap[variable], positive)
                          for variable, positive in cube))
        for cube in guard.cover)
    cover = minimal_cover(engine, onset)
    plain = plain_cube(cover)
    if plain is not None:
        # a guard that denotes a plain positive conjunction must label
        # exactly like a plain-conditions transition would (a tautology
        # guard returns "" -- no input observation, like conditions=())
        return "+".join(names[index] for index in plain)
    return render_cover(cover, lambda index: names[index])


def _observation_rows(automaton: Automaton) -> list[tuple]:
    """Name-rendered transition rows, computed once per automaton.

    Each row is ``(src, dst, letter label | None, action names, guard |
    None)``.  The rows are projection-independent (input letters are
    always visible, hiding only filters the action names), so they are
    cached on the automaton and shared by every per-class projection of
    the composition verifier.
    """
    rows = automaton._obs_summary
    if rows is None:
        symbols = automaton.symbols
        rows = []
        for t in automaton.transitions:
            if t.guard is not None:
                label = _canonical_guard_label(t.guard, symbols.name_of)
                letter = INPUT_PREFIX + label if label else None
            else:
                names = symbols.names_of(t.conditions)
                letter = INPUT_PREFIX + "+".join(names) if names else None
            rows.append((t.src, t.dst, letter,
                         symbols.names_of(t.actions), t.guard))
        # repro-lint: ignore[FRZ303] -- sanctioned lazy memo: _obs_summary
        # is registered in KERNEL_MEMO_ATTRIBUTES, derived purely from
        # frozen content and invisible to equality and fingerprints
        automaton._obs_summary = rows
    return rows


def _merge_guarded_rows(rows: list[tuple], name_of,
                        observable: frozenset[str] | None) -> list[tuple]:
    """Fuse parallel guard-backed edges; skip implication-subsumed ones.

    Two guard-backed transitions with the same endpoints and the same
    *visible* actions denote one observation -- "an input satisfying
    the guard" -- so their guards merge by disjunction, and a guard
    that implies a parallel guard is dropped outright (the implication
    check runs before the τ-saturation ever sees the edge).  Plain
    transitions pass through untouched: distinct positive letters are
    distinct observations.
    """
    from ..symbolic import minimal_cover
    from ..symbolic.guards import Guard

    merged: list[tuple] = []
    groups: dict[tuple, list[tuple]] = {}
    for row in rows:
        src, dst, letter, actions, guard = row
        if guard is None:
            merged.append(row)
            continue
        visible = actions if observable is None else \
            tuple(a for a in actions if a in observable)
        groups.setdefault((src, dst, visible), []).append(row)
    for (src, dst, visible), members in sorted(groups.items()):
        if len(members) == 1:
            merged.append(members[0])
            continue
        maximal: list = []
        for guard in (row[4] for row in members):
            if any(guard.implies(other) for other in maximal):
                continue  # subsumed edge: skipped before saturation
            maximal = [other for other in maximal
                       if not other.implies(guard)]
            maximal.append(guard)
        engine = maximal[0].engine
        node = engine.disj(guard.node for guard in maximal)
        union = Guard(engine, node, minimal_cover(engine, node))
        label = _canonical_guard_label(union, name_of)
        merged.append((src, dst,
                       INPUT_PREFIX + label if label else None,
                       members[0][3], union))
    return merged


def _normalized_lts(automaton: Automaton,
                    observable: frozenset[str] | None,
                    compress: bool = True) -> _Lts:
    """Unroll a step automaton into the single-label observation LTS.

    Deterministic τ-chains are compressed before the caller saturates
    (see :func:`_compress_tau_chains`); pass ``compress=False`` to get
    the raw unrolled system.
    """
    rows = _observation_rows(automaton)
    if any(row[4] is not None for row in rows):
        rows = _merge_guarded_rows(rows, automaton.symbols.name_of,
                                   observable)
    adjacency: list[list[tuple[str | None, int]]] = \
        [[] for _ in range(len(automaton))]
    for src, dst, letter, actions, _guard in rows:
        labels: list[str] = []
        if letter is not None:
            labels.append(letter)
        for action in actions:
            if observable is None or action in observable:
                labels.append(OUTPUT_PREFIX + action)
        if not labels:
            adjacency[src].append((None, dst))
            continue
        current = src
        for label in labels[:-1]:
            adjacency.append([])
            intermediate = len(adjacency) - 1
            adjacency[current].append((label, intermediate))
            current = intermediate
        adjacency[current].append((labels[-1], dst))
    lts = _Lts(adjacency, automaton.initial or 0)
    return _compress_tau_chains(lts) if compress else lts


def _compress_tau_chains(lts: _Lts) -> _Lts:
    """Collapse deterministic τ-chains before saturation.

    A state whose only move (ignoring a τ self-loop) is a single τ-edge
    is weakly bisimilar to that edge's target: everything it can ever
    do is the target's behaviour behind one internal move, and weak
    equivalence ignores internal moves and divergence alike.  Every
    such state is redirected to the terminal of its chain (τ-cycles
    collapse onto their first-visited member) and dropped from the
    system, which shrinks the τ-closure/saturation work on the long
    silent walks cycle-accurate products produce.
    """
    adjacency = lts.adjacency
    n = len(adjacency)
    chain_next: list[int | None] = [None] * n
    chains = 0
    for state, edges in enumerate(adjacency):
        real = [(label, dst) for label, dst in edges
                if not (label is None and dst == state)]
        if len(real) == 1 and real[0][0] is None:
            chain_next[state] = real[0][1]
            chains += 1
    # rebuilding the LTS is only worth it when chains make up a real
    # fraction of the system; scattered singletons cost more to strip
    # than their closures cost to saturate
    if chains * 16 < n:
        return lts
    terminal: list[int | None] = [None] * n
    for state in range(n):
        if terminal[state] is not None:
            continue
        path: list[int] = []
        on_path: set[int] = set()
        current = state
        while True:
            if terminal[current] is not None:
                end = terminal[current]
                break
            if chain_next[current] is None:
                end = current
                break
            if current in on_path:
                end = current  # pure τ-cycle: first revisited member
                break
            on_path.add(current)
            path.append(current)
            current = chain_next[current]
        for member in path:
            terminal[member] = end
        if terminal[current] is None:
            terminal[current] = end
    keep = sorted({terminal[state] for state in range(n)})
    remap = {old: new for new, old in enumerate(keep)}
    compact: list[list[tuple[str | None, int]]] = []
    for old in keep:
        compact.append([(label, remap[terminal[dst]])
                        for label, dst in adjacency[old]])
    return _Lts(compact, remap[terminal[lts.initial]])


def _tau_closures(lts: _Lts) -> list[frozenset[int]]:
    """Forward τ-reachability (reflexive-transitive) per state."""
    closures: list[frozenset[int]] = []
    for state in range(len(lts)):
        seen = {state}
        stack = [state]
        while stack:
            for label, dst in lts.adjacency[stack.pop()]:
                if label is None and dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        closures.append(frozenset(seen))
    return closures


def _weak_edges(lts: _Lts, closures: list[frozenset[int]]
                ) -> list[dict[str, set[int]]]:
    """The saturated relation: per state, label -> weak successor set."""
    weak: list[dict[str, set[int]]] = []
    for state in range(len(lts)):
        by_label: dict[str, set[int]] = {}
        for reached in closures[state]:
            for label, dst in lts.adjacency[reached]:
                if label is None:
                    continue
                by_label.setdefault(label, set()).update(closures[dst])
        weak.append(by_label)
    return weak


class _SaturatedUnion:
    """Disjoint union of two τ-saturated LTSs, shaped like an automaton.

    Implements exactly the protocol :func:`refine_partition` consumes
    (``len``, ``out``, ``transitions``, ``key_of``, ``outputs_of``,
    ``initial``) without paying the name-interning cost of a full
    :class:`~.core.Automaton` -- the union exists only for one
    refinement run.  Labels are interned to dense IDs shared by both
    sides (τ is ID 0), encoded as single-condition transitions.
    """

    __slots__ = ("_out", "_transitions", "initial")

    def __init__(self, sides) -> None:
        labels: dict[str, int] = {TAU_LABEL: 0}
        out: list[list[Transition]] = []
        for offset, lts, closures, weak in sides:
            for state in range(len(lts)):
                edges = []
                source = offset + state
                for reached in sorted(closures[state]):
                    edges.append(Transition(source, offset + reached, (0,)))
                for label, successors in sorted(weak[state].items()):
                    label_id = labels.setdefault(label, len(labels))
                    for successor in sorted(successors):
                        edges.append(Transition(source, offset + successor,
                                                (label_id,)))
                out.append(edges)
        self._out = out
        self._transitions = [t for edges in out for t in edges]
        self.initial = None

    def __len__(self) -> int:
        return len(self._out)

    @property
    def transitions(self):
        return self._transitions

    def out(self, state: int):
        return self._out[state]

    def key_of(self, state: int):
        return None

    def outputs_of(self, state: int):
        return ()

    def has_guards(self) -> bool:
        return False


def weak_bisimilar(left: Automaton, right: Automaton,
                   observable: Iterable[str] | None = None) -> BisimResult:
    """Are two step automata weakly bisimilar under the given hiding?

    ``observable`` restricts which *actions* stay visible (input
    letters are always visible -- the environments must be driven
    identically); ``None`` keeps every action.  The verdict comes from
    the kernel partition refinement on the τ-saturated disjoint union;
    on failure a shortest distinguishing trace is attached.
    """
    filter_ = frozenset(observable) if observable is not None else None
    left_lts = _normalized_lts(left, filter_)
    right_lts = _normalized_lts(right, filter_)
    left_closures = _tau_closures(left_lts)
    right_closures = _tau_closures(right_lts)
    left_weak = _weak_edges(left_lts, left_closures)
    right_weak = _weak_edges(right_lts, right_closures)

    union = _SaturatedUnion((
        (0, left_lts, left_closures, left_weak),
        (len(left_lts), right_lts, right_closures, right_weak)))

    refinement = refine_partition(union)
    block_of = refinement.block_of
    bisimilar = block_of[left_lts.initial] \
        == block_of[len(left_lts) + right_lts.initial]

    counterexample: tuple[str, ...] = ()
    missing: str | None = None
    if not bisimilar:
        found = _search_distinguishing(
            left_weak, right_weak,
            left_closures[left_lts.initial],
            right_closures[right_lts.initial])
        if found is not None:
            counterexample, missing = found
    return BisimResult(
        bisimilar=bisimilar,
        left_states=len(left_lts), right_states=len(right_lts),
        blocks=refinement.n_blocks,
        observable=tuple(sorted(filter_)) if filter_ is not None else None,
        counterexample=counterexample, missing_side=missing)


def distinguishing_trace(left: Automaton, right: Automaton,
                         observable: Iterable[str] | None = None
                         ) -> tuple[tuple[str, ...], str] | None:
    """Shortest observable trace possible in exactly one system.

    Returns ``(trace, missing_side)`` or ``None`` when the weak trace
    languages agree (trace *equivalence* -- inclusion in both
    directions; for the deterministic step automata the product
    explorers emit, this coincides with weak bisimilarity).
    """
    filter_ = frozenset(observable) if observable is not None else None
    left_lts = _normalized_lts(left, filter_)
    right_lts = _normalized_lts(right, filter_)
    left_closures = _tau_closures(left_lts)
    right_closures = _tau_closures(right_lts)
    return _search_distinguishing(
        _weak_edges(left_lts, left_closures),
        _weak_edges(right_lts, right_closures),
        left_closures[left_lts.initial],
        right_closures[right_lts.initial])


def _search_distinguishing(left_weak: list[dict[str, set[int]]],
                           right_weak: list[dict[str, set[int]]],
                           left_start: frozenset[int],
                           right_start: frozenset[int]
                           ) -> tuple[tuple[str, ...], str] | None:
    """Determinized BFS for the shortest one-sided observable trace.

    Operates on the saturated relation of :func:`_weak_edges`: for a
    τ-closed state set, the weak moves are just the union of its
    members' weak edges, so the same materialization backs both the
    refinement verdict and this counterexample search.
    """
    from collections import deque

    def successors(weak, states: frozenset[int]
                   ) -> dict[str, frozenset[int]]:
        by_label: dict[str, set[int]] = {}
        for state in states:
            for label, dsts in weak[state].items():
                by_label.setdefault(label, set()).update(dsts)
        return {label: frozenset(dsts)
                for label, dsts in by_label.items()}

    start = (left_start, right_start)
    queue: deque[tuple[frozenset[int], frozenset[int], tuple[str, ...]]] = \
        deque([(start[0], start[1], ())])
    seen = {start}
    while queue and len(seen) < _MAX_SEARCH_PAIRS:
        left_set, right_set, trace = queue.popleft()
        from_left = successors(left_weak, left_set)
        from_right = successors(right_weak, right_set)
        for label in sorted(set(from_left) | set(from_right)):
            if label not in from_right:
                return trace + (label,), "right"
            if label not in from_left:
                return trace + (label,), "left"
            pair = (from_left[label], from_right[label])
            if pair not in seen:
                seen.add(pair)
                queue.append((pair[0], pair[1], trace + (label,)))
    return None
