"""Kernel-level weak bisimulation between two step automata.

The composition verifier needs to compare two *reactive* transition
systems -- the STG's token-semantics step automaton and the
materialized product of the communicating controllers -- whose states
and cycle timings differ but whose observable behaviour must agree.
This module provides that comparison as a kernel operation:

1. **Observation normalization** -- every transition of a step
   automaton (conditions = the input letter of the step, actions = the
   outputs emitted during it) is unrolled into a chain of single-label
   edges: one ``?letter`` edge for the input, one ``!action`` edge per
   *observable* output.  Note the kernel interns a transition's actions
   sorted by signal name, so *within one step* the chain follows that
   canonical order, not emission order -- two observable actions of the
   same step are order-indistinguishable, and callers who need order
   must ensure at most one observable fires per step (as the composition
   verifier's projection classes do).  Order *across* steps is real.
   Hidden actions vanish; an edge with no labels left becomes an
   internal (τ) move.  Timing skew between the two systems -- the
   controller spreads over clock cycles what the STG fires in one
   burst -- therefore turns into τ-moves, which is exactly what weak
   equivalence abstracts.
2. **Weak saturation** -- the τ-closure of every state is computed and
   the weak transition relation ``s ⇒ℓ t  iff  s →τ* →ℓ →τ* t`` (plus
   the reflexive-transitive ``⇒τ``) is materialized.  By Milner's
   classic reduction, *strong* bisimilarity of the saturated systems
   coincides with *weak* bisimilarity of the originals.
3. **Partition refinement on the disjoint union** -- the saturated
   systems are dumped into one automaton (states prefixed per side) and
   handed to the one kernel minimizer,
   :func:`repro.automata.minimize.refine_partition`; the systems are
   weakly bisimilar iff both initial states land in the same block.

For diagnostics, :func:`distinguishing_trace` searches the shortest
observable trace present in exactly one side (a determinized BFS over
τ-closed state sets).  The step automata produced by
:func:`repro.automata.product.reachable_automaton` are deterministic
per input letter, and for determinate systems weak bisimilarity and
weak trace equivalence coincide -- so whenever the refinement check
fails, a concrete counterexample trace exists and is reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .core import Automaton, Transition
from .minimize import refine_partition

__all__ = ["BisimResult", "weak_bisimilar", "distinguishing_trace"]

#: Label prefixes of the normalized observation LTS.
INPUT_PREFIX = "?"
OUTPUT_PREFIX = "!"
#: Reserved internal-move label of the saturated union (no signal may
#: carry this name).
TAU_LABEL = "τ"

#: Safety valve for the determinized counterexample search.
_MAX_SEARCH_PAIRS = 200_000


@dataclass(frozen=True)
class BisimResult:
    """Outcome of one weak-bisimulation check.

    ``observable`` echoes the action filter the check ran under
    (``None`` = every action observable).  When the systems are not
    bisimilar, ``counterexample`` is the shortest observable trace --
    ``?letter`` / ``!action`` labels -- that one side can perform and
    the other cannot, and ``missing_side`` names the side that cannot
    (``"left"`` / ``"right"``, matching the argument order).
    """

    bisimilar: bool
    left_states: int
    right_states: int
    blocks: int
    observable: tuple[str, ...] | None
    counterexample: tuple[str, ...] = ()
    missing_side: str | None = None

    def explain(self) -> str:
        if self.bisimilar:
            return "weakly bisimilar"
        if not self.counterexample:
            return "not weakly bisimilar (no linear counterexample found)"
        return (f"trace {' '.join(self.counterexample)} possible only in "
                f"the {'right' if self.missing_side == 'left' else 'left'} "
                f"system")


class _Lts:
    """Normalized single-label LTS (τ edges carry label ``None``)."""

    __slots__ = ("adjacency", "initial")

    def __init__(self, adjacency: list[list[tuple[str | None, int]]],
                 initial: int) -> None:
        self.adjacency = adjacency
        self.initial = initial

    def __len__(self) -> int:
        return len(self.adjacency)


def _normalized_lts(automaton: Automaton,
                    observable: frozenset[str] | None) -> _Lts:
    """Unroll a step automaton into the single-label observation LTS."""
    symbols = automaton.symbols
    adjacency: list[list[tuple[str | None, int]]] = \
        [[] for _ in range(len(automaton))]
    for transition in automaton.transitions:
        labels: list[str] = []
        letter = symbols.names_of(transition.conditions)
        if letter:
            labels.append(INPUT_PREFIX + "+".join(letter))
        for action in symbols.names_of(transition.actions):
            if observable is None or action in observable:
                labels.append(OUTPUT_PREFIX + action)
        if not labels:
            adjacency[transition.src].append((None, transition.dst))
            continue
        current = transition.src
        for label in labels[:-1]:
            adjacency.append([])
            intermediate = len(adjacency) - 1
            adjacency[current].append((label, intermediate))
            current = intermediate
        adjacency[current].append((labels[-1], transition.dst))
    return _Lts(adjacency, automaton.initial or 0)


def _tau_closures(lts: _Lts) -> list[frozenset[int]]:
    """Forward τ-reachability (reflexive-transitive) per state."""
    closures: list[frozenset[int]] = []
    for state in range(len(lts)):
        seen = {state}
        stack = [state]
        while stack:
            for label, dst in lts.adjacency[stack.pop()]:
                if label is None and dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        closures.append(frozenset(seen))
    return closures


def _weak_edges(lts: _Lts, closures: list[frozenset[int]]
                ) -> list[dict[str, set[int]]]:
    """The saturated relation: per state, label -> weak successor set."""
    weak: list[dict[str, set[int]]] = []
    for state in range(len(lts)):
        by_label: dict[str, set[int]] = {}
        for reached in closures[state]:
            for label, dst in lts.adjacency[reached]:
                if label is None:
                    continue
                by_label.setdefault(label, set()).update(closures[dst])
        weak.append(by_label)
    return weak


class _SaturatedUnion:
    """Disjoint union of two τ-saturated LTSs, shaped like an automaton.

    Implements exactly the protocol :func:`refine_partition` consumes
    (``len``, ``out``, ``transitions``, ``key_of``, ``outputs_of``,
    ``initial``) without paying the name-interning cost of a full
    :class:`~.core.Automaton` -- the union exists only for one
    refinement run.  Labels are interned to dense IDs shared by both
    sides (τ is ID 0), encoded as single-condition transitions.
    """

    __slots__ = ("_out", "_transitions", "initial")

    def __init__(self, sides) -> None:
        labels: dict[str, int] = {TAU_LABEL: 0}
        out: list[list[Transition]] = []
        for offset, lts, closures, weak in sides:
            for state in range(len(lts)):
                edges = []
                source = offset + state
                for reached in sorted(closures[state]):
                    edges.append(Transition(source, offset + reached, (0,)))
                for label, successors in sorted(weak[state].items()):
                    label_id = labels.setdefault(label, len(labels))
                    for successor in sorted(successors):
                        edges.append(Transition(source, offset + successor,
                                                (label_id,)))
                out.append(edges)
        self._out = out
        self._transitions = [t for edges in out for t in edges]
        self.initial = None

    def __len__(self) -> int:
        return len(self._out)

    @property
    def transitions(self):
        return self._transitions

    def out(self, state: int):
        return self._out[state]

    def key_of(self, state: int):
        return None

    def outputs_of(self, state: int):
        return ()


def weak_bisimilar(left: Automaton, right: Automaton,
                   observable: Iterable[str] | None = None) -> BisimResult:
    """Are two step automata weakly bisimilar under the given hiding?

    ``observable`` restricts which *actions* stay visible (input
    letters are always visible -- the environments must be driven
    identically); ``None`` keeps every action.  The verdict comes from
    the kernel partition refinement on the τ-saturated disjoint union;
    on failure a shortest distinguishing trace is attached.
    """
    filter_ = frozenset(observable) if observable is not None else None
    left_lts = _normalized_lts(left, filter_)
    right_lts = _normalized_lts(right, filter_)
    left_closures = _tau_closures(left_lts)
    right_closures = _tau_closures(right_lts)
    left_weak = _weak_edges(left_lts, left_closures)
    right_weak = _weak_edges(right_lts, right_closures)

    union = _SaturatedUnion((
        (0, left_lts, left_closures, left_weak),
        (len(left_lts), right_lts, right_closures, right_weak)))

    refinement = refine_partition(union)
    block_of = refinement.block_of
    bisimilar = block_of[left_lts.initial] \
        == block_of[len(left_lts) + right_lts.initial]

    counterexample: tuple[str, ...] = ()
    missing: str | None = None
    if not bisimilar:
        found = _search_distinguishing(
            left_weak, right_weak,
            left_closures[left_lts.initial],
            right_closures[right_lts.initial])
        if found is not None:
            counterexample, missing = found
    return BisimResult(
        bisimilar=bisimilar,
        left_states=len(left_lts), right_states=len(right_lts),
        blocks=refinement.n_blocks,
        observable=tuple(sorted(filter_)) if filter_ is not None else None,
        counterexample=counterexample, missing_side=missing)


def distinguishing_trace(left: Automaton, right: Automaton,
                         observable: Iterable[str] | None = None
                         ) -> tuple[tuple[str, ...], str] | None:
    """Shortest observable trace possible in exactly one system.

    Returns ``(trace, missing_side)`` or ``None`` when the weak trace
    languages agree (trace *equivalence* -- inclusion in both
    directions; for the deterministic step automata the product
    explorers emit, this coincides with weak bisimilarity).
    """
    filter_ = frozenset(observable) if observable is not None else None
    left_lts = _normalized_lts(left, filter_)
    right_lts = _normalized_lts(right, filter_)
    left_closures = _tau_closures(left_lts)
    right_closures = _tau_closures(right_lts)
    return _search_distinguishing(
        _weak_edges(left_lts, left_closures),
        _weak_edges(right_lts, right_closures),
        left_closures[left_lts.initial],
        right_closures[right_lts.initial])


def _search_distinguishing(left_weak: list[dict[str, set[int]]],
                           right_weak: list[dict[str, set[int]]],
                           left_start: frozenset[int],
                           right_start: frozenset[int]
                           ) -> tuple[tuple[str, ...], str] | None:
    """Determinized BFS for the shortest one-sided observable trace.

    Operates on the saturated relation of :func:`_weak_edges`: for a
    τ-closed state set, the weak moves are just the union of its
    members' weak edges, so the same materialization backs both the
    refinement verdict and this counterexample search.
    """
    from collections import deque

    def successors(weak, states: frozenset[int]
                   ) -> dict[str, frozenset[int]]:
        by_label: dict[str, set[int]] = {}
        for state in states:
            for label, dsts in weak[state].items():
                by_label.setdefault(label, set()).update(dsts)
        return {label: frozenset(dsts)
                for label, dsts in by_label.items()}

    start = (left_start, right_start)
    queue: deque[tuple[frozenset[int], frozenset[int], tuple[str, ...]]] = \
        deque([(start[0], start[1], ())])
    seen = {start}
    while queue and len(seen) < _MAX_SEARCH_PAIRS:
        left_set, right_set, trace = queue.popleft()
        from_left = successors(left_weak, left_set)
        from_right = successors(right_weak, right_set)
        for label in sorted(set(from_left) | set(from_right)):
            if label not in from_right:
                return trace + (label,), "right"
            if label not in from_left:
                return trace + (label,), "left"
            pair = (from_left[label], from_right[label])
            if pair not in seen:
                seen.add(pair)
                queue.append((pair[0], pair[1], trace + (label,)))
    return None
