"""The cost model: cached per-node estimates for a whole architecture.

Partitioning algorithms query costs for every (node, resource) pair many
times; :class:`CostModel` computes them once per pair and normalizes
everything to a single *time unit* -- one system-bus clock cycle -- so
heterogeneous clock domains become comparable, which is what the static
schedule and the MILP formulation need.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from ..graph.taskgraph import DataEdge, TaskGraph, TaskNode
from ..platform.architecture import TargetArchitecture
from . import communication, hardware, software

__all__ = ["CostModel", "NodeCost"]


@dataclass(frozen=True)
class NodeCost:
    """All estimates for one node: execution per resource, area per FPGA."""

    node: str
    #: resource name -> execution latency in bus clock ticks
    latency_ticks: tuple
    #: fpga name -> estimated CLB area
    area_clbs: tuple

    def latency_on(self, resource: str) -> int:
        for name, ticks in self.latency_ticks:
            if name == resource:
                return ticks
        raise KeyError(f"no latency estimate of {self.node!r} on {resource!r}")

    def area_on(self, fpga: str) -> int:
        for name, clbs in self.area_clbs:
            if name == fpga:
                return clbs
        raise KeyError(f"no area estimate of {self.node!r} on {fpga!r}")


class CostModel:
    """Per-(node, resource) execution/area/communication estimates.

    All latencies are expressed in *bus clock ticks* (the common time
    base of the board).  A node running on a 20 MHz DSP while the bus
    runs at 10 MHz therefore has its cycle count halved, rounding up.
    """

    def __init__(self, graph: TaskGraph, arch: TargetArchitecture) -> None:
        self.graph = graph
        self.arch = arch
        self._node_cache: dict[str, NodeCost] = {}
        self._edge_cache: dict[str, int] = {}

    # ------------------------------------------------------------------
    def _to_ticks(self, cycles: int, clock_hz: float) -> int:
        """Convert device cycles into bus clock ticks (ceil, >= 1)."""
        seconds = cycles / clock_hz
        return max(1, ceil(seconds * self.arch.bus.clock_hz))

    def node_cost(self, node_name: str) -> NodeCost:
        """Estimates of one node on every resource of the architecture."""
        cached = self._node_cache.get(node_name)
        if cached is not None:
            return cached
        node = self.graph.node(node_name)
        latencies: list[tuple[str, int]] = []
        areas: list[tuple[str, int]] = []
        for proc in self.arch.processors:
            cycles = software.sw_cycles(node, proc)
            latencies.append((proc.name, self._to_ticks(cycles, proc.clock_hz)))
        for fpga in self.arch.fpgas:
            cycles = hardware.hw_cycles(node, fpga)
            latencies.append((fpga.name, self._to_ticks(cycles, fpga.clock_hz)))
            areas.append((fpga.name, hardware.hw_area_clbs(node, fpga)))
        cost = NodeCost(node_name, tuple(latencies), tuple(areas))
        self._node_cache[node_name] = cost
        return cost

    def latency(self, node_name: str, resource: str) -> int:
        """Execution latency of ``node_name`` on ``resource`` in bus ticks.

        I/O nodes execute on the I/O controller; their latency is the bus
        cost of moving the payload in or out of the system.
        """
        node = self.graph.node(node_name)
        if node.is_io:
            return max(1, self.arch.bus.transfer_cycles(node.width, node.words))
        return self.node_cost(node_name).latency_on(resource)

    def area(self, node_name: str, fpga: str) -> int:
        """Estimated CLB area of ``node_name`` if mapped to ``fpga``."""
        return self.node_cost(node_name).area_on(fpga)

    def transfer_ticks(self, edge: DataEdge) -> int:
        """Bus ticks of a full write+read transfer of ``edge``."""
        cached = self._edge_cache.get(edge.name)
        if cached is None:
            cached = communication.transfer_cycles(edge, self.arch)
            self._edge_cache[edge.name] = cached
        return cached

    def write_ticks(self, edge: DataEdge) -> int:
        return communication.write_cycles(edge, self.arch)

    def read_ticks(self, edge: DataEdge) -> int:
        return communication.read_cycles(edge, self.arch)

    # ------------------------------------------------------------------
    def software_bound(self, processor: str | None = None) -> int:
        """Makespan lower bound: every internal node serial on one CPU."""
        procs = [processor] if processor else list(self.arch.processor_names)
        if not procs:
            raise ValueError("architecture has no processor")
        best = None
        for proc in procs:
            total = sum(self.latency(n.name, proc)
                        for n in self.graph.internal_nodes())
            best = total if best is None else min(best, total)
        return int(best or 0)

    def summary(self) -> dict:
        """Per-node cost table used by reports."""
        rows = []
        for node in self.graph.internal_nodes():
            cost = self.node_cost(node.name)
            rows.append({
                "node": node.name,
                "kind": node.kind,
                "latency": dict(cost.latency_ticks),
                "area": dict(cost.area_clbs),
            })
        return {"nodes": rows, "arch": self.arch.name}
