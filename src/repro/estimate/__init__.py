"""Cost estimation: software cycles, hardware latency/area, communication."""

from .software import sw_cycles, sw_seconds
from .hardware import hw_area_clbs, hw_cycles, hw_seconds
from .communication import read_cycles, transfer_cycles, transfer_seconds, write_cycles
from .model import CostModel, NodeCost

__all__ = [
    "sw_cycles", "sw_seconds", "hw_area_clbs", "hw_cycles", "hw_seconds",
    "read_cycles", "transfer_cycles", "transfer_seconds", "write_cycles",
    "CostModel", "NodeCost",
]
