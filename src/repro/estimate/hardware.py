"""Hardware latency and area estimation.

Before high-level synthesis runs, partitioning needs fast estimates of
(a) how many FPGA clock cycles a node takes as a dedicated datapath and
(b) how many CLBs it occupies.  The estimators here mirror OSCAR-era
quick estimation:

* **latency** assumes one functional unit per operation category, so
  operations of the same category execute sequentially while different
  categories may overlap only through pipelining slack -- a deliberately
  conservative serial model (matched against real HLS results in tests);
* **area** prices one functional unit per operation category used, plus
  registers for the node payload and a controller share per state.

The definitive numbers come from :mod:`repro.hls`; the tests assert the
quick estimate is within a factor of the HLS result, which is how such
estimators were validated in practice.
"""

from __future__ import annotations

from math import ceil

from ..graph.semantics import op_mix_of
from ..graph.taskgraph import TaskNode
from ..platform.fpgas import Fpga

__all__ = ["hw_cycles", "hw_seconds", "hw_area_clbs"]

#: Fixed cycles for the start/done handshake of a hardware datapath.
HANDSHAKE_CYCLES = 2


def hw_cycles(node: TaskNode, fpga: Fpga) -> int:
    """Estimated FPGA cycles for one activation of ``node``.

    One *pipelined* functional unit per category (initiation interval 1):
    ``count`` operations of a category cost ``count + latency - 1``
    cycles, and categories execute back to back.  This matches the
    time/area point OSCAR-style HLS reaches with one FU per operator
    type.
    """
    mix = op_mix_of(node)
    latency = fpga.latency_table
    cycles = HANDSHAKE_CYCLES
    for op, count in mix.items():
        if op == "mov" or count <= 0:
            # moves become wires / register transfers inside the datapath
            continue
        cycles += count + latency[op] - 1
    return max(cycles, 1)


def hw_seconds(node: TaskNode, fpga: Fpga) -> float:
    return fpga.seconds(hw_cycles(node, fpga))


def hw_area_clbs(node: TaskNode, fpga: Fpga, scale_bits: bool = True) -> int:
    """Estimated CLB area of a dedicated datapath for ``node``.

    One FU per operation category present in the mix, scaled from the
    16-bit reference tables to the node's width, plus output registers
    and a small controller share.
    """
    mix = op_mix_of(node)
    area = 0.0
    width_scale = node.width / 16.0 if scale_bits else 1.0
    for op, count in mix.items():
        if count <= 0 or op == "mov":
            continue
        area += fpga.area_for(op) * width_scale
    # output register for the produced value
    area += fpga.register_clbs_per_bit * node.width
    # controller share: one state per non-move operation class plus wait/done
    states = sum(1 for op, n in mix.items() if op != "mov" and n) + 2
    area += fpga.controller_clbs_per_state * states
    return max(1, ceil(area))
