"""Software runtime estimation.

Estimates the execution time of one task-graph node on a processor the
way COOL's partitioning phase does: the node's primitive-operation mix
(from :mod:`repro.graph.semantics`) priced by the processor's instruction
cycle table, plus a fixed activation overhead (call / loop setup / start-
done handshake with the system controller).
"""

from __future__ import annotations

from ..graph.semantics import op_mix_of
from ..graph.taskgraph import TaskNode
from ..platform.processors import Processor

__all__ = ["sw_cycles", "sw_seconds"]


def sw_cycles(node: TaskNode, processor: Processor) -> int:
    """Estimated processor cycles for one activation of ``node``."""
    mix = op_mix_of(node)
    cycles = processor.call_overhead_cycles
    table = processor.cycle_table
    for op, count in mix.items():
        cycles += table[op] * count
    return cycles


def sw_seconds(node: TaskNode, processor: Processor) -> float:
    """Estimated wall time of one activation on ``processor``."""
    return processor.seconds(sw_cycles(node, processor))
