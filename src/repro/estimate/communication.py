"""Communication cost estimation.

Prices a data transfer over the shared bus into the shared memory: a
write burst by the producer and a read burst by each consumer, each paying
bus arbitration plus memory access latency per beat.  Used by the
scheduler (transfer slots), the partitioners (communication penalty of a
cut edge) and cross-checked by the co-simulator.
"""

from __future__ import annotations

from ..graph.taskgraph import DataEdge
from ..platform.architecture import TargetArchitecture

__all__ = ["write_cycles", "read_cycles", "transfer_cycles", "transfer_seconds"]


def write_cycles(edge: DataEdge, arch: TargetArchitecture) -> int:
    """Bus cycles for the producer to write ``edge`` into shared memory."""
    bus = arch.bus
    beats = bus.beats_for(edge.width, edge.words)
    return (bus.arbitration_cycles
            + beats * (bus.cycles_per_word + arch.memory.write_cycles))


def read_cycles(edge: DataEdge, arch: TargetArchitecture) -> int:
    """Bus cycles for one consumer to read ``edge`` from shared memory."""
    bus = arch.bus
    beats = bus.beats_for(edge.width, edge.words)
    return (bus.arbitration_cycles
            + beats * (bus.cycles_per_word + arch.memory.read_cycles))


def transfer_cycles(edge: DataEdge, arch: TargetArchitecture) -> int:
    """Total bus cycles of one write + one read of ``edge``."""
    return write_cycles(edge, arch) + read_cycles(edge, arch)


def transfer_seconds(edge: DataEdge, arch: TargetArchitecture) -> float:
    return arch.bus.seconds(transfer_cycles(edge, arch))
