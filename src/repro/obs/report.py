"""Render a trace into the table the ISSUE's straggler-hunt wants.

Three sections, all computed from parent links and durations:

* **per-stage breakdown** -- for each span name of kind ``stage``/
  ``job``/``verify``/``flow``, the run count, cache hits, total time,
  and *self time* (duration minus the sum of direct children), the
  number that actually localises a straggler;
* **critical path** -- from the longest root span, repeatedly descend
  into the longest child: the chain whose sum bounds the wall clock;
* **top-N slowest spans** -- raw, for when aggregation hides the one
  bad job.

Works on span dicts (from :func:`~repro.obs.export.load_trace`) or
:class:`~repro.obs.span.Span` objects.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from .export import span_to_dict
from .span import Span

__all__ = ["stage_breakdown", "critical_path", "slowest_spans",
           "render_report"]

#: Span kinds that aggregate by name in the per-stage table.
_BREAKDOWN_KINDS = ("flow", "stage", "job", "shard", "verify")


def _as_dicts(spans: Iterable[Any]) -> list[dict]:
    return [span_to_dict(s) if isinstance(s, Span) else dict(s)
            for s in spans]


def _children_index(spans: Sequence[Mapping]) -> dict[Any, list[Mapping]]:
    children: dict[Any, list[Mapping]] = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)
    return children


def _self_time(span: Mapping, children: Mapping[Any, list]) -> float:
    kids = children.get(span["span_id"], ())
    child_total = sum(k.get("duration", 0.0) for k in kids)
    return max(0.0, span.get("duration", 0.0) - child_total)


def stage_breakdown(spans: Iterable[Any]) -> list[dict[str, Any]]:
    """Aggregate rows ``{name, kind, runs, cache_hits, total, self}``
    sorted by total time descending."""
    rows = _as_dicts(spans)
    children = _children_index(rows)
    table: dict[tuple[str, str], dict[str, Any]] = {}
    for span in rows:
        if span.get("kind") not in _BREAKDOWN_KINDS:
            continue
        key = (span["kind"], span["name"])
        entry = table.setdefault(key, {
            "name": span["name"], "kind": span["kind"], "runs": 0,
            "cache_hits": 0, "total": 0.0, "self": 0.0})
        entry["runs"] += 1
        if span.get("attributes", {}).get("cache") == "hit":
            entry["cache_hits"] += 1
        entry["total"] += span.get("duration", 0.0)
        entry["self"] += _self_time(span, children)
    return sorted(table.values(),
                  key=lambda e: (-e["total"], e["kind"], e["name"]))


def critical_path(spans: Iterable[Any]) -> list[dict[str, Any]]:
    """Longest-root, longest-child chain through the trace."""
    rows = _as_dicts(spans)
    if not rows:
        return []
    children = _children_index(rows)
    by_id = {s["span_id"]: s for s in rows}
    roots = [s for s in rows
             if s.get("parent_id") is None
             or s.get("parent_id") not in by_id]
    if not roots:
        return []
    node = max(roots, key=lambda s: s.get("duration", 0.0))
    path = [node]
    while True:
        kids = children.get(node["span_id"])
        if not kids:
            break
        node = max(kids, key=lambda s: s.get("duration", 0.0))
        path.append(node)
    return path


def slowest_spans(spans: Iterable[Any], top: int = 10) -> list[dict]:
    rows = _as_dicts(spans)
    return sorted(rows, key=lambda s: -s.get("duration", 0.0))[:top]


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:9.2f} ms"


def render_report(spans: Iterable[Any], top: int = 10) -> str:
    """The full plain-text report for a trace."""
    rows = _as_dicts(spans)
    pids = sorted({s.get("pid") for s in rows if s.get("pid") is not None})
    lines = [f"trace: {len(rows)} spans across "
             f"{len(pids)} process(es) {pids}"]

    lines.append("")
    lines.append("per-stage breakdown (total desc):")
    lines.append(f"  {'name':<28} {'kind':<7} {'runs':>5} {'hits':>5} "
                 f"{'total':>12} {'self':>12}")
    for entry in stage_breakdown(rows):
        lines.append(f"  {entry['name']:<28} {entry['kind']:<7} "
                     f"{entry['runs']:>5} {entry['cache_hits']:>5} "
                     f"{_ms(entry['total'])} {_ms(entry['self'])}")

    path = critical_path(rows)
    lines.append("")
    lines.append("critical path (longest root, longest child):")
    for depth, span in enumerate(path):
        lines.append(f"  {'  ' * depth}{span['name']} "
                     f"[{span.get('kind', 'span')}] "
                     f"{_ms(span.get('duration', 0.0))}")

    lines.append("")
    lines.append(f"top {top} slowest spans:")
    for span in slowest_spans(rows, top=top):
        attrs = span.get("attributes") or {}
        attr_text = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        lines.append(f"  {_ms(span.get('duration', 0.0))}  "
                     f"{span['name']} [{span.get('kind', 'span')}]"
                     f"{'  ' + attr_text if attr_text else ''}")
    return "\n".join(lines)
