"""Deterministic JSONL trace export and the canonical (scrubbed) view.

One span per line, keys sorted, so two traces can be compared with
plain text tools.  The only nondeterministic fields a span carries are
declared once here (``NONDETERMINISTIC_FIELDS``); everything else --
ids, parent links, names, kinds, attributes -- is reproducible run to
run for a deterministic flow, which :func:`canonical_trace` turns into
a directly comparable structure (the trace-determinism tests diff two
canonical traces produced under different ``PYTHONHASHSEED``).
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Sequence

from .span import Span, Tracer

__all__ = ["NONDETERMINISTIC_FIELDS", "span_to_dict", "write_trace",
           "dump_trace", "load_trace", "canonical_trace"]

#: Span fields that legitimately differ between two runs of the same
#: deterministic flow.  ``start``/``duration`` are wall-clock;
#: ``pid`` identifies the recording process.  Everything else must
#: reproduce exactly.
NONDETERMINISTIC_FIELDS = ("start", "duration", "pid")


def span_to_dict(span: Span) -> dict[str, Any]:
    return {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "kind": span.kind,
        "start": round(span.start, 9),
        "duration": round(span.duration, 9),
        "pid": span.pid,
        "attributes": dict(sorted(span.attributes.items())),
    }


def dump_trace(spans: Iterable[Span]) -> str:
    """Spans as JSONL text: one sorted-keys JSON object per line."""
    return "".join(json.dumps(span_to_dict(span), sort_keys=True) + "\n"
                   for span in spans)


def write_trace(tracer_or_spans: Tracer | Sequence[Span],
                path: str | os.PathLike) -> int:
    """Write a trace file; returns the number of spans written."""
    if isinstance(tracer_or_spans, Tracer):
        spans = tracer_or_spans.spans()
    else:
        spans = list(tracer_or_spans)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_trace(spans))
    return len(spans)


def load_trace(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Read a JSONL trace back as a list of span dicts."""
    spans = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def canonical_trace(spans: Iterable[dict[str, Any] | Span]) -> list[dict]:
    """The deterministic projection of a trace.

    Drops every field in :data:`NONDETERMINISTIC_FIELDS` and sorts
    each span's remaining keys; two runs of the same deterministic
    flow must produce equal canonical traces.
    """
    out = []
    for span in spans:
        record = span_to_dict(span) if isinstance(span, Span) else dict(span)
        for field in NONDETERMINISTIC_FIELDS:
            record.pop(field, None)
        record["attributes"] = dict(sorted(
            (record.get("attributes") or {}).items()))
        out.append(dict(sorted(record.items())))
    return out
