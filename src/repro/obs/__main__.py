"""CLI: ``python -m repro.obs report trace.jsonl [--top N]``."""

from __future__ import annotations

import argparse
import sys

from .export import load_trace
from .report import render_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect repro.obs trace files")
    commands = parser.add_subparsers(dest="command", required=True)
    report_cmd = commands.add_parser(
        "report", help="render per-stage breakdown, critical path and "
                       "slowest spans from a JSONL trace")
    report_cmd.add_argument("trace", help="path to a trace .jsonl file")
    report_cmd.add_argument("--top", type=int, default=10,
                            help="slowest-span count (default %(default)s)")
    args = parser.parse_args(argv)
    spans = load_trace(args.trace)
    print(render_report(spans, top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
