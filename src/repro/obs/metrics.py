"""Typed metrics: counters, gauges and histograms behind one registry.

The runtime layers used to hand-roll their own counting -- plain-int
instance attributes on :class:`~repro.store.disk.ArtifactStore`, ad-hoc
window dicts on :class:`~repro.flow.pipeline.StageCache`.  A
:class:`MetricsRegistry` replaces those with three small typed
instruments, all thread-safe, all snapshotting to plain sorted dicts so
existing ``stats()`` payloads (and the BENCH gates that read them) keep
their shapes.

Instruments are get-or-create: ``registry.counter("hits")`` returns the
same :class:`Counter` every time, so callers never coordinate
construction.  Nothing here touches the wall clock -- metrics are pure
event counts/values and are safe anywhere, including fingerprint-
adjacent code (unlike spans, which carry timestamps and are banned from
it by lint rule OBS501).
"""

from __future__ import annotations

import threading
from typing import Any, Mapping

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, delta: int = 1) -> None:
        if delta < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += delta

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-write-wins instantaneous value (queue depth, bytes on disk)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value: float = 0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Streaming summary: count / total / min / max / mean.

    Deliberately bucket-free -- the repo's consumers want aggregate
    shapes in JSON gates, not percentile estimation, and a fixed-size
    summary keeps observation O(1) with no allocation.
    """

    __slots__ = ("name", "_lock", "_count", "_total", "_min", "_max")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._count = 0
        self._total = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._total += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def summary(self) -> dict[str, float | int | None]:
        with self._lock:
            mean = self._total / self._count if self._count else None
            return {"count": self._count, "total": self._total,
                    "min": self._min, "max": self._max, "mean": mean}

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """Named instruments, get-or-create, one namespace per owner.

    Each instrumented object (an :class:`ArtifactStore`, a
    :class:`PersistentCache`) owns its *own* registry rather than
    sharing a process-global one -- tests create many stores side by
    side and their counts must not bleed together.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name)
            return instrument

    def snapshot(self) -> dict[str, Any]:
        """All instruments as one plain sorted dict.

        Counters and gauges flatten to name -> value; histograms keep
        their summary dicts under their names.  Key order is sorted so
        snapshots serialize deterministically.
        """
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        out: dict[str, Any] = {}
        for counter in counters:
            out[counter.name] = counter.value
        for gauge in gauges:
            out[gauge.name] = gauge.value
        for histogram in histograms:
            out[histogram.name] = histogram.summary()
        return dict(sorted(out.items()))
