"""Span-based tracing with a no-op default and cross-process adoption.

A :class:`Span` is one timed region of work -- a pipeline stage, a
batch job, a store read -- with a name, a kind, a parent link and a
small bag of primitive attributes.  A :class:`Tracer` collects finished
spans; the *active* tracer is thread-local and defaults to ``None``, in
which case the module-level :func:`span` / :func:`record` helpers
return a shared no-op handle -- uninstrumented callers pay one
attribute lookup and nothing else, which is what lets the hot paths
(stage-cache lookups, store reads) stay instrumented unconditionally.

Time is read from :func:`time.perf_counter` relative to the tracer's
epoch, so span starts are meaningful *within* one tracer only.  Spans
from another process (shard workers) come back as compact tuple rows
(:meth:`Tracer.compact`) and are re-based and re-parented into the
coordinator's trace by :meth:`Tracer.adopt` -- worker clocks and
coordinator clocks never mix raw.

Wall-clock values live only in the ``start``/``duration`` fields (and
the per-process ``pid``), never in attributes: everything else in a
trace is deterministic, which is what the trace-determinism tests and
the ``OBS501`` lint rule (no span data in fingerprint-reachable code)
hold the subsystem to.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

__all__ = ["Span", "Tracer", "span", "record", "current_tracer",
           "activate", "tracing_active"]

#: Attribute values are restricted to JSON-stable primitives; anything
#: else is rendered with ``str`` at set time (never lazily, so a
#: mutable object cannot change between set and export).
_PRIMITIVES = (str, int, float, bool, type(None))


def _coerce(value: Any) -> Any:
    return value if isinstance(value, _PRIMITIVES) else str(value)


@dataclass
class Span:
    """One finished timed region of work."""

    span_id: int
    parent_id: int | None
    name: str
    kind: str
    #: Seconds since the owning tracer's epoch (monotonic clock).
    start: float
    duration: float
    #: Process that recorded the span (adopted spans keep the worker's).
    pid: int
    attributes: dict[str, Any] = field(default_factory=dict)

    def compact(self) -> tuple:
        """The picklable tuple row shipped across process boundaries."""
        return (self.span_id, self.parent_id, self.name, self.kind,
                self.start, self.duration, self.pid,
                tuple(sorted(self.attributes.items())))


class _NullHandle:
    """Shared no-op span handle: the price of tracing when it is off."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        return None

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_HANDLE = _NullHandle()


class _OpenSpan:
    """Context-manager handle of one in-flight span."""

    __slots__ = ("_tracer", "_parent", "span_id", "name", "kind",
                 "attributes", "_start")

    def __init__(self, tracer: "Tracer", name: str, kind: str,
                 parent: int | None, attributes: dict[str, Any]) -> None:
        self._tracer = tracer
        self._parent = parent
        self.span_id = tracer._next_id()
        self.name = name
        self.kind = kind
        self.attributes = attributes

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the span (primitives, else ``str``)."""
        self.attributes[key] = _coerce(value)

    def __enter__(self) -> "_OpenSpan":
        if self._parent is None:
            self._parent = self._tracer._stack_top()
        self._tracer._stack_push(self.span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        duration = time.perf_counter() - self._start
        self._tracer._stack_pop()
        self._tracer._finish(Span(
            span_id=self.span_id, parent_id=self._parent, name=self.name,
            kind=self.kind, start=self._start - self._tracer.epoch,
            duration=duration, pid=self._tracer.pid,
            attributes=self.attributes))
        return False


class Tracer:
    """Collects spans; thread-safe; per-thread parent stacks.

    Span IDs are allocated in open order starting at 1, so a
    single-threaded run produces identical IDs on every execution --
    the property the trace-determinism tests pin.
    """

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.pid = os.getpid()
        self._lock = threading.Lock()
        self._id = 0
        self._spans: list[Span] = []
        self._local = threading.local()

    # -- internal plumbing used by _OpenSpan ---------------------------
    def _next_id(self) -> int:
        with self._lock:
            self._id += 1
            return self._id

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _stack_top(self) -> int | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def _stack_push(self, span_id: int) -> None:
        self._stack().append(span_id)

    def _stack_pop(self) -> None:
        self._stack().pop()

    def _finish(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    # -- recording ------------------------------------------------------
    def span(self, name: str, kind: str = "span",
             parent: int | None = None, **attributes: Any) -> _OpenSpan:
        """Open a span as a context manager.

        The parent defaults to the innermost span open *on this thread*;
        pass ``parent=`` to attach elsewhere (batch runners parent
        worker-side spans under the sweep span this way).
        """
        return _OpenSpan(self, name, kind, parent,
                         {k: _coerce(v) for k, v in attributes.items()})

    def record(self, name: str, kind: str = "span", duration: float = 0.0,
               parent: int | None = None, **attributes: Any) -> Span:
        """Record an already-finished region (duration measured elsewhere).

        Used where the work happened somewhere a context manager could
        not wrap -- a pool future that completed, a shard whose
        in-worker seconds came back in its outcome.
        """
        if parent is None:
            parent = self._stack_top()
        span = Span(span_id=self._next_id(), parent_id=parent, name=name,
                    kind=kind,
                    start=time.perf_counter() - self.epoch - duration,
                    duration=duration, pid=self.pid,
                    attributes={k: _coerce(v)
                                for k, v in attributes.items()})
        self._finish(span)
        return span

    # -- reading --------------------------------------------------------
    def spans(self) -> list[Span]:
        """Finished spans in deterministic (span id) order."""
        with self._lock:
            return sorted(self._spans, key=lambda s: s.span_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- cross-process transport ----------------------------------------
    def compact(self) -> tuple[tuple, ...]:
        """Every finished span as compact picklable rows (id order)."""
        return tuple(span.compact() for span in self.spans())

    def adopt(self, rows: Sequence[tuple], parent_id: int | None = None,
              pid: int | None = None, start_at: float | None = None) -> int:
        """Re-parent compact worker rows into this trace.

        Worker span IDs are local to the worker's tracer, and worker
        ``start`` values are relative to the worker's epoch -- a
        different monotonic clock.  Adoption allocates fresh IDs
        (preserving the worker's open order), hangs worker *roots*
        under ``parent_id``, and re-bases starts so the worker's
        earliest span begins at ``start_at`` (default: the parent
        span's recorded start, else 0).  ``pid`` overrides the recorded
        process id (workers already stamp their own; the override is
        for rows produced by tracer-less recorders).

        Returns the number of spans adopted.
        """
        if not rows:
            return 0
        ordered = sorted(rows, key=lambda row: row[0])
        offset = 0.0
        if start_at is not None:
            offset = start_at - min(row[4] for row in ordered)
        id_map: dict[int, int] = {}
        adopted: list[Span] = []
        for row in ordered:
            (old_id, old_parent, name, kind, start, duration,
             row_pid, attrs) = row
            new_id = self._next_id()
            id_map[old_id] = new_id
            parent = id_map.get(old_parent, parent_id) \
                if old_parent is not None else parent_id
            adopted.append(Span(
                span_id=new_id, parent_id=parent, name=str(name),
                kind=str(kind), start=float(start) + offset,
                duration=float(duration),
                pid=int(row_pid) if pid is None else pid,
                attributes=dict(attrs)))
        with self._lock:
            self._spans.extend(adopted)
        return len(adopted)


# ----------------------------------------------------------------------
# the thread-local active tracer and the module-level fast paths
# ----------------------------------------------------------------------
_ACTIVE = threading.local()


def current_tracer() -> Tracer | None:
    """The tracer active on this thread, or ``None`` (the default)."""
    return getattr(_ACTIVE, "tracer", None)


def tracing_active() -> bool:
    """Cheap predicate for callers that must *plan* for tracing (the
    shard coordinator decides whether workers should collect spans)."""
    return getattr(_ACTIVE, "tracer", None) is not None


@contextmanager
def activate(tracer: Tracer | None) -> Iterator[Tracer | None]:
    """Make ``tracer`` the active tracer of this thread for the block.

    ``activate(None)`` explicitly disables tracing inside the block
    (used by overhead benchmarks to get an honest uninstrumented run).
    """
    previous = getattr(_ACTIVE, "tracer", None)
    _ACTIVE.tracer = tracer
    try:
        yield tracer
    finally:
        _ACTIVE.tracer = previous


def span(name: str, kind: str = "span", parent: int | None = None,
         **attributes: Any):
    """Open a span on the active tracer; a shared no-op when tracing is
    off.  This is the one spelling instrumented code uses."""
    tracer = getattr(_ACTIVE, "tracer", None)
    if tracer is None:
        return _NULL_HANDLE
    return tracer.span(name, kind=kind, parent=parent, **attributes)


def record(name: str, kind: str = "span", duration: float = 0.0,
           parent: int | None = None, **attributes: Any) -> Span | None:
    """Record a finished region on the active tracer (None when off)."""
    tracer = getattr(_ACTIVE, "tracer", None)
    if tracer is None:
        return None
    return tracer.record(name, kind=kind, duration=duration, parent=parent,
                         **attributes)
