"""``repro.obs`` -- tracing, metrics and profiling for the runtime.

Three small pieces, zero dependencies:

* :mod:`repro.obs.span` -- span-based tracing.  A thread-local
  :class:`Tracer` is *off by default*: the free functions
  :func:`span` / :func:`record` no-op until a caller wraps work in
  ``with activate(Tracer()) as tracer: ...``, so every runtime layer
  is instrumented unconditionally and uninstrumented runs pay roughly
  one attribute lookup per call site.  Shard workers trace locally and
  ship compact rows home in ``ShardOutcome.spans``; the coordinator
  re-parents them with :meth:`Tracer.adopt`.
* :mod:`repro.obs.metrics` -- a typed registry of counters, gauges
  and histograms replacing hand-rolled instance-attribute counters
  (the artifact store and cache tiers each own one).
* :mod:`repro.obs.export` / :mod:`repro.obs.report` -- deterministic
  JSONL traces and the ``python -m repro.obs report trace.jsonl``
  breakdown (per-stage self-time, critical path, slowest spans).

Spans carry wall-clock data, so lint rule OBS501 bans the tracing API
from fingerprint- and stage-signature-reachable code; the metrics
side is timestamp-free and unrestricted.  See docs/OBSERVABILITY.md.
"""

from .export import (NONDETERMINISTIC_FIELDS, canonical_trace, dump_trace,
                     load_trace, span_to_dict, write_trace)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .report import (critical_path, render_report, slowest_spans,
                     stage_breakdown)
from .span import (Span, Tracer, activate, current_tracer, record, span,
                   tracing_active)

__all__ = [
    "Span", "Tracer", "span", "record", "activate", "current_tracer",
    "tracing_active",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "NONDETERMINISTIC_FIELDS", "span_to_dict", "dump_trace", "write_trace",
    "load_trace", "canonical_trace",
    "stage_breakdown", "critical_path", "slowest_spans", "render_report",
]
