"""Resource binding: functional units and registers.

* **FU binding** -- operations of one category whose execution intervals
  do not overlap share a functional unit; intervals are coloured with
  the left-edge algorithm (interval graphs are perfect, so left-edge is
  optimal and meets the peak-concurrency bound of the schedule).
* **Register binding** -- every operation result lives from the end of
  its producer to the last start of its consumers (or its own end for
  outputs); the same left-edge colouring assigns registers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .dfg import Dfg
from .schedule import HlsSchedule

__all__ = ["Binding", "bind"]


@dataclass
class Binding:
    """FU and register assignment of one scheduled DFG."""

    #: op uid -> (category, fu index within category)
    fu_of: dict[int, tuple[str, int]]
    #: op uid -> register index holding its result
    register_of: dict[int, int]

    @property
    def fu_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for category, index in self.fu_of.values():
            counts[category] = max(counts.get(category, 0), index + 1)
        return counts

    @property
    def register_count(self) -> int:
        if not self.register_of:
            return 0
        return max(self.register_of.values()) + 1

    def ops_on_fu(self, category: str, index: int) -> list[int]:
        return [uid for uid, (cat, i) in self.fu_of.items()
                if cat == category and i == index]


def _left_edge(intervals: list[tuple[int, int, int]]) -> dict[int, int]:
    """Colour half-open intervals ``(start, end, key)``; returns key->colour."""
    colour: dict[int, int] = {}
    busy_until: list[int] = []  # per colour
    for start, end, key in sorted(intervals):
        for index, until in enumerate(busy_until):
            if until <= start:
                colour[key] = index
                busy_until[index] = end
                break
        else:
            colour[key] = len(busy_until)
            busy_until.append(end)
    return colour


def bind(schedule: HlsSchedule) -> Binding:
    """Bind a scheduled DFG to shared FUs and registers."""
    dfg: Dfg = schedule.dfg

    # FU binding per category
    fu_of: dict[int, tuple[str, int]] = {}
    for category in dfg.categories():
        intervals = []
        for uid, op in dfg.ops.items():
            if op.category != category:
                continue
            start = schedule.start[uid]
            end = start + schedule.latency_of[category]
            intervals.append((start, end, uid))
        for uid, index in _left_edge(intervals).items():
            fu_of[uid] = (category, index)

    # register binding on value lifetimes
    intervals = []
    for uid, op in dfg.ops.items():
        born = schedule.start[uid] + schedule.latency_of[op.category]
        successors = dfg.successors(uid)
        if successors:
            dies = max(schedule.start[s] for s in successors) + 1
        else:
            dies = born + 1  # output value: held one step for the store
        intervals.append((born, max(dies, born + 1), uid))
    register_of = _left_edge(intervals)

    return Binding(fu_of, register_of)
