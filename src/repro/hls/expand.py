"""Expansion of task-graph nodes into operator-level DFGs.

A task node's operation mix (:func:`repro.graph.semantics.op_mix_of`)
is laid out as ``node.words`` independent *lanes* -- one per produced
data word, the natural parallelism of block processing -- with the
operations of each lane chained serially (each consumes its lane
predecessor's value).  ``mov`` operations become wires and are dropped.

This shape gives high-level synthesis exactly the trade-off space the
estimators assume: one functional unit per category executes the node in
roughly ``count`` cycles (pipelined lanes), more units exploit the lane
parallelism up to ``words``-fold.
"""

from __future__ import annotations

from ..graph.semantics import op_mix_of
from ..graph.taskgraph import TaskNode
from .dfg import Dfg

__all__ = ["expand_node"]


def expand_node(node: TaskNode) -> Dfg:
    """Build the operator DFG of one task node."""
    mix = op_mix_of(node)
    dfg = Dfg(node.name)

    lanes = max(1, node.words)
    # distribute each category's operations over the lanes round-robin
    per_lane: list[list[str]] = [[] for _ in range(lanes)]
    for category in sorted(mix):
        if category == "mov":
            continue  # wires, not scheduled operations
        for i in range(mix[category]):
            per_lane[i % lanes].append(category)

    for lane_ops in per_lane:
        previous: int | None = None
        for category in lane_ops:
            inputs = (previous,) if previous is not None else ()
            previous = dfg.add_op(category, inputs)
    return dfg
