"""Functional-unit allocation: picking the FU set before scheduling.

Two entry points:

* :func:`allocate_for_latency` -- minimum-cost FU set whose list
  schedule meets a latency bound (incremental: start from one FU per
  category, repeatedly add the unit with the best marginal speed-up);
* :func:`allocate_minimal` -- one FU per used category, the smallest
  legal allocation (the area-lean corner OSCAR starts from).
"""

from __future__ import annotations

from .dfg import Dfg, HlsError
from .schedule import list_schedule_ops

__all__ = ["allocate_minimal", "allocate_for_latency"]


def allocate_minimal(dfg: Dfg) -> dict[str, int]:
    """One functional unit per category present in the DFG."""
    return {category: 1 for category in dfg.categories()}


def allocate_for_latency(dfg: Dfg, latency_of, area_of,
                         target_latency: int,
                         max_fus_per_category: int = 8) -> dict[str, int]:
    """Smallest-area FU set meeting ``target_latency``.

    Greedy marginal analysis: while the schedule misses the target, add
    the single FU with the best (cycles saved) / (CLB cost) ratio.
    Raises :class:`HlsError` when the target is unreachable even with
    ``max_fus_per_category`` everywhere.
    """
    allocation = allocate_minimal(dfg)
    if not allocation:
        return allocation

    def length(alloc: dict[str, int]) -> int:
        return list_schedule_ops(dfg, latency_of, alloc).length

    current = length(allocation)
    while current > target_latency:
        best_category, best_ratio, best_length = None, 0.0, current
        for category in allocation:
            if allocation[category] >= max_fus_per_category:
                continue
            trial = dict(allocation)
            trial[category] += 1
            trial_length = length(trial)
            saved = current - trial_length
            cost = max(area_of(category), 1e-9)
            ratio = saved / cost
            if saved > 0 and ratio > best_ratio:
                best_category = category
                best_ratio = ratio
                best_length = trial_length
        if best_category is None:
            raise HlsError(
                f"cannot reach latency {target_latency} (best achievable "
                f"{current} with {allocation})")
        allocation[best_category] += 1
        current = best_length
    return allocation
