"""High-level synthesis substrate (OSCAR-style)."""

from .dfg import Dfg, DfgOp, HlsError
from .expand import expand_node
from .schedule import (HlsSchedule, alap_schedule, asap_schedule,
                       force_directed_schedule, list_schedule_ops)
from .allocation import allocate_for_latency, allocate_minimal
from .binding import Binding, bind
from .rtl import RtlDatapath, RtlFu, build_rtl
from .area import controller_area_clbs, datapath_area_clbs
from .driver import (HlsResult, SharedDatapathResult, synthesize_node,
                     synthesize_resource)

__all__ = [
    "Dfg", "DfgOp", "HlsError", "expand_node", "HlsSchedule",
    "alap_schedule", "asap_schedule", "force_directed_schedule",
    "list_schedule_ops", "allocate_for_latency", "allocate_minimal",
    "Binding", "bind", "RtlDatapath", "RtlFu", "build_rtl",
    "controller_area_clbs", "datapath_area_clbs", "HlsResult",
    "SharedDatapathResult", "synthesize_node", "synthesize_resource",
]
