"""High-level synthesis drivers: per node and per shared resource.

:func:`synthesize_node` runs the full OSCAR-style pipeline for one task
node: DFG expansion, FU allocation, scheduling (list or force-directed),
left-edge binding, RTL assembly, CLB pricing.

:func:`synthesize_resource` implements the *hardware sharing* the
paper's data-path controllers exist for: all nodes mapped to one FPGA
share a single datapath.  The shared functional-unit set is the
per-category maximum over the nodes (they execute mutually exclusively
under the data-path controller), registers are likewise shared, and the
multiplexing cost of sharing is accounted by summing the per-node mux
sources on each shared unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.partition import Partition
from ..graph.taskgraph import TaskGraph, TaskNode
from ..platform.fpgas import Fpga
from .allocation import allocate_for_latency, allocate_minimal
from .area import controller_area_clbs, datapath_area_clbs
from .binding import Binding, bind
from .dfg import Dfg, HlsError
from .expand import expand_node
from .rtl import RtlDatapath, RtlFu, build_rtl
from .schedule import HlsSchedule, force_directed_schedule, list_schedule_ops

__all__ = ["HlsResult", "SharedDatapathResult", "synthesize_node",
           "synthesize_resource"]


@dataclass
class HlsResult:
    """Complete HLS output for one task node."""

    node: str
    dfg: Dfg
    schedule: HlsSchedule
    binding: Binding
    rtl: RtlDatapath
    area_clbs: int

    @property
    def latency_cycles(self) -> int:
        return self.rtl.latency_cycles

    def stats(self) -> dict:
        return {"node": self.node, "ops": len(self.dfg),
                "latency_cycles": self.latency_cycles,
                "area_clbs": self.area_clbs,
                "fus": self.rtl.fu_counts,
                "registers": self.rtl.register_count}


def synthesize_node(node: TaskNode, fpga: Fpga,
                    target_latency: int | None = None,
                    scheduler: str = "list",
                    fu_allocation: dict[str, int] | None = None) -> HlsResult:
    """Synthesize one task node into an RTL datapath on ``fpga``."""
    dfg = expand_node(node)
    if len(dfg) == 0:
        # pure-move nodes (copy/concat/IO) degenerate to wiring
        empty_schedule = HlsSchedule(dfg, {}, {})
        empty_binding = Binding({}, {})
        rtl = RtlDatapath(node.name, node.width, [], 0, 1, {})
        return HlsResult(node.name, dfg, empty_schedule, empty_binding,
                         rtl, 1)

    if fu_allocation is None:
        if target_latency is None:
            fu_allocation = allocate_minimal(dfg)
        else:
            fu_allocation = allocate_for_latency(
                dfg, fpga.latency_for, fpga.area_for, target_latency)

    if scheduler == "list":
        schedule = list_schedule_ops(dfg, fpga.latency_for, fu_allocation)
    elif scheduler == "force_directed":
        schedule = force_directed_schedule(dfg, fpga.latency_for)
    else:
        raise HlsError(f"unknown scheduler {scheduler!r}")

    binding = bind(schedule)
    rtl = build_rtl(node.name, node.width, schedule, binding)
    area = datapath_area_clbs(rtl, fpga)
    return HlsResult(node.name, dfg, schedule, binding, rtl, area)


@dataclass
class SharedDatapathResult:
    """HLS output for all nodes sharing one hardware resource."""

    resource: str
    node_results: dict[str, HlsResult] = field(default_factory=dict)
    shared_rtl: RtlDatapath | None = None
    datapath_area_clbs: int = 0
    controller_area_clbs: int = 0

    @property
    def total_area_clbs(self) -> int:
        return self.datapath_area_clbs + self.controller_area_clbs

    @property
    def latencies(self) -> dict[str, int]:
        """Per-node execution latency in FPGA cycles (for the DPC)."""
        return {name: r.latency_cycles
                for name, r in self.node_results.items()}

    def stats(self) -> dict:
        return {
            "resource": self.resource,
            "nodes": len(self.node_results),
            "datapath_clbs": self.datapath_area_clbs,
            "controller_clbs": self.controller_area_clbs,
            "total_clbs": self.total_area_clbs,
            "shared_fus": self.shared_rtl.fu_counts
            if self.shared_rtl else {},
        }


def synthesize_resource(graph: TaskGraph, partition: Partition,
                        resource: str, fpga: Fpga,
                        target_latency: int | None = None
                        ) -> SharedDatapathResult:
    """Synthesize the shared datapath of one hardware resource."""
    result = SharedDatapathResult(resource)
    node_names = partition.nodes_on(resource)
    if not node_names:
        return result

    width = 0
    for name in node_names:
        node = graph.node(name)
        width = max(width, node.width)
        result.node_results[name] = synthesize_node(
            node, fpga, target_latency=target_latency)

    # shared FU set: per-category maximum over the nodes; the mux in
    # front of a shared unit must accept every node's sources
    shared_counts: dict[str, int] = {}
    for r in result.node_results.values():
        for category, count in r.rtl.fu_counts.items():
            shared_counts[category] = max(shared_counts.get(category, 0),
                                          count)
    fus: list[RtlFu] = []
    for category, count in sorted(shared_counts.items()):
        for index in range(count):
            sources = 0
            for r in result.node_results.values():
                for fu in r.rtl.fus:
                    if fu.category == category \
                            and fu.name == f"{category}{index}":
                        sources += fu.input_sources
            fus.append(RtlFu(f"{category}{index}", category, width,
                             max(sources, 1)))

    registers = max((r.rtl.register_count
                     for r in result.node_results.values()), default=0)
    latency = max((r.latency_cycles
                   for r in result.node_results.values()), default=1)
    result.shared_rtl = RtlDatapath(
        name=f"dp_{resource}", width=width, fus=fus,
        register_count=registers, latency_cycles=latency, micro_schedule={})
    result.datapath_area_clbs = datapath_area_clbs(result.shared_rtl, fpga)
    # data-path controller: idle + one busy state per node
    result.controller_area_clbs = controller_area_clbs(
        len(node_names) + 1, fpga)
    return result
