"""RTL datapath model: the output of high-level synthesis.

A :class:`RtlDatapath` records what the synthesized hardware consists
of -- functional units, registers, the multiplexers implied by sharing
-- together with the micro-schedule the data-path controller sequences.
The XC4000 area model (:mod:`repro.hls.area`) prices it in CLBs, and the
VHDL emitter renders it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .binding import Binding
from .schedule import HlsSchedule

__all__ = ["RtlFu", "RtlDatapath", "build_rtl"]


@dataclass(frozen=True)
class RtlFu:
    """One functional unit instance."""

    name: str
    category: str
    width: int
    #: number of distinct sources feeding each operand port
    input_sources: int

    @property
    def mux_inputs(self) -> int:
        """Multiplexer fan-in required in front of the unit."""
        return max(self.input_sources, 1)


@dataclass
class RtlDatapath:
    """The structural result of HLS for one task node (or shared set)."""

    name: str
    width: int
    fus: list[RtlFu] = field(default_factory=list)
    register_count: int = 0
    latency_cycles: int = 0
    #: micro-program: step -> list of (op uid, fu name)
    micro_schedule: dict[int, list[tuple[int, str]]] = field(
        default_factory=dict)

    @property
    def fu_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for fu in self.fus:
            counts[fu.category] = counts.get(fu.category, 0) + 1
        return counts

    @property
    def total_mux_inputs(self) -> int:
        return sum(fu.mux_inputs for fu in self.fus if fu.mux_inputs > 1)

    def stats(self) -> dict:
        return {
            "name": self.name,
            "fus": self.fu_counts,
            "registers": self.register_count,
            "latency_cycles": self.latency_cycles,
            "mux_inputs": self.total_mux_inputs,
        }


def build_rtl(name: str, width: int, schedule: HlsSchedule,
              binding: Binding) -> RtlDatapath:
    """Assemble the RTL datapath from a schedule and its binding."""
    dfg = schedule.dfg
    fus: list[RtlFu] = []
    for category, count in sorted(binding.fu_counts.items()):
        for index in range(count):
            ops = binding.ops_on_fu(category, index)
            # distinct registers feeding this unit = mux size
            sources: set[int] = set()
            for uid in ops:
                for dep in dfg.ops[uid].inputs:
                    sources.add(binding.register_of[dep])
            fus.append(RtlFu(
                name=f"{category}{index}",
                category=category,
                width=width,
                input_sources=max(len(sources), 1),
            ))

    micro: dict[int, list[tuple[int, str]]] = {}
    for uid, op in dfg.ops.items():
        step = schedule.start[uid]
        category, index = binding.fu_of[uid]
        micro.setdefault(step, []).append((uid, f"{category}{index}"))
    for step in micro:
        micro[step].sort()

    return RtlDatapath(
        name=name,
        width=width,
        fus=fus,
        register_count=binding.register_count,
        latency_cycles=schedule.length,
        micro_schedule=micro,
    )
