"""XC4000-class CLB area model for RTL datapaths.

Prices an :class:`repro.hls.rtl.RtlDatapath` for a concrete FPGA: the
functional units from the device's operator table (scaled from the
16-bit reference width), registers at the device's flip-flop density,
2:1 multiplexer slices in front of shared units, and the data-path
controller's state cost.
"""

from __future__ import annotations

from math import ceil, log2

from ..platform.fpgas import Fpga
from .rtl import RtlDatapath

__all__ = ["datapath_area_clbs", "controller_area_clbs",
           "mux_area_clbs", "register_area_clbs"]

#: CLBs of one 2:1 mux bit-slice (two function generators per CLB).
MUX_CLBS_PER_BIT = 0.5
#: Fan-in above which the mux moves onto the TBUF long lines.
TBUF_THRESHOLD = 4
#: Register count above which storage becomes a LUT-RAM register file.
REGFILE_THRESHOLD = 4


def mux_area_clbs(inputs: int, width: int) -> float:
    """CLB cost of an ``inputs``-to-1 mux of ``width`` bits.

    Small muxes are LUT trees; wide ones use the XC4000 tristate long
    lines (TBUFs), whose CLB cost is only the enable decoding.
    """
    if inputs <= 1:
        return 0.0
    if inputs <= TBUF_THRESHOLD:
        return (inputs - 1) * MUX_CLBS_PER_BIT * width
    return 2.0 + 0.25 * inputs


def register_area_clbs(count: int, width: int, fpga: Fpga) -> float:
    """CLB cost of ``count`` result registers of ``width`` bits.

    Few values live in CLB flip-flops; larger sets become a distributed
    LUT-RAM register file (a 16x1 RAM per function generator -- the
    signature feature of the XC4000 family) plus addressing.
    """
    if count <= 0:
        return 0.0
    if count <= REGFILE_THRESHOLD:
        return count * fpga.register_clbs_per_bit * width
    banks = ceil(count / 16)
    return banks * (width / 2.0) + 2.0


def datapath_area_clbs(rtl: RtlDatapath, fpga: Fpga) -> int:
    """Total CLB area of one synthesized datapath."""
    width_scale = rtl.width / 16.0
    area = 0.0
    for fu in rtl.fus:
        area += fpga.area_for(fu.category) * width_scale
        area += mux_area_clbs(fu.mux_inputs, rtl.width)
    area += register_area_clbs(rtl.register_count, rtl.width, fpga)
    return max(1, ceil(area))


def controller_area_clbs(n_states: int, fpga: Fpga,
                         one_hot: bool = False) -> int:
    """CLB cost of a controller FSM with ``n_states`` states."""
    if n_states <= 0:
        return 0
    if one_hot:
        flops = n_states
    else:
        flops = max(1, ceil(log2(max(n_states, 2))))
    area = flops * fpga.register_clbs_per_bit \
        + n_states * fpga.controller_clbs_per_state
    return max(1, ceil(area))
