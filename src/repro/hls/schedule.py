"""Operation scheduling for high-level synthesis.

The OSCAR-era algorithm set: ASAP and ALAP for mobility analysis,
resource-constrained **list scheduling** as the workhorse, and
**force-directed scheduling** (Paulin/Knight style, simplified to
distribution-graph forces) for latency-constrained allocation studies.

A schedule maps every DFG operation to a start step; an operation of
category ``c`` occupies one unit of the ``c`` functional-unit pool for
``latency(c)`` consecutive steps (units are not pipelined here --
conservative, and matching the datapath controller's step counting).
"""

from __future__ import annotations

from dataclasses import dataclass

from .dfg import Dfg, HlsError

__all__ = ["HlsSchedule", "asap_schedule", "alap_schedule", "list_schedule_ops",
           "force_directed_schedule"]


@dataclass
class HlsSchedule:
    """Start step of every operation plus derived quantities."""

    dfg: Dfg
    start: dict[int, int]
    latency_of: dict[str, int]

    @property
    def length(self) -> int:
        """Total schedule length in steps."""
        return max((self.start[uid] + self.latency_of[op.category]
                    for uid, op in self.dfg.ops.items()), default=0)

    def ops_active_at(self, step: int) -> list[int]:
        return [uid for uid, op in self.dfg.ops.items()
                if self.start[uid] <= step
                < self.start[uid] + self.latency_of[op.category]]

    def fu_usage(self) -> dict[str, int]:
        """Peak concurrent operations per category (= FUs needed)."""
        usage: dict[str, int] = {}
        for step in range(self.length):
            per_cat: dict[str, int] = {}
            for uid in self.ops_active_at(step):
                cat = self.dfg.ops[uid].category
                per_cat[cat] = per_cat.get(cat, 0) + 1
            for cat, n in per_cat.items():
                usage[cat] = max(usage.get(cat, 0), n)
        return usage

    def validate(self, fu_limits: dict[str, int] | None = None) -> list[str]:
        problems = []
        for uid, op in self.dfg.ops.items():
            for dep in op.inputs:
                dep_cat = self.dfg.ops[dep].category
                if self.start[uid] < self.start[dep] \
                        + self.latency_of[dep_cat]:
                    problems.append(f"op {uid} starts before input {dep} "
                                    f"finishes")
        if fu_limits is not None:
            for cat, peak in self.fu_usage().items():
                if peak > fu_limits.get(cat, 0):
                    problems.append(f"category {cat}: {peak} concurrent ops "
                                    f"exceed {fu_limits.get(cat, 0)} FUs")
        return problems


def _latency_table(dfg: Dfg, latency_of) -> dict[str, int]:
    return {cat: latency_of(cat) for cat in dfg.categories()}


def asap_schedule(dfg: Dfg, latency_of) -> HlsSchedule:
    """Unconstrained earliest-start schedule."""
    table = _latency_table(dfg, latency_of)
    start: dict[int, int] = {}
    for uid in dfg.topological_order():
        op = dfg.ops[uid]
        start[uid] = max((start[d] + table[dfg.ops[d].category]
                          for d in op.inputs), default=0)
    return HlsSchedule(dfg, start, table)


def alap_schedule(dfg: Dfg, latency_of,
                  deadline: int | None = None) -> HlsSchedule:
    """Latest-start schedule meeting ``deadline`` (default: ASAP length)."""
    table = _latency_table(dfg, latency_of)
    horizon = deadline if deadline is not None \
        else asap_schedule(dfg, latency_of).length
    start: dict[int, int] = {}
    for uid in reversed(dfg.topological_order()):
        op = dfg.ops[uid]
        latest = horizon - table[op.category]
        for succ in dfg.successors(uid):
            latest = min(latest, start[succ] - table[op.category])
        if latest < 0:
            raise HlsError(f"deadline {horizon} infeasible for op {uid}")
        start[uid] = latest
    return HlsSchedule(dfg, start, table)


def list_schedule_ops(dfg: Dfg, latency_of,
                      fu_limits: dict[str, int]) -> HlsSchedule:
    """Resource-constrained list scheduling, priority = ALAP urgency."""
    table = _latency_table(dfg, latency_of)
    missing = set(table) - set(fu_limits)
    if missing:
        raise HlsError(f"no FU limit for categories {sorted(missing)}")
    if any(fu_limits[c] < 1 for c in table):
        raise HlsError("every used category needs at least one FU")

    alap = alap_schedule(dfg, latency_of)
    priority = alap.start  # smaller ALAP start = more urgent

    start: dict[int, int] = {}
    finished: dict[int, int] = {}
    remaining = {uid: len(op.inputs) for uid, op in dfg.ops.items()}
    ready = sorted([uid for uid, k in remaining.items() if k == 0],
                   key=lambda u: (priority[u], u))
    busy_until: dict[str, list[int]] = {
        cat: [0] * fu_limits[cat] for cat in table}

    step = 0
    pending = dict(remaining)
    guard = 0
    while ready or len(finished) < len(dfg.ops):
        guard += 1
        if guard > 10 * (len(dfg.ops) + 1) * (max(table.values(), default=1) + 1):
            raise HlsError("list scheduler failed to make progress")
        progressed = False
        for uid in list(ready):
            op = dfg.ops[uid]
            data_ready = max((finished[d] for d in op.inputs), default=0)
            if data_ready > step:
                continue
            pool = busy_until[op.category]
            fu = min(range(len(pool)), key=lambda i: pool[i])
            if pool[fu] > step:
                continue
            start[uid] = step
            finished[uid] = step + table[op.category]
            pool[fu] = finished[uid]
            ready.remove(uid)
            for succ in dfg.successors(uid):
                pending[succ] -= 1
                if pending[succ] == 0:
                    ready.append(succ)
            ready.sort(key=lambda u: (priority[u], u))
            progressed = True
        step += 1
        if not progressed and not ready and len(finished) < len(dfg.ops):
            continue
    return HlsSchedule(dfg, start, table)


def force_directed_schedule(dfg: Dfg, latency_of,
                            deadline: int | None = None) -> HlsSchedule:
    """Simplified force-directed scheduling (distribution-graph forces).

    Operations are placed one at a time into the step of their mobility
    window that minimizes the category's expected concurrency -- the
    classic latency-constrained FU-minimizing heuristic.
    """
    table = _latency_table(dfg, latency_of)
    asap = asap_schedule(dfg, latency_of)
    horizon = deadline if deadline is not None else asap.length
    alap = alap_schedule(dfg, latency_of, horizon)

    start: dict[int, int] = {}
    # distribution graph: expected usage per (category, step)
    distribution: dict[tuple[str, int], float] = {}

    def window(uid: int) -> tuple[int, int]:
        lo = asap.start[uid] if uid not in start else start[uid]
        hi = alap.start[uid] if uid not in start else start[uid]
        return lo, hi

    for uid, op in dfg.ops.items():
        lo, hi = asap.start[uid], alap.start[uid]
        weight = 1.0 / (hi - lo + 1)
        for s in range(lo, hi + 1):
            for k in range(table[op.category]):
                key = (op.category, s + k)
                distribution[key] = distribution.get(key, 0.0) + weight

    # place operations most-constrained first (smallest mobility)
    order = sorted(dfg.ops,
                   key=lambda u: (alap.start[u] - asap.start[u], u))
    for uid in order:
        op = dfg.ops[uid]
        lo = max([asap.start[uid]]
                 + [start[d] + table[dfg.ops[d].category]
                    for d in op.inputs if d in start])
        hi = alap.start[uid]
        if lo > hi:
            hi = lo  # dependencies squeezed the window; extend horizon
        best_step, best_force = lo, float("inf")
        for s in range(lo, hi + 1):
            force = sum(distribution.get((op.category, s + k), 0.0)
                        for k in range(table[op.category]))
            if force < best_force:
                best_step, best_force = s, force
        start[uid] = best_step
        # update the distribution: this op is now fixed
        old_lo, old_hi = asap.start[uid], alap.start[uid]
        weight = 1.0 / (old_hi - old_lo + 1)
        for s in range(old_lo, old_hi + 1):
            for k in range(table[op.category]):
                distribution[(op.category, s + k)] -= weight
        for k in range(table[op.category]):
            key = (op.category, best_step + k)
            distribution[key] = distribution.get(key, 0.0) + 1.0

    schedule = HlsSchedule(dfg, start, table)
    problems = [p for p in schedule.validate() if "starts before" in p]
    if problems:
        raise HlsError("force-directed schedule broke dependencies:\n  "
                       + "\n  ".join(problems))
    return schedule
