"""Operator-level data-flow graphs for high-level synthesis.

The COOL flow hands every hardware-mapped task node to high-level
synthesis (the paper uses the authors' OSCAR tool).  The HLS works on a
DFG whose operations are the primitive categories of
:mod:`repro.graph.semantics` (``mov`` operations become wires and are
not scheduled).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DfgOp", "Dfg", "HlsError"]


class HlsError(ValueError):
    """Raised for malformed HLS inputs or infeasible constraints."""


@dataclass(frozen=True)
class DfgOp:
    """One primitive operation: category plus data predecessors."""

    uid: int
    category: str
    inputs: tuple[int, ...] = ()


@dataclass
class Dfg:
    """A DAG of primitive operations."""

    name: str
    ops: dict[int, DfgOp] = field(default_factory=dict)

    def add_op(self, category: str, inputs: tuple[int, ...] = ()) -> int:
        uid = len(self.ops)
        for dep in inputs:
            if dep not in self.ops:
                raise HlsError(f"dfg {self.name!r}: op {uid} depends on "
                               f"unknown op {dep}")
        self.ops[uid] = DfgOp(uid, category, tuple(inputs))
        return uid

    def __len__(self) -> int:
        return len(self.ops)

    def successors(self, uid: int) -> list[int]:
        return [o.uid for o in self.ops.values() if uid in o.inputs]

    def categories(self) -> dict[str, int]:
        """Operation count per category."""
        counts: dict[str, int] = {}
        for op in self.ops.values():
            counts[op.category] = counts.get(op.category, 0) + 1
        return counts

    def topological_order(self) -> list[int]:
        indeg = {uid: len(op.inputs) for uid, op in self.ops.items()}
        succs: dict[int, list[int]] = {uid: [] for uid in self.ops}
        for op in self.ops.values():
            for dep in op.inputs:
                succs[dep].append(op.uid)
        ready = sorted(uid for uid, d in indeg.items() if d == 0)
        order: list[int] = []
        while ready:
            uid = ready.pop(0)
            order.append(uid)
            for succ in succs[uid]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.ops):
            raise HlsError(f"dfg {self.name!r} contains a cycle")
        return order

    def critical_path(self, latency_of) -> int:
        """Longest path weighted by ``latency_of(category)``."""
        finish: dict[int, int] = {}
        for uid in self.topological_order():
            op = self.ops[uid]
            start = max((finish[d] for d in op.inputs), default=0)
            finish[uid] = start + latency_of(op.category)
        return max(finish.values(), default=0)
