"""MILP formulation of hardware/software partitioning.

Follows the structure of the authors' formulation (Niemann & Marwedel,
"An Algorithm for Hardware/Software Partitioning using Mixed Integer
Linear Programming", DAES 1997, reference [4] of the paper):

* binary variables ``x[v,r]`` -- node ``v`` is mapped to resource ``r``;
* relaxed-binary variables ``y[e]`` -- edge ``e`` crosses processing
  units (``y >= x[u,r] - x[v,r]`` for every resource forces ``y = 1``
  exactly for cut edges; minimization drives it back to 0 elsewhere, so
  ``y`` needs no integrality constraint);
* assignment constraints (every node gets exactly one resource);
* area constraints per FPGA (<= CLB capacity);
* load constraints per resource and for the shared bus (<= deadline),
  the linear surrogate of the schedule-makespan constraint -- any real
  schedule is at least as long as its busiest resource, so these are
  valid lower-bound constraints; the partitioner closes the gap to the
  *real* list schedule with an outer deadline-tightening loop.

Two objectives:

* ``min_area`` (the canonical COOL objective): minimize total hardware
  area plus weighted communication, subject to a deadline;
* ``min_time``: minimize the load bound ``T`` subject to area capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .base import PartitioningProblem, Partitioner

__all__ = ["MilpFormulation", "build_formulation", "MilpPartitioner",
           "MilpError"]


class MilpError(RuntimeError):
    """Raised when no implementable partition can be derived."""


@dataclass
class MilpFormulation:
    """A mixed integer linear program in inequality standard form.

    minimize    c . z
    subject to  A_ub . z <= b_ub,   A_eq . z == b_eq,
                lb <= z <= ub,      z[i] integral where integrality[i] = 1

    Rows are stored sparsely as ``{var_index: coefficient}`` dictionaries.
    """

    var_names: list[str] = field(default_factory=list)
    c: list[float] = field(default_factory=list)
    a_ub: list[dict[int, float]] = field(default_factory=list)
    b_ub: list[float] = field(default_factory=list)
    a_eq: list[dict[int, float]] = field(default_factory=list)
    b_eq: list[float] = field(default_factory=list)
    lb: list[float] = field(default_factory=list)
    ub: list[float] = field(default_factory=list)
    integrality: list[int] = field(default_factory=list)

    def add_var(self, name: str, cost: float = 0.0, low: float = 0.0,
                high: float = 1.0, integral: bool = False) -> int:
        index = len(self.var_names)
        self.var_names.append(name)
        self.c.append(cost)
        self.lb.append(low)
        self.ub.append(high)
        self.integrality.append(1 if integral else 0)
        return index

    def add_le(self, row: dict[int, float], rhs: float) -> None:
        """Add the constraint ``row . z <= rhs``."""
        self.a_ub.append(dict(row))
        self.b_ub.append(rhs)

    def add_eq(self, row: dict[int, float], rhs: float) -> None:
        self.a_eq.append(dict(row))
        self.b_eq.append(rhs)

    @property
    def n_vars(self) -> int:
        return len(self.var_names)

    @property
    def n_binaries(self) -> int:
        return sum(self.integrality)

    def index_of(self, name: str) -> int:
        return self.var_names.index(name)


@dataclass
class _Indexing:
    """Variable bookkeeping shared by builder and extractor."""

    nodes: list[str]
    resources: list[str]
    x: dict[tuple[str, str], int]
    y: dict[str, int]
    t: int | None = None


def build_formulation(problem: PartitioningProblem,
                      objective: str = "min_area",
                      deadline: int | None = None,
                      comm_weight: float = 1.0) -> tuple[MilpFormulation,
                                                         _Indexing]:
    """Build the MILP for ``problem``.

    ``deadline`` overrides ``problem.deadline`` (the outer tightening
    loop passes adjusted values).
    """
    if objective not in ("min_area", "min_time"):
        raise ValueError(f"unknown objective {objective!r}")
    deadline = deadline if deadline is not None else problem.deadline
    if objective == "min_area" and deadline is None:
        raise MilpError("min_area objective requires a deadline")

    graph, arch, model = problem.graph, problem.arch, problem.model
    nodes = [n.name for n in graph.internal_nodes()]
    resources = list(arch.resource_names)
    form = MilpFormulation()

    indexing = _Indexing(nodes, resources, {}, {})
    for v in nodes:
        for r in resources:
            cost = 0.0
            if objective == "min_area" and arch.is_hardware(r):
                cost = float(model.area(v, r))
            indexing.x[(v, r)] = form.add_var(f"x[{v},{r}]", cost,
                                              integral=True)

    internal_edges = [e for e in graph.edges
                      if not graph.node(e.src).is_io
                      and not graph.node(e.dst).is_io]
    for e in internal_edges:
        cost = comm_weight * model.transfer_ticks(e) \
            if objective == "min_area" else 0.0
        indexing.y[e.name] = form.add_var(f"y[{e.name}]", cost)

    if objective == "min_time":
        indexing.t = form.add_var("T", cost=1.0, low=0.0, high=float("inf"))

    # assignment: every node on exactly one resource
    for v in nodes:
        form.add_eq({indexing.x[(v, r)]: 1.0 for r in resources}, 1.0)

    # cut indicators: y_e >= x[u,r] - x[v,r] for every resource
    for e in internal_edges:
        for r in resources:
            form.add_le({indexing.x[(e.src, r)]: 1.0,
                         indexing.x[(e.dst, r)]: -1.0,
                         indexing.y[e.name]: -1.0}, 0.0)

    # area capacity per FPGA
    for fpga in arch.fpgas:
        row = {indexing.x[(v, fpga.name)]: float(model.area(v, fpga.name))
               for v in nodes}
        form.add_le(row, float(fpga.clb_capacity))

    # constant bus traffic: edges touching the I/O controller are always
    # cut; internal cut edges contribute via y
    io_ticks = sum(model.transfer_ticks(e) for e in graph.edges
                   if graph.node(e.src).is_io or graph.node(e.dst).is_io)

    def time_bound_row() -> list[tuple[dict[int, float], float]]:
        rows = []
        for r in resources:
            row = {indexing.x[(v, r)]: float(model.latency(v, r))
                   for v in nodes}
            rows.append((row, 0.0))
        bus_row = {indexing.y[e.name]: float(model.transfer_ticks(e))
                   for e in internal_edges}
        rows.append((bus_row, float(io_ticks)))
        return rows

    if objective == "min_area":
        for row, constant in time_bound_row():
            form.add_le(row, float(deadline) - constant)
    else:
        for row, constant in time_bound_row():
            row = dict(row)
            row[indexing.t] = -1.0
            form.add_le(row, -constant)

    return form, indexing


def extract_mapping(solution, indexing: _Indexing) -> dict[str, str]:
    """Read the node -> resource mapping out of a solution vector."""
    mapping: dict[str, str] = {}
    for v in indexing.nodes:
        # max() keeps the first maximal resource, matching the
        # strict-improvement scan this replaces
        best_r, _ = max(((r, solution[indexing.x[(v, r)]])
                         for r in indexing.resources),
                        key=lambda item: item[1])
        mapping[v] = best_r
    return mapping


class MilpPartitioner(Partitioner):
    """Partitioning by MILP, with a deadline-tightening outer loop.

    Parameters
    ----------
    backend:
        ``"scipy"`` -- :func:`scipy.optimize.milp` (HiGHS);
        ``"bnb"`` -- the pure-Python branch-and-bound of
        :mod:`repro.partition.bnb`.
    objective:
        ``"auto"`` picks ``min_area`` when the problem has a deadline and
        ``min_time`` otherwise.
    comm_weight:
        Weight of communication ticks against CLBs in the min_area
        objective.
    max_rounds:
        Iterations of the deadline-tightening loop: the load-based MILP
        deadline is reduced whenever the *real* list schedule of the MILP
        solution misses the requested deadline.
    """

    def __init__(self, backend: str = "scipy", objective: str = "auto",
                 comm_weight: float = 1.0, max_rounds: int = 10) -> None:
        if backend not in ("scipy", "bnb"):
            raise ValueError(f"unknown backend {backend!r}")
        self.backend = backend
        self.objective = objective
        self.comm_weight = comm_weight
        self.max_rounds = max_rounds
        self.name = f"milp[{backend}]"
        self._stats: dict = {}

    # ------------------------------------------------------------------
    def _solve_formulation(self, form: MilpFormulation):
        if self.backend == "scipy":
            from .scipy_backend import solve_milp
            return solve_milp(form)
        from .bnb import solve_bnb
        return solve_bnb(form)

    def solve(self, problem: PartitioningProblem) -> dict[str, str]:
        from .base import evaluate_mapping
        objective = self.objective
        if objective == "auto":
            objective = "min_area" if problem.deadline is not None \
                else "min_time"

        self._stats = {"objective": objective, "rounds": 0}
        deadline = problem.deadline
        best_mapping: dict[str, str] | None = None
        target = problem.deadline

        rounds = self.max_rounds if objective == "min_area" else 1
        for round_no in range(rounds):
            form, indexing = build_formulation(
                problem, objective, deadline, self.comm_weight)
            solution = self._solve_formulation(form)
            self._stats["rounds"] = round_no + 1
            self._stats["variables"] = form.n_vars
            self._stats["binaries"] = form.n_binaries
            if solution is None:
                break
            mapping = extract_mapping(solution, indexing)
            best_mapping = mapping
            if objective != "min_area" or target is None:
                return mapping
            _, schedule, _ = evaluate_mapping(problem, mapping)
            if schedule.makespan <= target:
                return mapping
            # the load surrogate under-estimated the schedule: tighten
            assert deadline is not None
            overshoot = schedule.makespan - target
            deadline = max(1, deadline - max(overshoot, deadline // 16))

        if best_mapping is None:
            raise MilpError(
                "MILP found no implementable partition (deadline or area "
                "constraints are infeasible for this graph/architecture)")
        return best_mapping

    def stats(self) -> dict:
        return dict(self._stats)
