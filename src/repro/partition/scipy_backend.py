"""Solve :class:`repro.partition.milp.MilpFormulation` with SciPy/HiGHS.

Kept separate from the formulation so the pure-Python branch-and-bound
backend (:mod:`repro.partition.bnb`) can consume the identical program --
the cross-checking tests rely on both backends agreeing.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import csr_matrix

from .milp import MilpFormulation

__all__ = ["solve_milp"]


def _sparse(rows: list[dict[int, float]], n_vars: int) -> csr_matrix:
    data, row_idx, col_idx = [], [], []
    for i, row in enumerate(rows):
        for j, coef in row.items():
            row_idx.append(i)
            col_idx.append(j)
            data.append(coef)
    return csr_matrix((data, (row_idx, col_idx)),
                      shape=(len(rows), n_vars))


def solve_milp(form: MilpFormulation) -> np.ndarray | None:
    """Return the optimal solution vector, or ``None`` if infeasible."""
    constraints = []
    if form.a_ub:
        constraints.append(LinearConstraint(
            _sparse(form.a_ub, form.n_vars),
            ub=np.asarray(form.b_ub, dtype=float)))
    if form.a_eq:
        rhs = np.asarray(form.b_eq, dtype=float)
        constraints.append(LinearConstraint(
            _sparse(form.a_eq, form.n_vars), lb=rhs, ub=rhs))

    result = milp(
        c=np.asarray(form.c, dtype=float),
        constraints=constraints,
        integrality=np.asarray(form.integrality),
        bounds=Bounds(np.asarray(form.lb, dtype=float),
                      np.asarray(form.ub, dtype=float)),
    )
    if not result.success or result.x is None:
        return None
    return result.x
