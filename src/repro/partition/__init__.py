"""Hardware/software partitioning: MILP, branch-and-bound, heuristics, GA."""

from .base import (PartitioningProblem, PartitionResult, Partitioner,
                   evaluate_mapping)
from .feasibility import (FeasibilityReport, area_usage, check_feasibility,
                          memory_words_needed)
from .milp import MilpError, MilpFormulation, MilpPartitioner, build_formulation
from .bnb import BnbStats, solve_bnb
from .scipy_backend import solve_milp
from .heuristic import GreedyPartitioner, MilpHeuristicPartitioner
from .genetic import GaConfig, GeneticPartitioner

__all__ = [
    "PartitioningProblem", "PartitionResult", "Partitioner",
    "evaluate_mapping", "FeasibilityReport", "area_usage",
    "check_feasibility", "memory_words_needed", "MilpError",
    "MilpFormulation", "MilpPartitioner", "build_formulation", "BnbStats",
    "solve_bnb", "solve_milp", "GreedyPartitioner",
    "MilpHeuristicPartitioner", "GaConfig", "GeneticPartitioner",
]
