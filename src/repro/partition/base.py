"""Common interfaces of the partitioning algorithms.

COOL offers three partitioning engines -- "mixed integer linear
programming (MILP), a combination of MILP and a heuristic, or ... genetic
algorithms" (paper Section 2).  All of them implement the
:class:`Partitioner` interface here and return a :class:`PartitionResult`
that couples the coloured graph with its static schedule, which is
exactly the pair the co-synthesis step consumes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..estimate.model import CostModel
from ..fingerprint import content_hash
from ..graph.partition import Partition, from_mapping
from ..graph.taskgraph import TaskGraph
from ..platform.architecture import TargetArchitecture
from ..schedule.list_scheduler import list_schedule
from ..schedule.schedule import Schedule
from .feasibility import FeasibilityReport, check_feasibility

__all__ = ["PartitioningProblem", "PartitionResult", "Partitioner",
           "evaluate_mapping"]


@dataclass
class PartitioningProblem:
    """One partitioning task: graph, architecture and constraints.

    Parameters
    ----------
    graph:
        The task graph to partition.
    arch:
        The target board.
    deadline:
        Optional makespan bound in bus ticks.  With a deadline the
        canonical COOL objective applies: *minimize hardware area subject
        to the deadline* (the DAES'97 formulation).  Without one the
        objective is to minimize the makespan subject to area.
    """

    graph: TaskGraph
    arch: TargetArchitecture
    deadline: int | None = None
    model: CostModel = field(init=False)

    def __post_init__(self) -> None:
        self.model = CostModel(self.graph, self.arch)

    @property
    def resources(self) -> tuple[str, ...]:
        return self.arch.resource_names

    def make_partition(self, mapping: dict[str, str]) -> Partition:
        return from_mapping(self.graph, mapping, self.arch.fpga_names,
                            self.arch.processor_names)


@dataclass
class PartitionResult:
    """Partitioner output: coloured graph + static schedule + report."""

    partition: Partition
    schedule: Schedule
    feasibility: FeasibilityReport
    algorithm: str
    runtime_s: float
    stats: dict = field(default_factory=dict)

    @property
    def makespan(self) -> int:
        return self.schedule.makespan

    @property
    def hw_area(self) -> int:
        return sum(self.feasibility.area.values())

    def fingerprint(self) -> str:
        """Content hash of the solution (not of solver wall-clock)."""
        return content_hash((self.partition.fingerprint(),
                             self.schedule.fingerprint(), self.algorithm,
                             self.feasibility.feasible))

    def summary(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "makespan": self.makespan,
            "hw_area_clbs": self.hw_area,
            "hw_nodes": len(self.partition.hw_nodes()),
            "sw_nodes": len(self.partition.sw_nodes()),
            "cut_edges": len(self.partition.cut_edges()),
            "feasible": self.feasibility.feasible,
            "runtime_s": round(self.runtime_s, 4),
            **self.stats,
        }


def evaluate_mapping(problem: PartitioningProblem,
                     mapping: dict[str, str]) -> tuple[Partition, Schedule,
                                                       FeasibilityReport]:
    """Schedule a mapping and check its feasibility (shared helper)."""
    partition = problem.make_partition(mapping)
    schedule = list_schedule(partition, problem.model)
    report = check_feasibility(partition, problem.model,
                               makespan=schedule.makespan,
                               deadline=problem.deadline)
    return partition, schedule, report


class Partitioner:
    """Base class: concrete partitioners implement :meth:`solve`."""

    name = "abstract"

    def solve(self, problem: PartitioningProblem) -> dict[str, str]:
        """Return a mapping node -> resource for all internal nodes."""
        raise NotImplementedError

    def partition(self, problem: PartitioningProblem) -> PartitionResult:
        """Template method: solve, schedule, check, package."""
        started = time.perf_counter()
        mapping = self.solve(problem)
        partition, schedule, report = evaluate_mapping(problem, mapping)
        elapsed = time.perf_counter() - started
        return PartitionResult(partition, schedule, report, self.name,
                               elapsed, self.stats())

    def stats(self) -> dict:
        """Algorithm-specific counters for reports (override freely)."""
        return {}

    def fingerprint(self) -> str:
        """Content hash of the algorithm and its configuration.

        Two partitioner instances of the same class with the same
        constructor attributes fingerprint identically, so the flow's
        stage cache can reuse a partitioning result across runs.
        Underscore-prefixed attributes are excluded: they hold run
        scratch state (counters, caches), not configuration.
        """
        config = tuple(sorted((k, repr(v)) for k, v in vars(self).items()
                              if not k.startswith("_")))
        return content_hash((type(self).__qualname__, self.name, config))
