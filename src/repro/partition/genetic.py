"""Genetic-algorithm partitioning (the third engine COOL offers).

Chromosome: one gene per internal node holding a resource index.
Fitness: the makespan of the **real** list schedule, plus heavy
penalties for constraint violations (FPGA area, shared-memory footprint,
deadline).  Selection is tournament-based with elitism, crossover is
uniform, and mutation re-draws single genes.  All randomness flows from
one seed, so runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .base import PartitioningProblem, Partitioner, evaluate_mapping

__all__ = ["GeneticPartitioner", "GaConfig"]


@dataclass(frozen=True)
class GaConfig:
    """Hyper-parameters of the genetic partitioner."""

    population: int = 30
    generations: int = 40
    tournament: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.08
    elite: int = 2
    seed: int = 0
    area_penalty: float = 50.0
    memory_penalty: float = 10.0
    deadline_penalty: float = 5.0


class GeneticPartitioner(Partitioner):
    """Evolve node -> resource mappings against the real scheduler."""

    name = "genetic"

    def __init__(self, config: GaConfig | None = None, **overrides) -> None:
        base = config if config is not None else GaConfig()
        if overrides:
            base = GaConfig(**{**base.__dict__, **overrides})
        self.config = base
        self._stats: dict = {}

    # ------------------------------------------------------------------
    def _fitness(self, problem: PartitioningProblem,
                 genome: tuple[int, ...], nodes: list[str],
                 resources: list[str]) -> float:
        mapping = {v: resources[g] for v, g in zip(nodes, genome)}
        _, schedule, report = evaluate_mapping(problem, mapping)
        cfg = self.config
        fitness = float(schedule.makespan)
        arch = problem.arch
        for fpga in arch.fpgas:
            over = report.area.get(fpga.name, 0) - fpga.clb_capacity
            if over > 0:
                fitness += cfg.area_penalty * over
        mem_over = report.memory_words - arch.memory.words
        if mem_over > 0:
            fitness += cfg.memory_penalty * mem_over
        if problem.deadline is not None \
                and schedule.makespan > problem.deadline:
            fitness += cfg.deadline_penalty \
                * (schedule.makespan - problem.deadline)
        return fitness

    def solve(self, problem: PartitioningProblem) -> dict[str, str]:
        cfg = self.config
        rng = random.Random(cfg.seed)
        nodes = [n.name for n in problem.graph.internal_nodes()]
        resources = list(problem.resources)
        n_res = len(resources)

        def random_genome() -> tuple[int, ...]:
            return tuple(rng.randrange(n_res) for _ in nodes)

        # seed the population with the two trivial corners plus randoms
        population: list[tuple[int, ...]] = []
        if problem.arch.processors:
            cpu_index = resources.index(problem.arch.processor_names[0])
            population.append(tuple([cpu_index] * len(nodes)))
        if problem.arch.fpgas:
            fpga_index = resources.index(problem.arch.fpga_names[0])
            population.append(tuple([fpga_index] * len(nodes)))
        while len(population) < cfg.population:
            population.append(random_genome())

        cache: dict[tuple[int, ...], float] = {}

        def fitness(genome: tuple[int, ...]) -> float:
            if genome not in cache:
                cache[genome] = self._fitness(problem, genome, nodes,
                                              resources)
            return cache[genome]

        def tournament() -> tuple[int, ...]:
            picks = [population[rng.randrange(len(population))]
                     for _ in range(cfg.tournament)]
            return min(picks, key=fitness)

        best = min(population, key=fitness)
        stagnant = 0
        for generation in range(cfg.generations):
            graded = sorted(population, key=fitness)
            next_pop = graded[: cfg.elite]
            while len(next_pop) < cfg.population:
                mother, father = tournament(), tournament()
                if rng.random() < cfg.crossover_rate:
                    child = tuple(m if rng.random() < 0.5 else f
                                  for m, f in zip(mother, father))
                else:
                    child = mother
                child = tuple(
                    rng.randrange(n_res) if rng.random() < cfg.mutation_rate
                    else gene for gene in child)
                next_pop.append(child)
            population = next_pop
            generation_best = min(population, key=fitness)
            if fitness(generation_best) < fitness(best):
                best = generation_best
                stagnant = 0
            else:
                stagnant += 1
            if stagnant >= 12:
                break  # converged

        self._stats = {
            "generations_run": generation + 1,
            "fitness_evaluations": len(cache),
            "best_fitness": fitness(best),
        }
        return {v: resources[g] for v, g in zip(nodes, best)}

    def stats(self) -> dict:
        return dict(self._stats)
