"""Greedy gain-driven partitioning heuristics.

Two engines:

* :class:`GreedyPartitioner` -- COOL-style constructive heuristic.
  Starts from the pure-software solution on the best processor and
  repeatedly moves the node with the best *gain* to a hardware resource,
  where gain is measured on the **real** list schedule (makespan
  reduction), normalized by CLB cost when minimizing area.  Stops when
  the deadline is met (min_area mode) or no move improves the makespan
  (min_time mode).

* :class:`MilpHeuristicPartitioner` -- the paper's "combination of MILP
  and a heuristic": the MILP runs on a *reduced* program (LP relaxation
  solved exactly, only the K most fractional nodes kept binary), its
  rounded solution seeds the greedy improver.  This trades optimality
  for speed on large graphs, exactly the role the combination plays in
  COOL.
"""

from __future__ import annotations

from .base import PartitioningProblem, Partitioner, evaluate_mapping

__all__ = ["GreedyPartitioner", "MilpHeuristicPartitioner"]


def _best_processor(problem: PartitioningProblem) -> str:
    """Processor with the lowest serial software makespan."""
    arch = problem.arch
    if not arch.processors:
        # all-hardware board: start everything on the first FPGA
        return arch.fpga_names[0]
    internal = [n.name for n in problem.graph.internal_nodes()]
    return min(arch.processor_names,
               key=lambda p: sum(problem.model.latency(v, p)
                                 for v in internal))


class GreedyPartitioner(Partitioner):
    """Constructive gain-based heuristic (software-first).

    Parameters
    ----------
    max_moves:
        Upper bound on accepted moves (defaults to node count, i.e. the
        heuristic may move everything to hardware).
    candidates_per_round:
        Only the ``k`` nodes with the largest software load are evaluated
        each round -- the classic trick that keeps the heuristic
        O(k * moves) schedule evaluations.
    """

    name = "greedy"

    def __init__(self, max_moves: int | None = None,
                 candidates_per_round: int = 8) -> None:
        self.max_moves = max_moves
        self.candidates_per_round = candidates_per_round
        self._stats: dict = {}

    def solve(self, problem: PartitioningProblem) -> dict[str, str]:
        model = problem.model
        arch = problem.arch
        home = _best_processor(problem)
        internal = [n.name for n in problem.graph.internal_nodes()]
        mapping = {v: home for v in internal}
        hw_names = list(arch.fpga_names)
        self._stats = {"moves": 0, "evaluations": 0}
        if not hw_names:
            return mapping

        _, schedule, report = evaluate_mapping(problem, mapping)
        self._stats["evaluations"] += 1
        best_makespan = schedule.makespan
        area_left = {f.name: f.clb_capacity for f in arch.fpgas}
        max_moves = self.max_moves if self.max_moves is not None \
            else len(internal)

        while self._stats["moves"] < max_moves:
            if problem.deadline is not None \
                    and best_makespan <= problem.deadline \
                    and report.feasible:
                break  # min_area mode: deadline met, stop adding hardware
            software = [v for v in internal if mapping[v] == home]
            if not software:
                break
            candidates = sorted(
                software, key=lambda v: -model.latency(v, home)
            )[: self.candidates_per_round]

            best_move, best_gain, best_ratio = None, 0, -1.0
            for v in candidates:
                for f in hw_names:
                    if model.area(v, f) > area_left[f]:
                        continue
                    trial = dict(mapping)
                    trial[v] = f
                    _, trial_schedule, trial_report = \
                        evaluate_mapping(problem, trial)
                    self._stats["evaluations"] += 1
                    if not trial_report.memory_ok:
                        continue
                    gain = best_makespan - trial_schedule.makespan
                    ratio = gain / max(model.area(v, f), 1)
                    if gain > 0 and ratio > best_ratio:
                        best_move, best_gain, best_ratio = (v, f), gain, ratio
            if best_move is None:
                break
            v, f = best_move
            mapping[v] = f
            area_left[f] -= model.area(v, f)
            best_makespan -= best_gain
            _, schedule, report = evaluate_mapping(problem, mapping)
            self._stats["evaluations"] += 1
            best_makespan = schedule.makespan
            self._stats["moves"] += 1

        return mapping

    def stats(self) -> dict:
        return dict(self._stats)


class MilpHeuristicPartitioner(Partitioner):
    """The paper's MILP + heuristic combination.

    Solves the LP relaxation of the full MILP, fixes every node whose
    relaxed assignment is (nearly) integral, and lets
    :class:`GreedyPartitioner`-style local moves repair the rest.
    """

    name = "milp+heuristic"

    def __init__(self, integrality_threshold: float = 0.99) -> None:
        self.integrality_threshold = integrality_threshold
        self._stats: dict = {}

    def solve(self, problem: PartitioningProblem) -> dict[str, str]:
        import numpy as np
        from scipy.optimize import linprog
        from scipy.sparse import csr_matrix

        from .milp import build_formulation, extract_mapping

        objective = "min_area" if problem.deadline is not None else "min_time"
        form, indexing = build_formulation(problem, objective)

        def sparse(rows):
            data, ri, ci = [], [], []
            for i, row in enumerate(rows):
                for j, coef in row.items():
                    ri.append(i)
                    ci.append(j)
                    data.append(coef)
            return csr_matrix((data, (ri, ci)),
                              shape=(len(rows), form.n_vars))

        ub = np.asarray([1e9 if u == float("inf") else u for u in form.ub])
        result = linprog(
            c=np.asarray(form.c, dtype=float),
            A_ub=sparse(form.a_ub) if form.a_ub else None,
            b_ub=np.asarray(form.b_ub) if form.b_ub else None,
            A_eq=sparse(form.a_eq) if form.a_eq else None,
            b_eq=np.asarray(form.b_eq) if form.b_eq else None,
            bounds=np.column_stack([np.asarray(form.lb), ub]),
            method="highs",
        )

        if result.success and result.x is not None:
            relaxed = extract_mapping(result.x, indexing)
            fractional = 0
            for v in indexing.nodes:
                top = max(result.x[indexing.x[(v, r)]]
                          for r in indexing.resources)
                if top < self.integrality_threshold:
                    fractional += 1
            self._stats = {"lp_status": "ok", "fractional_nodes": fractional}
            seed_mapping = relaxed
        else:
            # LP infeasible (e.g. impossible deadline): greedy from scratch
            self._stats = {"lp_status": "infeasible", "fractional_nodes": -1}
            seed_mapping = {n.name: _best_processor(problem)
                            for n in problem.graph.internal_nodes()}

        improved = self._repair_and_improve(problem, seed_mapping)
        return improved

    # ------------------------------------------------------------------
    def _repair_and_improve(self, problem: PartitioningProblem,
                            mapping: dict[str, str]) -> dict[str, str]:
        """Fix area violations, then greedy single-move improvement."""
        model, arch = problem.model, problem.arch
        home = _best_processor(problem)
        mapping = dict(mapping)

        # repair: evict cheapest-gain nodes from over-full FPGAs
        for fpga in arch.fpgas:
            def used() -> int:
                return sum(model.area(v, fpga.name) for v, r in mapping.items()
                           if r == fpga.name)
            while used() > fpga.clb_capacity:
                on_fpga = [v for v, r in mapping.items() if r == fpga.name]
                victim = max(on_fpga, key=lambda v: model.area(v, fpga.name))
                mapping[victim] = home

        _, schedule, _ = evaluate_mapping(problem, mapping)
        best = schedule.makespan
        moves = 0
        improved = True
        while improved and moves < 2 * len(mapping):
            improved = False
            # single-pass first-improvement over all nodes and resources
            for v in sorted(mapping):
                for r in problem.resources:
                    if r == mapping[v]:
                        continue
                    if arch.is_hardware(r):
                        load = sum(model.area(u, r) for u, q in mapping.items()
                                   if q == r and u != v)
                        if load + model.area(v, r) > arch.fpga(r).clb_capacity:
                            continue
                    trial = dict(mapping)
                    trial[v] = r
                    _, trial_schedule, trial_report = \
                        evaluate_mapping(problem, trial)
                    if trial_schedule.makespan < best \
                            and trial_report.memory_ok:
                        mapping, best = trial, trial_schedule.makespan
                        moves += 1
                        improved = True
                        break
                if improved:
                    break
        self._stats["improvement_moves"] = moves
        return mapping

    def stats(self) -> dict:
        return dict(self._stats)
