"""Pure-Python branch-and-bound MILP solver.

An independent implementation of the optimization core, so the
reproduction does not *depend* on SciPy's HiGHS MILP driver: LP
relaxations are solved with ``scipy.optimize.linprog`` (simplex-class
solver), branching is depth-first on the most fractional binary with
best-first child ordering, and incumbents prune by objective bound.

The cross-check tests assert this solver and the HiGHS backend reach the
same objective value on the paper's problem sizes (tens of binaries).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from .milp import MilpFormulation

__all__ = ["solve_bnb", "BnbStats"]

_EPS = 1e-6


@dataclass
class BnbStats:
    """Search counters of one branch-and-bound run."""

    lp_solves: int = 0
    nodes_explored: int = 0
    incumbents: int = 0
    pruned: int = 0


def _relaxation(form: MilpFormulation, lb: np.ndarray, ub: np.ndarray,
                a_ub, b_ub, a_eq, b_eq):
    result = linprog(
        c=np.asarray(form.c, dtype=float),
        A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
        bounds=np.column_stack([lb, ub]),
        method="highs",
    )
    if not result.success or result.x is None:
        return None, None
    return result.x, result.fun


def solve_bnb(form: MilpFormulation, node_limit: int = 20000,
              stats: BnbStats | None = None) -> np.ndarray | None:
    """Solve the MILP; returns the best integral solution or ``None``.

    ``node_limit`` bounds the search; when hit, the best incumbent found
    so far is returned (or ``None`` if none exists yet).
    """
    stats = stats if stats is not None else BnbStats()

    def sparse(rows):
        data, ri, ci = [], [], []
        for i, row in enumerate(rows):
            for j, coef in row.items():
                ri.append(i)
                ci.append(j)
                data.append(coef)
        return csr_matrix((data, (ri, ci)), shape=(len(rows), form.n_vars))

    a_ub = sparse(form.a_ub) if form.a_ub else None
    b_ub = np.asarray(form.b_ub, dtype=float) if form.b_ub else None
    a_eq = sparse(form.a_eq) if form.a_eq else None
    b_eq = np.asarray(form.b_eq, dtype=float) if form.b_eq else None

    lb0 = np.asarray(form.lb, dtype=float)
    ub0 = np.asarray([1e9 if u == float("inf") else u for u in form.ub],
                     dtype=float)
    binaries = [i for i, flag in enumerate(form.integrality) if flag]

    best_x: np.ndarray | None = None
    best_obj = float("inf")

    stack: list[tuple[np.ndarray, np.ndarray]] = [(lb0, ub0)]
    while stack and stats.nodes_explored < node_limit:
        lb, ub = stack.pop()
        stats.nodes_explored += 1
        stats.lp_solves += 1
        x, obj = _relaxation(form, lb, ub, a_ub, b_ub, a_eq, b_eq)
        if x is None:
            stats.pruned += 1
            continue
        if obj >= best_obj - _EPS:
            stats.pruned += 1
            continue
        # most fractional binary variable
        frac_var, frac_dist = -1, 0.0
        for i in binaries:
            frac = abs(x[i] - round(x[i]))
            if frac > frac_dist + _EPS:
                frac_var, frac_dist = i, frac
        if frac_var < 0:
            # integral within tolerance: new incumbent
            best_x = x.copy()
            for i in binaries:
                best_x[i] = round(best_x[i])
            best_obj = obj
            stats.incumbents += 1
            continue
        # branch: explore the child closer to the LP value first (pushed
        # last so it is popped first)
        floor_ub = ub.copy()
        floor_ub[frac_var] = 0.0
        ceil_lb = lb.copy()
        ceil_lb[frac_var] = 1.0
        if x[frac_var] >= 0.5:
            stack.append((lb, floor_ub))
            stack.append((ceil_lb, ub))
        else:
            stack.append((ceil_lb, ub))
            stack.append((lb, floor_ub))

    return best_x
