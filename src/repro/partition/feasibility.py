"""Feasibility checks shared by all partitioners.

A partition is implementable on the target board when (paper Section 3):

* every FPGA's estimated CLB usage fits its capacity (196 CLBs for the
  XC4005 devices of the case study),
* the memory cells of all inter-unit transfers fit the shared RAM
  (64 kB on the paper's board), and
* an optional deadline on the schedule makespan is met.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from ..estimate.model import CostModel
from ..graph.partition import Partition
from ..platform.architecture import TargetArchitecture

__all__ = ["area_usage", "memory_words_needed", "FeasibilityReport",
           "check_feasibility"]


def area_usage(partition: Partition, model: CostModel) -> dict[str, int]:
    """Estimated CLB usage per FPGA (sum of node datapath estimates)."""
    usage = {name: 0 for name in partition.hw_resources}
    for node_name in partition.hw_nodes():
        resource = partition.resource_of(node_name)
        usage[resource] += model.area(node_name, resource)
    return usage


def edge_memory_words(edge, arch: TargetArchitecture) -> int:
    """Memory cells needed by one cut edge in the shared memory."""
    cell_bits = arch.memory.word_bytes * 8
    return max(1, ceil(edge.width / cell_bits)) * edge.words


def memory_words_needed(partition: Partition,
                        arch: TargetArchitecture) -> int:
    """Naive (no-reuse) memory footprint of all cut edges, in words.

    This is the partitioning-time upper bound; the co-synthesis memory
    allocator (:mod:`repro.stg.memory`) reuses cells via lifetime
    analysis and can only do better.
    """
    return sum(edge_memory_words(e, arch) for e in partition.cut_edges())


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of all feasibility checks for one partition."""

    area: dict
    area_ok: bool
    memory_words: int
    memory_ok: bool
    makespan: int | None
    deadline_ok: bool

    @property
    def feasible(self) -> bool:
        return self.area_ok and self.memory_ok and self.deadline_ok

    def problems(self) -> list[str]:
        out = []
        if not self.area_ok:
            out.append(f"FPGA area exceeded: {self.area}")
        if not self.memory_ok:
            out.append(f"memory footprint {self.memory_words} words too large")
        if not self.deadline_ok:
            out.append(f"deadline missed (makespan {self.makespan})")
        return out


def check_feasibility(partition: Partition, model: CostModel,
                      makespan: int | None = None,
                      deadline: int | None = None) -> FeasibilityReport:
    """Run every feasibility check; ``makespan`` comes from a schedule."""
    arch = model.arch
    usage = area_usage(partition, model)
    area_ok = all(usage[f.name] <= f.clb_capacity for f in arch.fpgas)
    words = memory_words_needed(partition, arch)
    memory_ok = words <= arch.memory.words
    deadline_ok = (deadline is None or makespan is None
                   or makespan <= deadline)
    return FeasibilityReport(usage, area_ok, words, memory_ok,
                             makespan, deadline_ok)
