"""Static schedules: the second output of COOL's partitioning phase.

A :class:`Schedule` fixes, for every task-graph node, a start/end time on
its processing unit, and for every *cut* edge (endpoints on different
units) a write burst and a read burst on the system bus into/out of
shared memory.  Times are in bus clock ticks, the common time base
established by :class:`repro.estimate.CostModel`.

Transfers are mediated over the bus while the producing/consuming units
are idle -- in the synthesized system the system controller walks the
memory map exactly in this order, so schedule order is also the order of
the STG construction (paper Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fingerprint import content_hash
from ..graph.partition import Partition
from ..graph.taskgraph import DataEdge, GraphError

__all__ = ["ScheduleEntry", "TransferEntry", "Schedule", "ScheduleError"]


class ScheduleError(GraphError):
    """Raised for malformed or inconsistent schedules."""


@dataclass(frozen=True)
class ScheduleEntry:
    """Execution slot of one node on its processing unit."""

    node: str
    resource: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ScheduleError(
                f"node {self.node!r}: bad slot [{self.start}, {self.end})")

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class TransferEntry:
    """One bus burst moving a cut edge's payload to or from shared memory.

    ``direction`` is ``"write"`` (producer unit -> memory) or ``"read"``
    (memory -> consumer unit).
    """

    edge: str
    direction: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.direction not in ("write", "read"):
            raise ScheduleError(f"transfer {self.edge}: bad direction "
                                f"{self.direction!r}")
        if self.start < 0 or self.end <= self.start:
            raise ScheduleError(
                f"transfer {self.edge}: bad slot [{self.start}, {self.end})")

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class Schedule:
    """A complete static schedule for a partitioned task graph."""

    partition: Partition
    entries: dict[str, ScheduleEntry] = field(default_factory=dict)
    transfers: list[TransferEntry] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add(self, entry: ScheduleEntry) -> None:
        if entry.node in self.entries:
            raise ScheduleError(f"node {entry.node!r} scheduled twice")
        self.entries[entry.node] = entry

    def add_transfer(self, transfer: TransferEntry) -> None:
        self.transfers.append(transfer)

    # ------------------------------------------------------------------
    def entry(self, node: str) -> ScheduleEntry:
        try:
            return self.entries[node]
        except KeyError:
            raise ScheduleError(f"node {node!r} is not scheduled") from None

    def transfers_of(self, edge: DataEdge | str) -> list[TransferEntry]:
        name = edge if isinstance(edge, str) else edge.name
        return [t for t in self.transfers if t.edge == name]

    def on_resource(self, resource: str) -> list[ScheduleEntry]:
        """Entries of one processing unit, ordered by start time."""
        slots = [e for e in self.entries.values() if e.resource == resource]
        return sorted(slots, key=lambda e: (e.start, e.node))

    @property
    def makespan(self) -> int:
        """End of the last activity (node slot or bus transfer)."""
        ends = [e.end for e in self.entries.values()]
        ends += [t.end for t in self.transfers]
        return max(ends, default=0)

    @property
    def bus_busy_ticks(self) -> int:
        return sum(t.duration for t in self.transfers)

    def utilization(self, resource: str) -> float:
        """Fraction of the makespan during which ``resource`` computes."""
        span = self.makespan
        if span == 0:
            return 0.0
        busy = sum(e.duration for e in self.on_resource(resource))
        return busy / span

    def fingerprint(self) -> str:
        """Content hash over slots, transfers and the underlying partition.

        The STG and communication-refinement pipeline stages key their
        caches on this: identical schedules (same partition, same slot
        times, same bus bursts) produce identical co-synthesis results.
        """
        return content_hash((
            self.partition.fingerprint(),
            tuple(sorted((e.node, e.resource, e.start, e.end)
                         for e in self.entries.values())),
            tuple((t.edge, t.direction, t.start, t.end)
                  for t in self.transfers)))

    def summary(self) -> dict:
        per_resource = {r: len(self.on_resource(r))
                        for r in self.partition.resources_used}
        return {
            "makespan": self.makespan,
            "nodes": len(self.entries),
            "transfers": len(self.transfers),
            "bus_busy_ticks": self.bus_busy_ticks,
            "nodes_per_resource": per_resource,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Schedule({len(self.entries)} nodes, "
                f"{len(self.transfers)} transfers, makespan={self.makespan})")
