"""ASAP / ALAP analysis on a partitioned task graph.

Resource-unconstrained earliest/latest start times with the mapped
latencies of a :class:`repro.estimate.CostModel`.  Used for list-scheduler
priorities (critical-path length, slack) and as a makespan lower bound.
Communication latencies of cut edges are included on the edges.
"""

from __future__ import annotations

from ..estimate.model import CostModel
from ..graph.partition import Partition

__all__ = ["asap_times", "alap_times", "critical_path_length", "slack"]


def _edge_delay(model: CostModel, partition: Partition, edge) -> int:
    """Delay contributed by an edge: transfer time if it crosses units."""
    if partition.resource_of(edge.src) == partition.resource_of(edge.dst):
        return 0
    return model.transfer_ticks(edge)


def _latency(model: CostModel, partition: Partition, node: str) -> int:
    return model.latency(node, partition.resource_of(node))


def asap_times(partition: Partition, model: CostModel) -> dict[str, int]:
    """Earliest start time of every node, ignoring resource conflicts."""
    graph = partition.graph
    start: dict[str, int] = {}
    for name in graph.topological_order():
        earliest = 0
        for edge in graph.in_edges(name):
            pred_end = start[edge.src] + _latency(model, partition, edge.src)
            earliest = max(earliest, pred_end + _edge_delay(model, partition, edge))
        start[name] = earliest
    return start


def critical_path_length(partition: Partition, model: CostModel) -> int:
    """Length of the critical path = unconstrained makespan lower bound."""
    starts = asap_times(partition, model)
    return max((starts[n] + _latency(model, partition, n) for n in starts),
               default=0)


def alap_times(partition: Partition, model: CostModel,
               deadline: int | None = None) -> dict[str, int]:
    """Latest start times meeting ``deadline`` (default: critical path)."""
    graph = partition.graph
    horizon = deadline if deadline is not None else \
        critical_path_length(partition, model)
    latest: dict[str, int] = {}
    for name in reversed(graph.topological_order()):
        lat = _latency(model, partition, name)
        bound = horizon - lat
        for edge in graph.out_edges(name):
            succ_latest = latest[edge.dst]
            bound = min(bound, succ_latest
                        - _edge_delay(model, partition, edge) - lat)
        latest[name] = bound
    return latest


def slack(partition: Partition, model: CostModel,
          deadline: int | None = None) -> dict[str, int]:
    """Per-node slack = ALAP - ASAP; zero-slack nodes are critical."""
    asap = asap_times(partition, model)
    alap = alap_times(partition, model, deadline)
    return {name: alap[name] - asap[name] for name in asap}
