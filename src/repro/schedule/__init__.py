"""Static scheduling: ASAP/ALAP analysis and resource-constrained lists."""

from .schedule import Schedule, ScheduleEntry, ScheduleError, TransferEntry
from .asap_alap import alap_times, asap_times, critical_path_length, slack
from .list_scheduler import list_schedule
from .validate import check_schedule, validate_schedule
from .gantt import gantt_chart

__all__ = [
    "Schedule", "ScheduleEntry", "ScheduleError", "TransferEntry",
    "alap_times", "asap_times", "critical_path_length", "slack",
    "list_schedule", "check_schedule", "validate_schedule", "gantt_chart",
]
