"""Text Gantt charts for static schedules.

Renders the schedule the way paper Fig. 2 presents it: one row per
processing unit (plus the bus), time flowing left to right.
"""

from __future__ import annotations

from .schedule import Schedule

__all__ = ["gantt_chart"]


def gantt_chart(schedule: Schedule, width: int = 72) -> str:
    """Render an ASCII Gantt chart scaled to ``width`` characters."""
    makespan = schedule.makespan
    if makespan == 0:
        return "(empty schedule)"
    scale = width / makespan

    def column(t: int) -> int:
        return min(int(t * scale), width - 1)

    lines = [f"makespan = {makespan} bus ticks"]
    resources = list(schedule.partition.resources_used)
    label_w = max((len(r) for r in resources + ["bus"]), default=3) + 1

    for resource in resources:
        row = [" "] * width
        for entry in schedule.on_resource(resource):
            lo, hi = column(entry.start), column(entry.end - 1)
            for i in range(lo, hi + 1):
                row[i] = "#"
            tag = entry.node[: hi - lo + 1]
            for offset, ch in enumerate(tag):
                row[lo + offset] = ch
        lines.append(f"{resource:<{label_w}}|{''.join(row)}|")

    row = [" "] * width
    for transfer in sorted(schedule.transfers, key=lambda t: t.start):
        lo, hi = column(transfer.start), column(transfer.end - 1)
        mark = "w" if transfer.direction == "write" else "r"
        for i in range(lo, hi + 1):
            row[i] = mark
    lines.append(f"{'bus':<{label_w}}|{''.join(row)}|")
    return "\n".join(lines)
