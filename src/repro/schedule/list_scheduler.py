"""Resource-constrained list scheduling.

Produces the static schedule of COOL's partitioning phase: every
processing unit executes one node at a time; payloads of cut edges move
over the single system bus (write burst by the producer side, later a
read burst for the consumer side), and the bus carries one burst at a
time.  Priorities are critical-path lengths, so the scheduler is the
classic latency-weighted list scheduler of the HLS literature applied at
task granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..estimate.model import CostModel
from ..graph.partition import Partition
from .asap_alap import _edge_delay, _latency  # shared cost helpers
from .schedule import Schedule, ScheduleEntry, ScheduleError, TransferEntry

__all__ = ["list_schedule"]


@dataclass
class _Timeline:
    """Busy intervals of one exclusive resource, kept sorted."""

    busy: list[tuple[int, int]] = field(default_factory=list)

    def earliest_slot(self, after: int, duration: int) -> int:
        """First start >= after such that [start, start+duration) is free."""
        start = after
        for b_start, b_end in self.busy:
            if b_end <= start:
                continue
            if b_start >= start + duration:
                break
            start = b_end
        return start

    def reserve(self, start: int, duration: int) -> None:
        self.busy.append((start, start + duration))
        self.busy.sort()


def _priorities(partition: Partition, model: CostModel) -> dict[str, int]:
    """Critical-path-to-sink length of every node (higher = schedule first)."""
    graph = partition.graph
    prio: dict[str, int] = {}
    for name in reversed(graph.topological_order()):
        lat = _latency(model, partition, name)
        downstream = 0
        for edge in graph.out_edges(name):
            downstream = max(downstream,
                             _edge_delay(model, partition, edge)
                             + prio[edge.dst])
        prio[name] = lat + downstream
    return prio


def list_schedule(partition: Partition, model: CostModel) -> Schedule:
    """Compute a static schedule for a coloured partitioning graph.

    Deterministic: ties between equal-priority ready nodes break on the
    node name, so repeated runs produce identical schedules (important
    for reproducible STGs and memory maps downstream).
    """
    graph = partition.graph
    if model.graph is not graph:
        raise ScheduleError("cost model was built for a different graph")

    prio = _priorities(partition, model)
    schedule = Schedule(partition)
    timelines: dict[str, _Timeline] = {}
    bus = _Timeline()

    def timeline(resource: str) -> _Timeline:
        if resource not in timelines:
            timelines[resource] = _Timeline()
        return timelines[resource]

    remaining_preds = {n: len(graph.in_edges(n)) for n in graph.node_names}
    ready = [n for n, k in remaining_preds.items() if k == 0]

    while ready:
        ready.sort(key=lambda n: (-prio[n], n))
        node = ready.pop(0)
        resource = partition.resource_of(node)
        latency = _latency(model, partition, node)

        earliest = 0
        pending_reads: list[tuple[str, int, int]] = []  # (edge, write_end, read_ticks)
        for edge in graph.in_edges(node):
            producer = schedule.entry(edge.src)
            if partition.resource_of(edge.src) == resource:
                earliest = max(earliest, producer.end)
                continue
            # cut edge: write burst after the producer finished ...
            write_ticks = model.write_ticks(edge)
            write_start = bus.earliest_slot(producer.end, write_ticks)
            bus.reserve(write_start, write_ticks)
            schedule.add_transfer(TransferEntry(
                edge.name, "write", write_start, write_start + write_ticks))
            # ... then a read burst for this consumer
            pending_reads.append((edge.name, write_start + write_ticks,
                                  model.read_ticks(edge)))

        for edge_name, write_end, read_ticks in pending_reads:
            read_start = bus.earliest_slot(write_end, read_ticks)
            bus.reserve(read_start, read_ticks)
            schedule.add_transfer(TransferEntry(
                edge_name, "read", read_start, read_start + read_ticks))
            earliest = max(earliest, read_start + read_ticks)

        line = timeline(resource)
        start = line.earliest_slot(earliest, latency)
        line.reserve(start, latency)
        schedule.add(ScheduleEntry(node, resource, start, start + latency))

        for edge in graph.out_edges(node):
            remaining_preds[edge.dst] -= 1
            if remaining_preds[edge.dst] == 0:
                ready.append(edge.dst)

    if len(schedule.entries) != len(graph.node_names):
        missing = set(graph.node_names) - set(schedule.entries)
        raise ScheduleError(f"unschedulable nodes (cycle?): {sorted(missing)}")
    return schedule
