"""Schedule validation.

Checks every invariant the co-synthesis step relies on: completeness,
per-unit mutual exclusion, single-bus exclusion, and data-dependence
ordering including the write -> read protocol on cut edges.
"""

from __future__ import annotations

from ..graph.partition import Partition
from .schedule import Schedule

__all__ = ["validate_schedule", "check_schedule"]


def _overlaps(intervals: list[tuple[int, int, str]]) -> list[str]:
    problems = []
    ordered = sorted(intervals)
    for (s1, e1, a), (s2, e2, b) in zip(ordered, ordered[1:]):
        if s2 < e1:
            problems.append(f"{a} [{s1},{e1}) overlaps {b} [{s2},{e2})")
    return problems


def validate_schedule(schedule: Schedule) -> list[str]:
    """Return all schedule violations; empty list means valid."""
    partition: Partition = schedule.partition
    graph = partition.graph
    problems: list[str] = []

    # completeness
    missing = set(graph.node_names) - set(schedule.entries)
    if missing:
        problems.append(f"unscheduled nodes: {sorted(missing)}")
        return problems

    # mapping consistency
    for entry in schedule.entries.values():
        if partition.resource_of(entry.node) != entry.resource:
            problems.append(
                f"node {entry.node!r} scheduled on {entry.resource!r} but "
                f"coloured {partition.resource_of(entry.node)!r}")

    # per-resource mutual exclusion
    for resource in partition.resources_used:
        slots = [(e.start, e.end, e.node) for e in schedule.on_resource(resource)]
        for problem in _overlaps(slots):
            problems.append(f"resource {resource!r}: {problem}")

    # single-bus exclusion
    bus_slots = [(t.start, t.end, f"{t.direction} {t.edge}")
                 for t in schedule.transfers]
    for problem in _overlaps(bus_slots):
        problems.append(f"bus: {problem}")

    # dependence + transfer protocol
    for edge in graph.edges:
        producer = schedule.entries[edge.src]
        consumer = schedule.entries[edge.dst]
        if partition.resource_of(edge.src) == partition.resource_of(edge.dst):
            if consumer.start < producer.end:
                problems.append(
                    f"edge {edge.name}: consumer starts at {consumer.start} "
                    f"before producer ends at {producer.end}")
            continue
        writes = [t for t in schedule.transfers_of(edge) if t.direction == "write"]
        reads = [t for t in schedule.transfers_of(edge) if t.direction == "read"]
        if len(writes) != 1 or len(reads) != 1:
            problems.append(
                f"cut edge {edge.name}: expected 1 write + 1 read transfer, "
                f"got {len(writes)} + {len(reads)}")
            continue
        write, read = writes[0], reads[0]
        if write.start < producer.end:
            problems.append(
                f"edge {edge.name}: write starts at {write.start} before "
                f"producer ends at {producer.end}")
        if read.start < write.end:
            problems.append(
                f"edge {edge.name}: read starts at {read.start} before "
                f"write ends at {write.end}")
        if consumer.start < read.end:
            problems.append(
                f"edge {edge.name}: consumer starts at {consumer.start} "
                f"before read ends at {read.end}")

    # local edges must not have transfers
    for edge in partition.local_edges():
        if schedule.transfers_of(edge):
            problems.append(f"local edge {edge.name} has bus transfers")

    return problems


def check_schedule(schedule: Schedule) -> None:
    """Raise :class:`ScheduleError` with the full report when invalid."""
    from .schedule import ScheduleError
    problems = validate_schedule(schedule)
    if problems:
        details = "\n  - ".join(problems)
        raise ScheduleError(f"invalid schedule:\n  - {details}")
