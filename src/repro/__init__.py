"""repro: reproduction of the COOL hardware/software co-design framework.

Implements coupled hardware/software partitioning and co-synthesis of
communicating controllers (Niemann & Marwedel, DATE 1998): VHDL-subset
system specification, cost estimation, MILP/heuristic/GA partitioning,
static scheduling, state/transition-graph generation with state
minimization and memory allocation, communication refinement, synthesis
of system / data-path / I/O controllers and bus arbiters, OSCAR-style
high-level synthesis, VHDL + C code generation, board netlists, and a
discrete-event co-simulator that validates the synthesized system
against a functional reference.

Quickstart::

    from repro.apps import four_band_equalizer
    from repro.flow import CoolFlow
    from repro.platform import minimal_board

    graph = four_band_equalizer()
    stimuli = {"x": list(range(16))}
    result = CoolFlow(minimal_board()).run(graph, stimuli=stimuli)
    print(result.report())
"""

__version__ = "1.0.0"

from . import (analysis, apps, automata, codegen, comm, controllers,
               estimate, flow, graph, hls, obs, partition, platform,
               schedule, sim, spec, stg, store, workloads)  # noqa: F401

__all__ = [
    "analysis", "apps", "automata", "codegen", "comm", "controllers",
    "estimate", "flow", "graph", "hls", "obs", "partition", "platform",
    "schedule", "sim", "spec", "stg", "store", "workloads", "__version__",
]
