"""The COOL specification language: a VHDL subset for data-flow systems."""

from .errors import SpecError, SpecSemanticError, SpecSyntaxError
from .tokens import Token, TokenKind
from .lexer import tokenize
from .ast import (ArchitectureDecl, AssignStmt, EntityDecl, GenericAssoc,
                  PortDecl, ProcessStmt, SignalDecl, Spec, VectorType)
from .parser import parse
from .elaborate import elaborate, elaborate_text
from .printer import graph_to_spec

__all__ = [
    "SpecError", "SpecSemanticError", "SpecSyntaxError", "Token", "TokenKind",
    "tokenize", "ArchitectureDecl", "AssignStmt", "EntityDecl", "GenericAssoc",
    "PortDecl", "ProcessStmt", "SignalDecl", "Spec", "VectorType", "parse",
    "elaborate", "elaborate_text", "graph_to_spec",
]
