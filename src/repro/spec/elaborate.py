"""Elaboration: from a parsed specification to an executable task graph.

Performs the semantic checks a VHDL front end would (single driver per
signal, declared-before-use, sensitivity list consistency, port/type
agreement) and produces the :class:`repro.graph.TaskGraph` that the rest
of the COOL flow consumes.
"""

from __future__ import annotations

from ..graph.taskgraph import TaskGraph, make_node
from ..graph.validate import check_graph
from .ast import ArchitectureDecl, EntityDecl, Spec, VectorType
from .errors import SpecSemanticError

__all__ = ["elaborate", "elaborate_text"]


def _to_params(generics: dict) -> dict:
    """Map the VHDL-ish generic names onto node parameter names."""
    return dict(generics)


def elaborate(spec: Spec, entity_name: str | None = None) -> TaskGraph:
    """Build the task graph of ``entity_name`` (or the single entity).

    Raises :class:`SpecSemanticError` for inconsistent specifications and
    propagates graph validation problems (unknown kinds, arity
    mismatches) as :class:`repro.graph.GraphError`.
    """
    if entity_name is None:
        if len(spec.entities) != 1:
            names = [e.name for e in spec.entities]
            raise SpecSemanticError(
                f"specification has {len(spec.entities)} entities {names}; "
                f"pass entity_name to choose one")
        entity = spec.entities[0]
    else:
        found = spec.entity(entity_name)
        if found is None:
            raise SpecSemanticError(f"unknown entity {entity_name!r}")
        entity = found

    arch = spec.architecture_of(entity.name)
    if arch is None:
        raise SpecSemanticError(f"entity {entity.name!r} has no architecture")

    return _elaborate_architecture(entity, arch)


def _elaborate_architecture(entity: EntityDecl,
                            arch: ArchitectureDecl) -> TaskGraph:
    graph = TaskGraph(entity.name)

    # name -> type for every value carrier (ports and local signals)
    carriers: dict[str, VectorType] = {}
    for port in entity.ports:
        carriers[port.name] = port.vtype
    for decl in arch.signals:
        for name in decl.names:
            if name in carriers:
                raise SpecSemanticError(
                    f"signal {name!r} shadows a port or earlier signal",
                    decl.line)
            carriers[name] = decl.vtype

    # producer of every carrier: input ports produce themselves; local
    # signals must be driven by exactly one process.
    producer: dict[str, str] = {}

    for port in entity.ports:
        vtype = port.vtype
        if port.direction == "in":
            graph.add_node(make_node(port.name, "input",
                                     width=vtype.width, words=vtype.words))
            producer[port.name] = port.name
        else:
            graph.add_node(make_node(port.name, "output",
                                     width=vtype.width, words=vtype.words))

    # node creation pass
    for proc in arch.processes:
        target_type = carriers.get(proc.target)
        if target_type is None:
            raise SpecSemanticError(
                f"process {proc.label!r} drives undeclared signal "
                f"{proc.target!r}", proc.line)
        out_port = entity.port(proc.target)
        if out_port is not None:
            raise SpecSemanticError(
                f"process {proc.label!r} drives port {proc.target!r} directly; "
                f"drive a signal and assign it to the port", proc.line)
        if proc.target in producer:
            raise SpecSemanticError(
                f"signal {proc.target!r} has multiple drivers "
                f"({producer[proc.target]!r} and {proc.label!r})", proc.line)
        if set(proc.sensitivity) != set(proc.inputs):
            raise SpecSemanticError(
                f"process {proc.label!r}: sensitivity list "
                f"{sorted(proc.sensitivity)} does not match inputs "
                f"{sorted(proc.inputs)}", proc.line)
        if proc.label in graph:
            raise SpecSemanticError(
                f"duplicate process label {proc.label!r}", proc.line)
        if proc.label in carriers and proc.label != proc.target:
            # labels live in the same namespace as signals in our subset
            raise SpecSemanticError(
                f"process label {proc.label!r} collides with a signal name",
                proc.line)
        graph.add_node(make_node(proc.label, proc.kind,
                                 _to_params(proc.generic_dict()),
                                 width=target_type.width,
                                 words=target_type.words))
        producer[proc.target] = proc.label

    # edge creation pass (after all producers are known)
    for proc in arch.processes:
        for port_index, signal in enumerate(proc.inputs):
            if signal not in carriers:
                raise SpecSemanticError(
                    f"process {proc.label!r} reads undeclared signal "
                    f"{signal!r}", proc.line)
            if signal not in producer:
                raise SpecSemanticError(
                    f"process {proc.label!r} reads undriven signal "
                    f"{signal!r}", proc.line)
            graph.add_edge(producer[signal], proc.label, dst_port=port_index)

    # output port wiring
    driven_ports: set[str] = set()
    for assign in arch.assigns:
        port = entity.port(assign.target)
        if port is None or port.direction != "out":
            raise SpecSemanticError(
                f"assignment target {assign.target!r} is not an output port",
                assign.line)
        if assign.target in driven_ports:
            raise SpecSemanticError(
                f"output port {assign.target!r} assigned twice", assign.line)
        if assign.source not in producer:
            raise SpecSemanticError(
                f"assignment to {assign.target!r} reads undriven signal "
                f"{assign.source!r}", assign.line)
        src_type = carriers[assign.source]
        dst_type = carriers[assign.target]
        if src_type != dst_type:
            raise SpecSemanticError(
                f"type mismatch assigning {assign.source!r} "
                f"({src_type.words}x{src_type.width}b) to {assign.target!r} "
                f"({dst_type.words}x{dst_type.width}b)", assign.line)
        graph.add_edge(producer[assign.source], assign.target, dst_port=0)
        driven_ports.add(assign.target)

    for port in entity.ports:
        if port.direction == "out" and port.name not in driven_ports:
            raise SpecSemanticError(f"output port {port.name!r} is never driven")

    check_graph(graph)
    return graph


def elaborate_text(text: str, entity_name: str | None = None) -> TaskGraph:
    """Parse and elaborate in one step."""
    from .parser import parse
    return elaborate(parse(text), entity_name)
