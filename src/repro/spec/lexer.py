"""Lexer for the COOL specification language.

The language is a small VHDL subset: identifiers and keywords are case
insensitive (normalized to lower case, as VHDL tools do), ``--`` starts a
comment running to end of line, and the only multi-character operators
are ``<=`` (signal assignment) and ``=>`` (generic association).
"""

from __future__ import annotations

from .errors import SpecSyntaxError
from .tokens import KEYWORDS, Token, TokenKind

__all__ = ["tokenize"]

_SINGLE = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMICOLON,
}


def tokenize(text: str) -> list[Token]:
    """Turn specification text into a token list ending with EOF.

    Raises :class:`SpecSyntaxError` on characters outside the language.
    """
    tokens: list[Token] = []
    line, column = 1, 1
    i, n = 0, len(text)

    def advance(count: int = 1) -> None:
        nonlocal i, line, column
        for _ in range(count):
            if i < n and text[i] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            i += 1

    while i < n:
        ch = text[i]
        # whitespace
        if ch in " \t\r\n":
            advance()
            continue
        # comment: -- to end of line
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            while i < n and text[i] != "\n":
                advance()
            continue
        start_line, start_col = line, column
        # identifiers / keywords (VHDL: case-insensitive, may contain _)
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j].lower()
            kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, word, start_line, start_col))
            advance(j - i)
            continue
        # integers
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(Token(TokenKind.INTEGER, text[i:j],
                                start_line, start_col))
            advance(j - i)
            continue
        # multi-char operators
        if ch == "<" and i + 1 < n and text[i + 1] == "=":
            tokens.append(Token(TokenKind.ASSIGN, "<=", start_line, start_col))
            advance(2)
            continue
        if ch == "=" and i + 1 < n and text[i + 1] == ">":
            tokens.append(Token(TokenKind.ARROW, "=>", start_line, start_col))
            advance(2)
            continue
        if ch == "-":
            tokens.append(Token(TokenKind.MINUS, "-", start_line, start_col))
            advance()
            continue
        if ch == ":":
            tokens.append(Token(TokenKind.COLON, ":", start_line, start_col))
            advance()
            continue
        if ch in _SINGLE:
            tokens.append(Token(_SINGLE[ch], ch, start_line, start_col))
            advance()
            continue
        raise SpecSyntaxError(f"unexpected character {ch!r}", line, column)

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
