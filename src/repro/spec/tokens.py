"""Token definitions for the COOL specification language (VHDL subset)."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

__all__ = ["Token", "TokenKind", "KEYWORDS"]


class TokenKind(Enum):
    """Lexical token categories."""

    IDENT = auto()
    INTEGER = auto()
    KEYWORD = auto()
    LPAREN = auto()      # (
    RPAREN = auto()      # )
    COMMA = auto()       # ,
    SEMICOLON = auto()   # ;
    COLON = auto()       # :
    ASSIGN = auto()      # <=
    ARROW = auto()       # =>
    MINUS = auto()       # -
    EOF = auto()


#: Reserved words of the language (VHDL keywords we actually use).
KEYWORDS = frozenset({
    "entity", "is", "port", "in", "out", "end", "architecture", "of",
    "signal", "begin", "process", "generic", "word_vector", "map",
})


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: TokenKind
    text: str
    line: int
    column: int

    @property
    def value(self) -> int:
        """Integer value; only valid for INTEGER tokens."""
        return int(self.text)

    def is_keyword(self, word: str) -> bool:
        return self.kind == TokenKind.KEYWORD and self.text == word

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"
