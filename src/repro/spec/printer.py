"""Pretty-printer: emit COOL specification text from a task graph.

The inverse of elaboration.  Used to generate the ~900-line fuzzy
controller specification of the paper's case study from its programmatic
graph builder, and in round-trip tests
(``elaborate(parse(print(g))) == g``).
"""

from __future__ import annotations

from ..graph.taskgraph import TaskGraph

__all__ = ["graph_to_spec"]


def _fmt_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, (tuple, list)):
        inner = ", ".join(_fmt_value(v) for v in value)
        return f"({inner})"
    raise TypeError(f"cannot print generic value {value!r} "
                    f"of type {type(value).__name__}")


def graph_to_spec(graph: TaskGraph, architecture: str = "dataflow") -> str:
    """Render ``graph`` as parseable specification text.

    Every internal node ``n`` drives a fresh signal ``n_out``; output
    ports are wired with concurrent assignments, as the language
    requires.
    """
    lines: list[str] = []
    lines.append(f"-- specification of {graph.name} "
                 f"({len(graph.internal_nodes())} functions)")
    lines.append(f"entity {graph.name} is")
    lines.append("  port (")
    port_lines = []
    for node in graph.inputs():
        port_lines.append(
            f"    {node.name} : in  word_vector({node.width}, {node.words})")
    for node in graph.outputs():
        port_lines.append(
            f"    {node.name} : out word_vector({node.width}, {node.words})")
    lines.append(";\n".join(port_lines))
    lines.append("  );")
    lines.append(f"end entity {graph.name};")
    lines.append("")
    lines.append(f"architecture {architecture} of {graph.name} is")

    signal_of = {node.name: node.name for node in graph.inputs()}
    for node in graph.internal_nodes():
        signal_of[node.name] = f"{node.name}_out"
        lines.append(f"  signal {node.name}_out : "
                     f"word_vector({node.width}, {node.words});")
    lines.append("begin")

    for name in graph.topological_order():
        node = graph.node(name)
        if node.is_io:
            continue
        inputs = [signal_of[e.src] for e in graph.in_edges(name)]
        args = ", ".join(inputs)
        lines.append(f"  {node.name} : process ({args})")
        params = node.params
        if params:
            assoc = ", ".join(f"{k} => {_fmt_value(v)}"
                              for k, v in sorted(params.items()))
            lines.append(f"    generic map ({assoc});")
        lines.append("  begin")
        lines.append(f"    {node.name}_out <= {node.kind}({args});")
        lines.append("  end process;")
        lines.append("")

    for node in graph.outputs():
        sources = graph.in_edges(node.name)
        if sources:
            lines.append(f"  {node.name} <= {signal_of[sources[0].src]};")
    lines.append(f"end architecture {architecture};")
    return "\n".join(lines) + "\n"
