"""Recursive-descent parser for the COOL specification language.

Grammar (EBNF, case-insensitive keywords)::

    spec          ::= { entity_decl | architecture_decl }
    entity_decl   ::= "entity" IDENT "is"
                        "port" "(" port { ";" port } ")" ";"
                      "end" [ "entity" ] [ IDENT ] ";"
    port          ::= IDENT ":" ( "in" | "out" ) vtype
    vtype         ::= "word_vector" "(" INTEGER "," INTEGER ")"
    architecture  ::= "architecture" IDENT "of" IDENT "is"
                        { signal_decl }
                      "begin"
                        { process_stmt | assign_stmt }
                      "end" [ "architecture" ] [ IDENT ] ";"
    signal_decl   ::= "signal" IDENT { "," IDENT } ":" vtype ";"
    process_stmt  ::= IDENT ":" "process" "(" id_list ")"
                        [ "generic" [ "map" ] "(" gassoc { "," gassoc } ")" ";" ]
                      "begin"
                        IDENT "<=" IDENT "(" [ id_list ] ")" ";"
                      "end" "process" ";"
    assign_stmt   ::= IDENT "<=" IDENT ";"
    gassoc        ::= IDENT "=>" gvalue
    gvalue        ::= [ "-" ] INTEGER | "(" gvalue { "," gvalue } ")"
    id_list       ::= IDENT { "," IDENT }
"""

from __future__ import annotations

from .ast import (ArchitectureDecl, AssignStmt, EntityDecl, GenericAssoc,
                  PortDecl, ProcessStmt, SignalDecl, Spec, VectorType)
from .errors import SpecSyntaxError
from .lexer import tokenize
from .tokens import Token, TokenKind

__all__ = ["parse"]


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._cur
        if token.kind != TokenKind.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> SpecSyntaxError:
        token = self._cur
        got = token.text or "<eof>"
        return SpecSyntaxError(f"{message}, got {got!r}", token.line, token.column)

    def _expect(self, kind: TokenKind, what: str) -> Token:
        if self._cur.kind != kind:
            raise self._error(f"expected {what}")
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        if not self._cur.is_keyword(word):
            raise self._error(f"expected keyword {word!r}")
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        if self._cur.is_keyword(word):
            self._advance()
            return True
        return False

    def _ident(self, what: str = "identifier") -> Token:
        return self._expect(TokenKind.IDENT, what)

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------
    def parse_spec(self) -> Spec:
        spec = Spec()
        while self._cur.kind != TokenKind.EOF:
            if self._cur.is_keyword("entity"):
                spec.entities.append(self._entity())
            elif self._cur.is_keyword("architecture"):
                spec.architectures.append(self._architecture())
            else:
                raise self._error("expected 'entity' or 'architecture'")
        return spec

    def _vtype(self) -> VectorType:
        self._expect_keyword("word_vector")
        self._expect(TokenKind.LPAREN, "'('")
        width = self._expect(TokenKind.INTEGER, "bit width").value
        self._expect(TokenKind.COMMA, "','")
        words = self._expect(TokenKind.INTEGER, "word count").value
        self._expect(TokenKind.RPAREN, "')'")
        if width <= 0 or words <= 0:
            raise self._error("word_vector dimensions must be positive")
        return VectorType(width, words)

    def _entity(self) -> EntityDecl:
        start = self._expect_keyword("entity")
        name = self._ident("entity name").text
        self._expect_keyword("is")
        self._expect_keyword("port")
        self._expect(TokenKind.LPAREN, "'('")
        ports = [self._port()]
        while self._cur.kind == TokenKind.SEMICOLON:
            self._advance()
            ports.append(self._port())
        self._expect(TokenKind.RPAREN, "')'")
        self._expect(TokenKind.SEMICOLON, "';'")
        self._expect_keyword("end")
        self._accept_keyword("entity")
        if self._cur.kind == TokenKind.IDENT:
            closing = self._advance().text
            if closing != name:
                raise SpecSyntaxError(
                    f"entity {name!r} closed with name {closing!r}",
                    start.line, start.column)
        self._expect(TokenKind.SEMICOLON, "';'")
        seen: set[str] = set()
        for port in ports:
            if port.name in seen:
                raise SpecSyntaxError(f"duplicate port {port.name!r} "
                                      f"in entity {name!r}", port.line)
            seen.add(port.name)
        return EntityDecl(name, tuple(ports), start.line)

    def _port(self) -> PortDecl:
        name_tok = self._ident("port name")
        self._expect(TokenKind.COLON, "':'")
        if self._accept_keyword("in"):
            direction = "in"
        elif self._accept_keyword("out"):
            direction = "out"
        else:
            raise self._error("expected 'in' or 'out'")
        vtype = self._vtype()
        return PortDecl(name_tok.text, direction, vtype, name_tok.line)

    def _architecture(self) -> ArchitectureDecl:
        start = self._expect_keyword("architecture")
        name = self._ident("architecture name").text
        self._expect_keyword("of")
        entity = self._ident("entity name").text
        self._expect_keyword("is")
        signals = []
        while self._cur.is_keyword("signal"):
            signals.append(self._signal_decl())
        self._expect_keyword("begin")
        processes: list[ProcessStmt] = []
        assigns: list[AssignStmt] = []
        while not self._cur.is_keyword("end"):
            stmt = self._statement()
            if isinstance(stmt, ProcessStmt):
                processes.append(stmt)
            else:
                assigns.append(stmt)
        self._expect_keyword("end")
        self._accept_keyword("architecture")
        if self._cur.kind == TokenKind.IDENT:
            closing = self._advance().text
            if closing != name:
                raise SpecSyntaxError(
                    f"architecture {name!r} closed with name {closing!r}",
                    start.line, start.column)
        self._expect(TokenKind.SEMICOLON, "';'")
        return ArchitectureDecl(name, entity, tuple(signals),
                                tuple(processes), tuple(assigns), start.line)

    def _signal_decl(self) -> SignalDecl:
        start = self._expect_keyword("signal")
        names = [self._ident("signal name").text]
        while self._cur.kind == TokenKind.COMMA:
            self._advance()
            names.append(self._ident("signal name").text)
        self._expect(TokenKind.COLON, "':'")
        vtype = self._vtype()
        self._expect(TokenKind.SEMICOLON, "';'")
        return SignalDecl(tuple(names), vtype, start.line)

    def _statement(self) -> ProcessStmt | AssignStmt:
        label_tok = self._ident("statement label or signal name")
        if self._cur.kind == TokenKind.COLON:
            self._advance()
            return self._process(label_tok)
        # plain concurrent assignment: target <= source ;
        self._expect(TokenKind.ASSIGN, "'<=' or ':'")
        source = self._ident("source signal").text
        self._expect(TokenKind.SEMICOLON, "';'")
        return AssignStmt(label_tok.text, source, label_tok.line)

    def _process(self, label_tok: Token) -> ProcessStmt:
        self._expect_keyword("process")
        self._expect(TokenKind.LPAREN, "'('")
        sensitivity = self._id_list()
        self._expect(TokenKind.RPAREN, "')'")
        generics: tuple[GenericAssoc, ...] = ()
        if self._accept_keyword("generic"):
            self._accept_keyword("map")
            self._expect(TokenKind.LPAREN, "'('")
            assoc = [self._generic_assoc()]
            while self._cur.kind == TokenKind.COMMA:
                self._advance()
                assoc.append(self._generic_assoc())
            self._expect(TokenKind.RPAREN, "')'")
            self._expect(TokenKind.SEMICOLON, "';'")
            generics = tuple(assoc)
        self._expect_keyword("begin")
        target = self._ident("target signal").text
        self._expect(TokenKind.ASSIGN, "'<='")
        kind = self._ident("function name").text
        self._expect(TokenKind.LPAREN, "'('")
        inputs: tuple[str, ...] = ()
        if self._cur.kind == TokenKind.IDENT:
            inputs = self._id_list()
        self._expect(TokenKind.RPAREN, "')'")
        self._expect(TokenKind.SEMICOLON, "';'")
        self._expect_keyword("end")
        self._expect_keyword("process")
        self._expect(TokenKind.SEMICOLON, "';'")
        return ProcessStmt(label_tok.text, sensitivity, kind, inputs,
                           target, generics, label_tok.line)

    def _id_list(self) -> tuple[str, ...]:
        names = [self._ident().text]
        while self._cur.kind == TokenKind.COMMA:
            self._advance()
            names.append(self._ident().text)
        return tuple(names)

    def _generic_assoc(self) -> GenericAssoc:
        name_tok = self._ident("generic name")
        self._expect(TokenKind.ARROW, "'=>'")
        value = self._generic_value()
        return GenericAssoc(name_tok.text, value, name_tok.line)

    def _generic_value(self):
        if self._cur.kind == TokenKind.MINUS:
            self._advance()
            return -self._expect(TokenKind.INTEGER, "integer").value
        if self._cur.kind == TokenKind.INTEGER:
            return self._advance().value
        if self._cur.kind == TokenKind.LPAREN:
            self._advance()
            values = [self._generic_value()]
            while self._cur.kind == TokenKind.COMMA:
                self._advance()
                values.append(self._generic_value())
            self._expect(TokenKind.RPAREN, "')'")
            return tuple(values)
        raise self._error("expected integer or '('")


def parse(text: str) -> Spec:
    """Parse specification text into a :class:`repro.spec.ast.Spec`."""
    return _Parser(tokenize(text)).parse_spec()
