"""Abstract syntax tree of the COOL specification language.

A specification is a list of design units.  The subset we implement is
exactly what COOL needs for data-flow dominated systems:

* ``entity`` declarations with a ``port`` clause of ``word_vector(W, N)``
  ports (W = bit width, N = words per activation);
* one ``architecture`` per entity containing ``signal`` declarations,
  labelled ``process`` statements (one per task-graph node) and plain
  concurrent assignments that wire signals to output ports.

Generic values may be integers, or (nested) tuples of integers -- enough
for FIR tap lists and fuzzy membership triangles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ArchitectureDecl", "AssignStmt", "EntityDecl", "GenericAssoc",
    "PortDecl", "ProcessStmt", "SignalDecl", "Spec", "VectorType",
]

#: Generic values: int or arbitrarily nested tuples of ints.
GenericValue = int | tuple


@dataclass(frozen=True)
class VectorType:
    """``word_vector(width, words)``: the only data type of the subset."""

    width: int
    words: int


@dataclass(frozen=True)
class PortDecl:
    """One entity port: ``name : in|out word_vector(w, n)``."""

    name: str
    direction: str  # "in" | "out"
    vtype: VectorType
    line: int = 0


@dataclass(frozen=True)
class EntityDecl:
    """``entity NAME is port (...); end entity NAME;``"""

    name: str
    ports: tuple[PortDecl, ...]
    line: int = 0

    def port(self, name: str) -> PortDecl | None:
        for p in self.ports:
            if p.name == name:
                return p
        return None


@dataclass(frozen=True)
class SignalDecl:
    """``signal a, b : word_vector(w, n);``"""

    names: tuple[str, ...]
    vtype: VectorType
    line: int = 0


@dataclass(frozen=True)
class GenericAssoc:
    """One generic association ``name => value``."""

    name: str
    value: GenericValue
    line: int = 0


@dataclass(frozen=True)
class ProcessStmt:
    """A labelled node process.

    Concrete syntax::

        band0 : process (x)
          generic map (taps => (1, 2, 3, 2, 1), shift => 2);
        begin
          b0 <= fir(x);
        end process;

    ``label`` names the task-graph node, ``kind`` is the function name on
    the right-hand side, ``inputs`` the ordered argument signals,
    ``target`` the driven signal, ``generics`` the parameters.
    The sensitivity list must equal the argument list (checked during
    elaboration, like a VHDL linter would).
    """

    label: str
    sensitivity: tuple[str, ...]
    kind: str
    inputs: tuple[str, ...]
    target: str
    generics: tuple[GenericAssoc, ...] = ()
    line: int = 0

    def generic_dict(self) -> dict:
        return {g.name: g.value for g in self.generics}


@dataclass(frozen=True)
class AssignStmt:
    """Concurrent assignment wiring a signal to an output port: ``y <= g;``"""

    target: str
    source: str
    line: int = 0


@dataclass(frozen=True)
class ArchitectureDecl:
    """``architecture NAME of ENTITY is ... begin ... end architecture;``"""

    name: str
    entity: str
    signals: tuple[SignalDecl, ...]
    processes: tuple[ProcessStmt, ...]
    assigns: tuple[AssignStmt, ...]
    line: int = 0

    def signal_type(self, name: str) -> VectorType | None:
        for decl in self.signals:
            if name in decl.names:
                return decl.vtype
        return None


@dataclass
class Spec:
    """A parsed specification: entities and architectures by name."""

    entities: list[EntityDecl] = field(default_factory=list)
    architectures: list[ArchitectureDecl] = field(default_factory=list)

    def entity(self, name: str) -> EntityDecl | None:
        for e in self.entities:
            if e.name == name:
                return e
        return None

    def architecture_of(self, entity_name: str) -> ArchitectureDecl | None:
        for a in self.architectures:
            if a.entity == entity_name:
                return a
        return None
