"""Diagnostics for the COOL specification language."""

from __future__ import annotations

__all__ = ["SpecError", "SpecSyntaxError", "SpecSemanticError"]


class SpecError(ValueError):
    """Base class for all specification-language diagnostics.

    Carries an optional source location so the message reads like a
    compiler diagnostic: ``file:line:col: message``.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        self.bare_message = message
        self.line = line
        self.column = column
        if line is not None:
            location = f"line {line}"
            if column is not None:
                location += f", col {column}"
            message = f"{location}: {message}"
        super().__init__(message)


class SpecSyntaxError(SpecError):
    """Lexical or grammatical problem in the specification text."""


class SpecSemanticError(SpecError):
    """The text parses but does not describe a consistent system."""
