"""Coloured partitioning graphs.

The result of COOL's partitioning phase is "(1) a coloured partitioning
graph where each colour either represents a hardware or software resource
and (2) a static schedule" (paper Section 2).  This module implements the
colouring: a mapping from task-graph nodes to resource names of a
:class:`repro.platform.TargetArchitecture`.

I/O nodes are always coloured with the pseudo-resource :data:`IO_RESOURCE`
-- they are implemented by the synthesized I/O controller, never by a CPU
or an ASIC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..fingerprint import content_hash
from .taskgraph import DataEdge, GraphError, TaskGraph

__all__ = ["IO_RESOURCE", "Partition", "PartitionError", "all_software", "all_hardware"]

#: Pseudo-resource name for environment I/O (the I/O controller).
IO_RESOURCE = "io"


class PartitionError(GraphError):
    """Raised for inconsistent colourings."""


@dataclass
class Partition:
    """A colouring of ``graph`` onto the resources of an architecture.

    Parameters
    ----------
    graph:
        The task graph that was partitioned.
    mapping:
        node name -> resource name.  I/O nodes may be omitted; they are
        implicitly mapped to :data:`IO_RESOURCE`.
    hw_resources / sw_resources:
        Names of the hardware (ASIC/FPGA) and software (processor)
        resources of the target architecture.  Kept here so a Partition is
        self-describing without dragging the full architecture along.
    """

    graph: TaskGraph
    mapping: dict[str, str] = field(default_factory=dict)
    hw_resources: tuple[str, ...] = ()
    sw_resources: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.mapping = dict(self.mapping)
        for node in self.graph.nodes:
            if node.is_io:
                self.mapping[node.name] = IO_RESOURCE
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the colouring is total and uses only known resources."""
        known = set(self.hw_resources) | set(self.sw_resources) | {IO_RESOURCE}
        if set(self.hw_resources) & set(self.sw_resources):
            raise PartitionError("a resource cannot be both hardware and software")
        for node in self.graph.nodes:
            colour = self.mapping.get(node.name)
            if colour is None:
                raise PartitionError(f"node {node.name!r} has no colour")
            if colour not in known:
                raise PartitionError(
                    f"node {node.name!r} mapped to unknown resource {colour!r}")
            if node.is_io and colour != IO_RESOURCE:
                raise PartitionError(
                    f"I/O node {node.name!r} must map to {IO_RESOURCE!r}")
            if not node.is_io and colour == IO_RESOURCE:
                raise PartitionError(
                    f"internal node {node.name!r} cannot map to the I/O controller")
        extra = set(self.mapping) - {n.name for n in self.graph.nodes}
        if extra:
            raise PartitionError(f"colouring mentions unknown nodes {sorted(extra)}")

    # ------------------------------------------------------------------
    def resource_of(self, node_name: str) -> str:
        try:
            return self.mapping[node_name]
        except KeyError:
            raise PartitionError(f"node {node_name!r} has no colour") from None

    def nodes_on(self, resource: str) -> list[str]:
        """Node names coloured with ``resource`` in graph insertion order."""
        return [n.name for n in self.graph.nodes if self.mapping[n.name] == resource]

    def is_hardware(self, node_name: str) -> bool:
        return self.resource_of(node_name) in self.hw_resources

    def is_software(self, node_name: str) -> bool:
        return self.resource_of(node_name) in self.sw_resources

    @property
    def resources_used(self) -> list[str]:
        """Resources that actually received at least one node (plus IO)."""
        seen: list[str] = []
        for node in self.graph.nodes:
            colour = self.mapping[node.name]
            if colour not in seen:
                seen.append(colour)
        return seen

    def hw_nodes(self) -> list[str]:
        return [n for n, r in self.mapping.items() if r in self.hw_resources]

    def sw_nodes(self) -> list[str]:
        return [n for n, r in self.mapping.items() if r in self.sw_resources]

    # ------------------------------------------------------------------
    def cut_edges(self) -> list[DataEdge]:
        """Edges whose endpoints sit on *different* processing units.

        These are exactly the transfers that receive memory cells during
        co-synthesis (paper Fig. 3).
        """
        return [e for e in self.graph.edges
                if self.mapping[e.src] != self.mapping[e.dst]]

    def local_edges(self) -> list[DataEdge]:
        """Edges that stay inside one processing unit (no memory cell)."""
        return [e for e in self.graph.edges
                if self.mapping[e.src] == self.mapping[e.dst]]

    def cut_bits(self) -> int:
        """Total inter-unit traffic per system activation, in bits."""
        return sum(e.bits for e in self.cut_edges())

    # ------------------------------------------------------------------
    def with_moved(self, node_name: str, resource: str) -> "Partition":
        """Return a copy with one node recoloured (used by heuristics)."""
        mapping = dict(self.mapping)
        mapping[node_name] = resource
        return Partition(self.graph, mapping, self.hw_resources, self.sw_resources)

    def fingerprint(self) -> str:
        """Content hash of the colouring (graph + mapping + resources).

        Used by the flow pipeline to detect that a partition actually
        changed (e.g. during HLS area repair) before re-running the
        stages that depend on it.
        """
        return content_hash((self.graph.fingerprint(),
                             tuple(sorted(self.mapping.items())),
                             self.hw_resources, self.sw_resources))

    def summary(self) -> dict:
        per_resource = {r: len(self.nodes_on(r)) for r in self.resources_used}
        return {
            "resources": per_resource,
            "hw_nodes": len(self.hw_nodes()),
            "sw_nodes": len(self.sw_nodes()),
            "cut_edges": len(self.cut_edges()),
            "cut_bits": self.cut_bits(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Partition({self.graph.name!r}, hw={len(self.hw_nodes())}, "
                f"sw={len(self.sw_nodes())}, cut={len(self.cut_edges())})")


def all_software(graph: TaskGraph, processor: str,
                 hw_resources: Iterable[str] = (),
                 sw_resources: Iterable[str] | None = None) -> Partition:
    """Colour every internal node onto one processor (pure-SW baseline)."""
    sw = tuple(sw_resources) if sw_resources is not None else (processor,)
    mapping = {n.name: processor for n in graph.internal_nodes()}
    return Partition(graph, mapping, tuple(hw_resources), sw)


def all_hardware(graph: TaskGraph, fpga: str,
                 hw_resources: Iterable[str] | None = None,
                 sw_resources: Iterable[str] = ()) -> Partition:
    """Colour every internal node onto one hardware resource."""
    hw = tuple(hw_resources) if hw_resources is not None else (fpga,)
    mapping = {n.name: fpga for n in graph.internal_nodes()}
    return Partition(graph, mapping, hw, tuple(sw_resources))


def from_mapping(graph: TaskGraph, mapping: Mapping[str, str],
                 hw_resources: Iterable[str], sw_resources: Iterable[str]) -> Partition:
    """Build a partition from an explicit node -> resource mapping."""
    return Partition(graph, dict(mapping), tuple(hw_resources), tuple(sw_resources))
