"""Task graphs, functional semantics and coloured partitioning graphs."""

from .taskgraph import DataEdge, GraphError, TaskGraph, TaskNode, linear_chain, make_node
from .semantics import (OP_CATEGORIES, SemanticsError, arity_of, evaluate_node,
                        execute, op_mix_of, register_kind, registered_kinds,
                        to_signed, wrap)
from .partition import (IO_RESOURCE, Partition, PartitionError, all_hardware,
                        all_software, from_mapping)
from .validate import check_graph, validate_graph
from .dot import graph_to_dot, partition_to_dot

__all__ = [
    "DataEdge", "GraphError", "TaskGraph", "TaskNode", "linear_chain", "make_node",
    "OP_CATEGORIES", "SemanticsError", "arity_of", "evaluate_node", "execute",
    "op_mix_of", "register_kind", "registered_kinds", "to_signed", "wrap",
    "IO_RESOURCE", "Partition", "PartitionError", "all_hardware", "all_software",
    "from_mapping", "check_graph", "validate_graph", "graph_to_dot",
    "partition_to_dot",
]
