"""Graphviz/DOT export of task graphs and coloured partitioning graphs.

The paper presents the partitioning result as a coloured graph (Fig. 2);
this module renders the same picture textually.  Output is plain DOT so it
can be inspected in tests without a Graphviz installation.
"""

from __future__ import annotations

from .partition import IO_RESOURCE, Partition
from .taskgraph import TaskGraph

__all__ = ["graph_to_dot", "partition_to_dot"]

#: Colour palette used for partitioning-graph rendering (resource order).
_PALETTE = ("lightblue", "lightsalmon", "palegreen", "khaki",
            "plum", "lightcyan", "wheat", "mistyrose")


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def graph_to_dot(graph: TaskGraph) -> str:
    """Render a plain task graph."""
    lines = [f"digraph {_quote(graph.name)} {{", "  rankdir=TB;"]
    for node in graph.nodes:
        shape = "invtriangle" if node.is_input else (
            "triangle" if node.is_output else "box")
        label = f"{node.name}\\n{node.kind}"
        lines.append(f"  {_quote(node.name)} [shape={shape} label=\"{label}\"];")
    for edge in graph.edges:
        lines.append(
            f"  {_quote(edge.src)} -> {_quote(edge.dst)} "
            f"[label=\"{edge.words}x{edge.width}b\"];")
    lines.append("}")
    return "\n".join(lines)


def partition_to_dot(partition: Partition) -> str:
    """Render a coloured partitioning graph (paper Fig. 2 style)."""
    graph = partition.graph
    colours: dict[str, str] = {IO_RESOURCE: "lightgray"}
    for i, resource in enumerate(
            tuple(partition.sw_resources) + tuple(partition.hw_resources)):
        colours[resource] = _PALETTE[i % len(_PALETTE)]

    lines = [f"digraph {_quote(graph.name + '_partitioned')} {{", "  rankdir=TB;"]
    for node in graph.nodes:
        resource = partition.resource_of(node.name)
        fill = colours.get(resource, "white")
        label = f"{node.name}\\n{node.kind}\\n[{resource}]"
        lines.append(
            f"  {_quote(node.name)} [shape=box style=filled "
            f"fillcolor={fill} label=\"{label}\"];")
    for edge in graph.edges:
        cut = partition.resource_of(edge.src) != partition.resource_of(edge.dst)
        style = " style=bold color=red" if cut else ""
        lines.append(f"  {_quote(edge.src)} -> {_quote(edge.dst)} [{style.strip()}];")
    lines.append("}")
    return "\n".join(lines)
