"""Structural validation of task graphs.

Collects *all* problems instead of stopping at the first one, so tooling
(parser, random generator, tests) can present a complete diagnosis.
"""

from __future__ import annotations

from .semantics import arity_of, SemanticsError
from .taskgraph import GraphError, TaskGraph

__all__ = ["validate_graph", "check_graph"]


def validate_graph(graph: TaskGraph) -> list[str]:
    """Return a list of human-readable problems; empty means valid."""
    problems: list[str] = []

    if not graph.is_acyclic():
        problems.append("graph contains a cycle")

    for node in graph.nodes:
        in_edges = graph.in_edges(node.name)
        ports = [e.dst_port for e in in_edges]
        if ports != list(range(len(ports))):
            problems.append(
                f"node {node.name!r}: input ports {ports} are not contiguous from 0")
        try:
            arity = arity_of(node)
        except SemanticsError as exc:
            problems.append(str(exc))
            continue
        if arity is not None and len(in_edges) != arity:
            problems.append(
                f"node {node.name!r} ({node.kind}): has {len(in_edges)} inputs, "
                f"kind requires {arity}")
        if node.is_input and in_edges:
            problems.append(f"input node {node.name!r} must not have predecessors")
        if node.is_output and graph.out_edges(node.name):
            problems.append(f"output node {node.name!r} must not have successors")

    for edge in graph.edges:
        src = graph.node(edge.src)
        if edge.width != src.width or edge.words != src.words:
            problems.append(
                f"edge {edge.name}: payload {edge.words}x{edge.width}b does not "
                f"match producer {src.words}x{src.width}b")

    if not graph.inputs():
        problems.append("graph has no input nodes")
    if not graph.outputs():
        problems.append("graph has no output nodes")

    # every internal node should be on a path from an input to an output
    reachable: set[str] = set()
    for inp in graph.inputs():
        reachable.add(inp.name)
        reachable |= graph.reachable_from(inp.name)
    for node in graph.internal_nodes():
        if node.name not in reachable:
            problems.append(f"node {node.name!r} is unreachable from any input")

    return problems


def check_graph(graph: TaskGraph) -> None:
    """Raise :class:`GraphError` with a full report if the graph is invalid."""
    problems = validate_graph(graph)
    if problems:
        details = "\n  - ".join(problems)
        raise GraphError(f"invalid task graph {graph.name!r}:\n  - {details}")
