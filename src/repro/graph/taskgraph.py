"""Task graphs: the fundamental data structure of the COOL flow.

A :class:`TaskGraph` is a directed acyclic graph of coarse-grained
*functions* (paper: "nodes of the partitioning graph").  Every node
produces exactly one value -- a vector of ``words`` integers of ``width``
bits -- which may be consumed by several successors.  Edges are *data
transfers*; when source and destination end up on different processing
units after partitioning, the transfer is implemented through shared
memory cells allocated by the co-synthesis step (paper Fig. 3).

External inputs and outputs of the system are ordinary nodes with kind
``"input"`` / ``"output"``.  They are pinned to the I/O controller during
partitioning, exactly as COOL keeps environment communication inside a
dedicated I/O controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from ..fingerprint import content_hash

__all__ = ["TaskNode", "DataEdge", "TaskGraph", "GraphError"]


class GraphError(ValueError):
    """Raised for structurally invalid task graphs or invalid queries."""


@dataclass(frozen=True)
class TaskNode:
    """A coarse-grained function of the system specification.

    Parameters
    ----------
    name:
        Unique node identifier, e.g. ``"band0"``.
    kind:
        Operation kind registered in :mod:`repro.graph.semantics`
        (``"fir"``, ``"gain"``, ``"sum"``, ``"fuzzify"``, ...).
    params:
        Kind-specific parameters, e.g. ``{"taps": (1, 2, 1)}`` for a FIR
        node.  Stored as a tuple-of-pairs internally so nodes stay
        hashable; access through :attr:`params`.
    width:
        Bit width of each produced data word.
    words:
        Number of data words produced per activation.
    """

    name: str
    kind: str
    params_items: tuple = field(default_factory=tuple)
    width: int = 16
    words: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("node name must be non-empty")
        if self.width <= 0:
            raise GraphError(f"node {self.name!r}: width must be positive")
        if self.words <= 0:
            raise GraphError(f"node {self.name!r}: words must be positive")

    @property
    def params(self) -> dict:
        """Kind-specific parameters as a plain dictionary."""
        return dict(self.params_items)

    @property
    def is_input(self) -> bool:
        """True for environment-input nodes."""
        return self.kind == "input"

    @property
    def is_output(self) -> bool:
        """True for environment-output nodes."""
        return self.kind == "output"

    @property
    def is_io(self) -> bool:
        """True for nodes handled by the I/O controller."""
        return self.is_input or self.is_output

    @property
    def bits(self) -> int:
        """Total payload size of one activation in bits."""
        return self.width * self.words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskNode({self.name!r}, kind={self.kind!r}, {self.words}x{self.width}b)"


def make_node(name: str, kind: str, params: Mapping | None = None,
              width: int = 16, words: int = 1) -> TaskNode:
    """Convenience constructor turning a params mapping into a TaskNode."""
    items = tuple(sorted((params or {}).items()))
    return TaskNode(name=name, kind=kind, params_items=items,
                    width=width, words=words)


@dataclass(frozen=True)
class DataEdge:
    """A data transfer from ``src`` to input port ``dst_port`` of ``dst``.

    ``width`` and ``words`` mirror the producing node; they are stored on
    the edge because memory allocation (paper Fig. 3) is per-edge.
    """

    src: str
    dst: str
    dst_port: int
    width: int
    words: int

    def __post_init__(self) -> None:
        if self.dst_port < 0:
            raise GraphError(f"edge {self.src}->{self.dst}: negative port")
        if self.width <= 0 or self.words <= 0:
            raise GraphError(f"edge {self.src}->{self.dst}: bad payload shape")

    @property
    def name(self) -> str:
        """Stable identifier used for memory cells and signals."""
        return f"{self.src}__to__{self.dst}_p{self.dst_port}"

    @property
    def bits(self) -> int:
        """Total payload size transported per activation in bits."""
        return self.width * self.words


class TaskGraph:
    """Directed acyclic graph of :class:`TaskNode` joined by :class:`DataEdge`.

    The class maintains adjacency both ways and offers the queries the
    rest of the flow needs: topological order, predecessors ordered by
    input port, transitive reachability and simple structural metrics.
    """

    def __init__(self, name: str = "system") -> None:
        self.name = name
        self._nodes: dict[str, TaskNode] = {}
        self._edges: list[DataEdge] = []
        self._out: dict[str, list[DataEdge]] = {}
        self._in: dict[str, list[DataEdge]] = {}
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: TaskNode | None = None, /, **kwargs) -> TaskNode:
        """Add a node; accepts a TaskNode or make_node keyword arguments."""
        if node is None:
            node = make_node(**kwargs)
        if node.name in self._nodes:
            raise GraphError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._out[node.name] = []
        self._in[node.name] = []
        self._fingerprint = None
        return node

    def add_edge(self, src: str, dst: str, dst_port: int | None = None) -> DataEdge:
        """Connect ``src`` to the next free (or given) input port of ``dst``."""
        if src not in self._nodes:
            raise GraphError(f"unknown source node {src!r}")
        if dst not in self._nodes:
            raise GraphError(f"unknown destination node {dst!r}")
        if src == dst:
            raise GraphError(f"self loop on {src!r} not allowed")
        if dst_port is None:
            dst_port = len(self._in[dst])
        if any(e.dst_port == dst_port for e in self._in[dst]):
            raise GraphError(f"input port {dst_port} of {dst!r} already driven")
        producer = self._nodes[src]
        edge = DataEdge(src=src, dst=dst, dst_port=dst_port,
                        width=producer.width, words=producer.words)
        self._edges.append(edge)
        self._out[src].append(edge)
        self._in[dst].append(edge)
        self._in[dst].sort(key=lambda e: e.dst_port)
        self._fingerprint = None
        return edge

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[TaskNode]:
        """All nodes in insertion order."""
        return list(self._nodes.values())

    @property
    def edges(self) -> list[DataEdge]:
        """All edges in insertion order."""
        return list(self._edges)

    @property
    def node_names(self) -> list[str]:
        return list(self._nodes)

    def node(self, name: str) -> TaskNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphError(f"unknown node {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def in_edges(self, name: str) -> list[DataEdge]:
        """Incoming edges of ``name`` sorted by destination port."""
        self.node(name)
        return list(self._in[name])

    def out_edges(self, name: str) -> list[DataEdge]:
        self.node(name)
        return list(self._out[name])

    def predecessors(self, name: str) -> list[str]:
        """Predecessor names ordered by the input port they drive."""
        return [e.src for e in self.in_edges(name)]

    def successors(self, name: str) -> list[str]:
        return [e.dst for e in self.out_edges(name)]

    def inputs(self) -> list[TaskNode]:
        """Environment input nodes in insertion order."""
        return [n for n in self.nodes if n.is_input]

    def outputs(self) -> list[TaskNode]:
        """Environment output nodes in insertion order."""
        return [n for n in self.nodes if n.is_output]

    def internal_nodes(self) -> list[TaskNode]:
        """Nodes subject to HW/SW partitioning (everything but I/O)."""
        return [n for n in self.nodes if not n.is_io]

    def sources(self) -> list[str]:
        """Names of nodes without predecessors."""
        return [n for n in self._nodes if not self._in[n]]

    def sinks(self) -> list[str]:
        return [n for n in self._nodes if not self._out[n]]

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def topological_order(self) -> list[str]:
        """Kahn topological order; raises :class:`GraphError` on cycles."""
        indeg = {n: len(self._in[n]) for n in self._nodes}
        ready = [n for n in self._nodes if indeg[n] == 0]
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for edge in self._out[name]:
                indeg[edge.dst] -= 1
                if indeg[edge.dst] == 0:
                    ready.append(edge.dst)
        if len(order) != len(self._nodes):
            raise GraphError(f"graph {self.name!r} contains a cycle")
        return order

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
            return True
        except GraphError:
            return False

    def reachable_from(self, name: str) -> set[str]:
        """All nodes reachable from ``name`` (excluding ``name`` itself)."""
        seen: set[str] = set()
        stack = [e.dst for e in self.out_edges(name)]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(e.dst for e in self._out[cur])
        return seen

    def depth(self) -> int:
        """Length (in nodes) of the longest path through the graph."""
        level: dict[str, int] = {}
        for name in self.topological_order():
            preds = self.predecessors(name)
            level[name] = 1 + max((level[p] for p in preds), default=0)
        return max(level.values(), default=0)

    def edge_between(self, src: str, dst: str) -> list[DataEdge]:
        """All edges from ``src`` to ``dst`` (several ports are possible)."""
        return [e for e in self.out_edges(src) if e.dst == dst]

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content hash over nodes and edges.

        Two graphs built the same way (same names, kinds, parameters,
        payload shapes, edges) share one fingerprint regardless of the
        instances involved; the hash is invalidated by any mutation.
        The pipeline engine uses it as a stage-cache key.
        """
        if self._fingerprint is None:
            self._fingerprint = content_hash((
                self.name,
                tuple((n.name, n.kind, n.params_items, n.width, n.words)
                      for n in self._nodes.values()),
                tuple((e.src, e.dst, e.dst_port, e.width, e.words)
                      for e in self._edges)))
        return self._fingerprint

    def stats(self) -> dict:
        """Structural summary used by reports and benchmarks."""
        return {
            "name": self.name,
            "nodes": len(self._nodes),
            "edges": len(self._edges),
            "inputs": len(self.inputs()),
            "outputs": len(self.outputs()),
            "internal": len(self.internal_nodes()),
            "depth": self.depth(),
            "payload_bits": sum(e.bits for e in self._edges),
        }

    def copy(self) -> "TaskGraph":
        dup = TaskGraph(self.name)
        for node in self.nodes:
            dup.add_node(node)
        for edge in self._edges:
            dup.add_edge(edge.src, edge.dst, edge.dst_port)
        return dup

    def __iter__(self) -> Iterator[TaskNode]:
        return iter(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskGraph({self.name!r}, {len(self._nodes)} nodes, {len(self._edges)} edges)"


def linear_chain(kinds: Iterable[str], width: int = 16, words: int = 4,
                 name: str = "chain") -> TaskGraph:
    """Build ``input -> k0 -> k1 -> ... -> output`` as a quick test helper."""
    graph = TaskGraph(name)
    graph.add_node(name="in0", kind="input", width=width, words=words)
    prev = "in0"
    for i, kind in enumerate(kinds):
        node = f"n{i}"
        graph.add_node(name=node, kind=kind, width=width, words=words)
        graph.add_edge(prev, node)
        prev = node
    graph.add_node(name="out0", kind="output", width=width, words=words)
    graph.add_edge(prev, "out0")
    return graph
