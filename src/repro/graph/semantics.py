"""Executable semantics for task-graph nodes.

COOL specifications are data-flow dominated: every node is a function from
input vectors to an output vector of fixed-point words.  This module gives
each node *kind* three things:

* ``evaluate`` -- the functional behaviour on integer vectors (two's
  complement, wrapping at the node's bit width);
* ``op_mix`` -- a count of primitive operations (``mov``, ``add``, ``mul``,
  ``mac``, ``div``, ``cmp``, ``shift``, ``logic``) used by the software and
  hardware cost estimators and by the HLS data-flow expansion;
* ``arity`` -- the number of input ports (``None`` for variable arity).

The :func:`execute` reference interpreter runs a whole graph on stimulus
vectors.  It is the golden model against which the synthesized system
(controllers + memory map + schedule, executed by :mod:`repro.sim`) is
checked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from .taskgraph import GraphError, TaskGraph, TaskNode

__all__ = [
    "OP_CATEGORIES",
    "OpSpec",
    "SemanticsError",
    "arity_of",
    "evaluate_node",
    "execute",
    "op_mix_of",
    "registered_kinds",
    "register_kind",
    "to_signed",
    "wrap",
]

#: Primitive operation categories shared by estimation, HLS and codegen.
OP_CATEGORIES = ("mov", "add", "mul", "mac", "div", "cmp", "shift", "logic")


class SemanticsError(GraphError):
    """Raised when a node cannot be evaluated (bad arity, params, ...)."""


def wrap(value: int, width: int) -> int:
    """Wrap ``value`` to an unsigned ``width``-bit integer."""
    return value & ((1 << width) - 1)


def to_signed(value: int, width: int) -> int:
    """Interpret an unsigned ``width``-bit pattern as two's complement."""
    value = wrap(value, width)
    if value >= 1 << (width - 1):
        value -= 1 << width
    return value


def _wrap_vec(values: Sequence[int], width: int) -> list[int]:
    return [wrap(v, width) for v in values]


@dataclass(frozen=True)
class OpSpec:
    """Semantics record of one node kind."""

    kind: str
    arity: int | None
    evaluate: Callable[[TaskNode, list[list[int]]], list[int]]
    op_mix: Callable[[TaskNode], dict[str, int]]


_REGISTRY: dict[str, OpSpec] = {}


def register_kind(kind: str, arity: int | None,
                  evaluate: Callable[[TaskNode, list[list[int]]], list[int]],
                  op_mix: Callable[[TaskNode], dict[str, int]]) -> None:
    """Register (or replace) semantics for a node kind."""
    _REGISTRY[kind] = OpSpec(kind, arity, evaluate, op_mix)


def registered_kinds() -> list[str]:
    return sorted(_REGISTRY)


def _spec(node: TaskNode) -> OpSpec:
    try:
        return _REGISTRY[node.kind]
    except KeyError:
        raise SemanticsError(f"node {node.name!r}: unknown kind {node.kind!r}") from None


def arity_of(node: TaskNode) -> int | None:
    """Declared arity of a node kind (``None`` = variable)."""
    return _spec(node).arity


def op_mix_of(node: TaskNode) -> dict[str, int]:
    """Primitive-operation counts of one activation of ``node``."""
    mix = _spec(node).op_mix(node)
    unknown = set(mix) - set(OP_CATEGORIES)
    if unknown:
        raise SemanticsError(f"node {node.name!r}: unknown op categories {sorted(unknown)}")
    return {op: int(n) for op, n in mix.items() if n}


def evaluate_node(node: TaskNode, inputs: list[list[int]]) -> list[int]:
    """Evaluate one activation; checks arity and output shape."""
    spec = _spec(node)
    if spec.arity is not None and len(inputs) != spec.arity:
        raise SemanticsError(
            f"node {node.name!r} ({node.kind}): expected {spec.arity} inputs, "
            f"got {len(inputs)}")
    result = spec.evaluate(node, [list(vec) for vec in inputs])
    if len(result) != node.words:
        raise SemanticsError(
            f"node {node.name!r}: produced {len(result)} words, declared {node.words}")
    return _wrap_vec(result, node.width)


# ----------------------------------------------------------------------
# reference interpreter
# ----------------------------------------------------------------------

def execute(graph: TaskGraph,
            stimuli: Mapping[str, Sequence[int]]) -> dict[str, list[int]]:
    """Run ``graph`` on ``stimuli`` (one vector per input node).

    Returns the value produced by *every* node, keyed by node name.  This
    is the golden reference for the co-simulation tests: the synthesized
    system must leave exactly ``execute(...)[out]`` in the memory cells /
    output ports of each output node ``out``.
    """
    values: dict[str, list[int]] = {}
    for name in graph.topological_order():
        node = graph.node(name)
        if node.is_input:
            if name not in stimuli:
                raise SemanticsError(f"missing stimulus for input node {name!r}")
            vec = list(stimuli[name])
            if len(vec) != node.words:
                raise SemanticsError(
                    f"stimulus for {name!r} has {len(vec)} words, expected {node.words}")
            values[name] = _wrap_vec(vec, node.width)
            continue
        inputs = [values[e.src] for e in graph.in_edges(name)]
        values[name] = evaluate_node(node, inputs)
    return values


# ----------------------------------------------------------------------
# built-in kinds
# ----------------------------------------------------------------------

def _param(node: TaskNode, key: str, default=None, required: bool = False):
    params = node.params
    if required and key not in params:
        raise SemanticsError(f"node {node.name!r} ({node.kind}): missing param {key!r}")
    return params.get(key, default)


def _ev_input(node: TaskNode, inputs: list[list[int]]) -> list[int]:
    raise SemanticsError(f"input node {node.name!r} must be driven by a stimulus")


def _ev_identity(node: TaskNode, inputs: list[list[int]]) -> list[int]:
    return list(inputs[0])


def _mix_mov(node: TaskNode) -> dict[str, int]:
    return {"mov": node.words}


def _ev_fir(node: TaskNode, inputs: list[list[int]]) -> list[int]:
    taps = tuple(_param(node, "taps", required=True))
    shift = int(_param(node, "shift", 0))
    x = [to_signed(v, node.width) for v in inputs[0]]
    out = []
    for n in range(node.words):
        acc = 0
        for k, tap in enumerate(taps):
            if 0 <= n - k < len(x):
                acc += tap * x[n - k]
        out.append(acc >> shift)
    return out


def _mix_fir(node: TaskNode) -> dict[str, int]:
    taps = tuple(_param(node, "taps", required=True))
    mix = {"mac": len(taps) * node.words, "mov": 2 * node.words}
    if int(_param(node, "shift", 0)):
        mix["shift"] = node.words
    return mix


def _ev_gain(node: TaskNode, inputs: list[list[int]]) -> list[int]:
    factor = int(_param(node, "factor", required=True))
    shift = int(_param(node, "shift", 0))
    return [(to_signed(v, node.width) * factor) >> shift for v in inputs[0]]


def _mix_gain(node: TaskNode) -> dict[str, int]:
    mix = {"mul": node.words, "mov": 2 * node.words}
    if int(_param(node, "shift", 0)):
        mix["shift"] = node.words
    return mix


def _binary(op: Callable[[int, int], int]):
    def _ev(node: TaskNode, inputs: list[list[int]]) -> list[int]:
        a, b = inputs
        if len(a) != len(b):
            raise SemanticsError(
                f"node {node.name!r}: input length mismatch {len(a)} vs {len(b)}")
        return [op(to_signed(x, node.width), to_signed(y, node.width))
                for x, y in zip(a, b)]
    return _ev


def _mix_binary(category: str):
    def _mix(node: TaskNode) -> dict[str, int]:
        return {category: node.words, "mov": 3 * node.words}
    return _mix


def _ev_sum(node: TaskNode, inputs: list[list[int]]) -> list[int]:
    if not inputs:
        raise SemanticsError(f"sum node {node.name!r} needs at least one input")
    length = len(inputs[0])
    if any(len(vec) != length for vec in inputs):
        raise SemanticsError(f"sum node {node.name!r}: input length mismatch")
    return [sum(to_signed(vec[i], node.width) for vec in inputs)
            for i in range(length)]


def _mix_sum(node: TaskNode) -> dict[str, int]:
    arity = int(_param(node, "arity", 2))
    return {"add": max(arity - 1, 1) * node.words, "mov": (arity + 1) * node.words}


def _ev_abs(node: TaskNode, inputs: list[list[int]]) -> list[int]:
    return [abs(to_signed(v, node.width)) for v in inputs[0]]


def _ev_negate(node: TaskNode, inputs: list[list[int]]) -> list[int]:
    return [-to_signed(v, node.width) for v in inputs[0]]


def _ev_shift(node: TaskNode, inputs: list[list[int]]) -> list[int]:
    amount = int(_param(node, "amount", 1))
    return [to_signed(v, node.width) >> amount if amount >= 0
            else to_signed(v, node.width) << -amount
            for v in inputs[0]]


def _ev_threshold(node: TaskNode, inputs: list[list[int]]) -> list[int]:
    level = int(_param(node, "level", 0))
    return [1 if to_signed(v, node.width) > level else 0 for v in inputs[0]]


def _ev_downsample(node: TaskNode, inputs: list[list[int]]) -> list[int]:
    factor = int(_param(node, "factor", required=True))
    if factor <= 0:
        raise SemanticsError(f"node {node.name!r}: factor must be positive")
    return list(inputs[0][::factor])[: node.words]


def _mix_downsample(node: TaskNode) -> dict[str, int]:
    return {"mov": 2 * node.words}


def _ev_select(node: TaskNode, inputs: list[list[int]]) -> list[int]:
    index = int(_param(node, "index", required=True))
    vec = inputs[0]
    if not 0 <= index < len(vec):
        raise SemanticsError(
            f"node {node.name!r}: select index {index} out of range 0..{len(vec) - 1}")
    return [vec[index]] * node.words


def _mix_select(node: TaskNode) -> dict[str, int]:
    return {"mov": node.words + 1}


def _ev_fuzzify(node: TaskNode, inputs: list[list[int]]) -> list[int]:
    """Triangular membership functions; one membership word per set."""
    sets = tuple(_param(node, "sets", required=True))
    scale = int(_param(node, "scale", 255))
    out: list[int] = []
    for x_raw in inputs[0]:
        x = to_signed(x_raw, node.width)
        for a, b, c in sets:
            if x <= a or x >= c:
                out.append(0)
            elif x <= b:
                out.append(scale * (x - a) // max(b - a, 1))
            else:
                out.append(scale * (c - x) // max(c - b, 1))
    return out


def _mix_fuzzify(node: TaskNode) -> dict[str, int]:
    sets = tuple(_param(node, "sets", required=True))
    n = len(sets) * max(node.words // max(len(sets), 1), 1)
    return {"cmp": 3 * n, "add": 2 * n, "mul": n, "div": n, "mov": 2 * n}


def _ev_defuzz(node: TaskNode, inputs: list[list[int]]) -> list[int]:
    """Centre-of-gravity defuzzification over a membership vector."""
    centroids = tuple(_param(node, "centroids", required=True))
    weights = inputs[0]
    if len(weights) != len(centroids):
        raise SemanticsError(
            f"node {node.name!r}: {len(weights)} memberships vs "
            f"{len(centroids)} centroids")
    num = sum(w * c for w, c in zip(weights, centroids))
    den = sum(weights)
    value = num // den if den else 0
    return [value] * node.words


def _mix_defuzz(node: TaskNode) -> dict[str, int]:
    n = len(tuple(_param(node, "centroids", required=True)))
    return {"mac": n, "add": n, "div": 1, "mov": n + 1}


def _ev_concat(node: TaskNode, inputs: list[list[int]]) -> list[int]:
    """Concatenate the input vectors in port order."""
    out: list[int] = []
    for vec in inputs:
        out.extend(vec)
    return out


def _mix_concat(node: TaskNode) -> dict[str, int]:
    return {"mov": 2 * node.words}


def _ev_generic(node: TaskNode, inputs: list[list[int]]) -> list[int]:
    """Deterministic mixing function so random graphs stay executable."""
    state = int(_param(node, "seed", 1)) & 0xFFFFFFFFFFFFFFFF
    for vec in inputs:
        for word in vec:
            state = (state * 6364136223846793005 + wrap(word, node.width)
                     + 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
    out = []
    for i in range(node.words):
        out.append((state >> (i % 32)) + i * 2654435761)
    return out


def _mix_generic(node: TaskNode) -> dict[str, int]:
    mix = dict(_param(node, "mix", ()) or ())
    if not mix:
        mix = {"add": 4 * node.words, "mul": 2 * node.words, "mov": 4 * node.words}
    return mix


register_kind("input", 0, _ev_input, _mix_mov)
register_kind("output", 1, _ev_identity, _mix_mov)
register_kind("copy", 1, _ev_identity, _mix_mov)
register_kind("fir", 1, _ev_fir, _mix_fir)
register_kind("gain", 1, _ev_gain, _mix_gain)
register_kind("add", 2, _binary(lambda a, b: a + b), _mix_binary("add"))
register_kind("sub", 2, _binary(lambda a, b: a - b), _mix_binary("add"))
register_kind("mul", 2, _binary(lambda a, b: a * b), _mix_binary("mul"))
register_kind("min", 2, _binary(min), _mix_binary("cmp"))
register_kind("max", 2, _binary(max), _mix_binary("cmp"))
register_kind("sum", None, _ev_sum, _mix_sum)
register_kind("abs", 1, _ev_abs, _mix_binary("cmp"))
register_kind("negate", 1, _ev_negate, _mix_binary("add"))
register_kind("shift", 1, _ev_shift, _mix_binary("shift"))
register_kind("threshold", 1, _ev_threshold, _mix_binary("cmp"))
register_kind("downsample", 1, _ev_downsample, _mix_downsample)
register_kind("select", 1, _ev_select, _mix_select)
register_kind("concat", None, _ev_concat, _mix_concat)
register_kind("fuzzify", 1, _ev_fuzzify, _mix_fuzzify)
register_kind("defuzz", 1, _ev_defuzz, _mix_defuzz)
register_kind("generic", None, _ev_generic, _mix_generic)
