"""Legacy setuptools shim.

Kept so ``pip install -e .`` works in offline environments whose
setuptools predates built-in wheel support (PEP 660 editable installs
would otherwise require the ``wheel`` package).  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
