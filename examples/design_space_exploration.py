#!/usr/bin/env python3
"""Design-space exploration: sweep partitioners x deadlines x boards.

Fans the full COOL flow over every combination with the parallel
:class:`~repro.flow.batch.BatchRunner`, then prints the implementations
ranked on the classic co-design Pareto axes -- makespan, CLB area and
communication memory -- with the Pareto-optimal ones marked ``*``.
The best implementation's full flow report is printed at the end.
"""

from repro.apps import four_band_equalizer
from repro.flow import BatchRunner, CoolFlow, DesignSpaceExplorer
from repro.partition import GreedyPartitioner, MilpPartitioner
from repro.platform import cool_board, minimal_board


def main() -> None:
    graph = four_band_equalizer(words=16)

    # one quick unconstrained run to anchor realistic deadline choices
    free = CoolFlow(minimal_board(), partitioner=GreedyPartitioner()) \
        .run(graph)
    deadlines = [None, free.makespan * 2, free.makespan * 4]

    explorer = DesignSpaceExplorer(
        graph,
        architectures=[minimal_board(), cool_board()],
        partitioners=[GreedyPartitioner(), MilpPartitioner()],
        deadlines=deadlines,
        runner=BatchRunner(max_workers=4),
    )
    exploration = explorer.explore()

    print(f"explored {len(exploration.points)} implementations of "
          f"{graph.name!r} ({len(exploration.pareto())} Pareto-optimal):\n")
    print(exploration.table())

    best = exploration.ranked()[0]
    print(f"\nbest implementation: {best.label}")
    winner = next(o for o in exploration.outcomes
                  if o.ok and o.job.name == best.label)
    print(winner.result.report())


if __name__ == "__main__":
    main()
