#!/usr/bin/env python3
"""Compare COOL's three partitioning engines (paper Section 2).

Runs MILP (both backends), the MILP+heuristic combination, the greedy
heuristic and the genetic algorithm on the equalizer, the fuzzy
controller and a random TGFF-style graph; prints makespan, hardware
area, cut traffic and runtime for each.
"""

from repro.apps import four_band_equalizer, fuzzy_controller, random_task_graph
from repro.partition import (GaConfig, GeneticPartitioner, GreedyPartitioner,
                             MilpHeuristicPartitioner, MilpPartitioner,
                             PartitioningProblem)
from repro.platform import cool_board

PARTITIONERS = [
    MilpPartitioner(backend="scipy"),
    MilpPartitioner(backend="bnb"),
    MilpHeuristicPartitioner(),
    GreedyPartitioner(),
    GeneticPartitioner(GaConfig(population=24, generations=25, seed=7)),
]

WORKLOADS = [
    ("equalizer", four_band_equalizer(words=16)),
    ("fuzzy", fuzzy_controller()),
    ("random_24", random_task_graph(24, seed=11)),
]


def main() -> None:
    arch = cool_board()
    header = (f"{'workload':<12} {'algorithm':<16} {'makespan':>9} "
              f"{'hw CLBs':>8} {'hw nodes':>9} {'cut':>4} {'time[s]':>8}")
    print(header)
    print("-" * len(header))
    for name, graph in WORKLOADS:
        problem = PartitioningProblem(graph, arch)
        sw_bound = problem.model.software_bound()
        for partitioner in PARTITIONERS:
            result = partitioner.partition(problem)
            print(f"{name:<12} {partitioner.name:<16} "
                  f"{result.makespan:>9} {result.hw_area:>8} "
                  f"{len(result.partition.hw_nodes()):>9} "
                  f"{len(result.partition.cut_edges()):>4} "
                  f"{result.runtime_s:>8.3f}")
        print(f"{name:<12} {'(pure software)':<16} {sw_bound:>9} "
              f"{'0':>8} {'0':>9} {'-':>4} {'-':>8}")
        print()


if __name__ == "__main__":
    main()
