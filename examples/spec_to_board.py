#!/usr/bin/env python3
"""From a hand-written COOL specification to board artefacts.

Demonstrates the textual front end: a small mixer system is written in
the COOL input language (the VHDL subset), elaborated, pushed through
the flow, and the generated artefacts -- the STG, the memory map, the
netlist and one of the VHDL controllers -- are printed, mirroring the
paper's Figs. 3 and 4.
"""

from repro.codegen import netlist_text
from repro.flow import CoolFlow
from repro.platform import minimal_board
from repro.spec import elaborate_text
from repro.stg import memory_map_text, stg_summary_text

SPEC = """
-- a small two-path mixer with a FIR pre-filter
entity mixer is
  port (
    x : in  word_vector(16, 8);
    y : out word_vector(16, 8)
  );
end entity mixer;

architecture dataflow of mixer is
  signal filt : word_vector(16, 8);
  signal loud : word_vector(16, 8);
  signal soft : word_vector(16, 8);
  signal both : word_vector(16, 8);
begin
  pre : process (x)
    generic map (taps => (1, 2, 3, 2, 1), shift => 2);
  begin
    filt <= fir(x);
  end process;

  amp : process (filt)
    generic map (factor => 4, shift => 1);
  begin
    loud <= gain(filt);
  end process;

  att : process (filt)
    generic map (factor => 1, shift => 1);
  begin
    soft <= gain(filt);
  end process;

  mix : process (loud, soft)
  begin
    both <= add(loud, soft);
  end process;

  y <= both;
end architecture dataflow;
"""


def main() -> None:
    graph = elaborate_text(SPEC)
    print(f"elaborated {graph.name!r}: {len(graph)} nodes, "
          f"{len(graph.edges)} edges")

    stimuli = {"x": [10, 20, 30, 40, 0, 0, 0, 0]}
    result = CoolFlow(minimal_board()).run(graph, stimuli=stimuli)

    print()
    print(stg_summary_text(result.stg_full) + "  (as built)")
    print(stg_summary_text(result.stg) + "  (minimized)")
    print()
    print(memory_map_text(result.plan.memory_map))
    print()
    print(netlist_text(result.netlist))
    print()
    print("=== generated system controller (phase FSM) ===")
    print(result.vhdl_files["phase.vhd"])


if __name__ == "__main__":
    main()
