#!/usr/bin/env python3
"""Streaming sweep of a generated workload suite, sharded over cores.

Samples a deterministic population of synthetic designs
(:func:`repro.workloads.workload_suite`) and fans each through the full
COOL flow twice:

* with the sharded map-reduce backend (``BatchRunner(shards=4)``) --
  the compact specs are shipped to worker processes that build the
  graphs in-worker and return :class:`~repro.flow.batch.DesignPoint`
  summaries, each worker reusing one process-local
  :class:`~repro.flow.pipeline.StageCache` across its shards;
* with the streaming thread backend on a shared cache, to show the
  same suite ranked identically (the shard backend is bit-identical to
  serial by construction).

Progress is reported per completion and the per-graph Pareto-ranked
implementations are printed at the end.
"""

from repro.flow import BatchRunner, DesignSpaceExplorer, StageCache
from repro.partition import GreedyPartitioner
from repro.platform import minimal_board
from repro.workloads import workload_suite


def progress(outcome, done, total):
    status = f"{outcome.seconds * 1e3:6.0f} ms" if outcome.ok \
        else f"FAILED ({outcome.error})"
    print(f"  [{done:2}/{total}] {outcome.job.name:<44} {status}")


def main() -> None:
    specs = workload_suite(12, seed=3)
    print(f"generated {len(specs)} designs across "
          f"{len({s.family for s in specs})} families:")
    for spec in specs:
        print(f"  {spec.label:<28} ({spec.family})")

    # the one-knob parallel sweep: compact specs in, summaries out,
    # one stage cache per worker process, results identical to serial
    runner = BatchRunner(shards=4, max_workers=4, job_timeout=120.0)
    print("\nsweeping (sharded map-reduce, streaming completions):")
    exploration = DesignSpaceExplorer(
        specs,
        architectures=[minimal_board()],
        partitioners=[GreedyPartitioner()],
        runner=runner,
    ).explore(progress=progress)

    stats = runner.shard_stats
    print(f"\nmap: {len(stats.shards)} shards over {stats.workers} workers "
          f"in {stats.map_seconds * 1e3:.0f} ms, merged worker caches: "
          f"{stats.cache}")

    # the same sweep on the in-process thread backend with a shared
    # cache ranks identically -- pick the backend by workload, not by
    # results (see the repro.flow.batch docstring for guidance)
    cache = StageCache(max_entries=2048)
    threaded = DesignSpaceExplorer(
        specs,
        architectures=[minimal_board()],
        partitioners=[GreedyPartitioner()],
        runner=BatchRunner(max_workers=4, stage_cache=cache,
                           job_timeout=120.0),
    ).explore()
    assert [p.label for p in threaded.ranked()] == \
        [p.label for p in exploration.ranked()], "backends must agree"

    print(f"\n{len(exploration.points)} implementations, "
          f"{len(exploration.pareto())} Pareto-optimal "
          f"(identical on the thread backend):\n")
    print(exploration.table())


if __name__ == "__main__":
    main()
