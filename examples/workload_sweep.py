#!/usr/bin/env python3
"""Streaming sweep of a generated workload suite.

Samples a deterministic population of synthetic designs
(:func:`repro.workloads.workload_suite`), fans each through the full
COOL flow with the streaming :class:`~repro.flow.batch.BatchRunner` --
progress is reported per completion, a shared
:class:`~repro.flow.pipeline.StageCache` reuses stage results across
jobs, and a per-job timeout guards against stragglers -- then prints
the per-graph Pareto-ranked implementations.
"""

from repro.flow import BatchRunner, DesignSpaceExplorer, StageCache
from repro.partition import GreedyPartitioner
from repro.platform import minimal_board
from repro.workloads import build_graphs, workload_suite


def main() -> None:
    specs = workload_suite(12, seed=3)
    graphs = build_graphs(specs)
    print(f"generated {len(graphs)} designs across "
          f"{len({s.family for s in specs})} families:")
    for spec, graph in zip(specs, graphs):
        stats = graph.stats()
        print(f"  {graph.name:<28} {stats['nodes']:>3} nodes "
              f"{stats['edges']:>3} edges depth {stats['depth']}")

    cache = StageCache(max_entries=2048)
    runner = BatchRunner(max_workers=4, stage_cache=cache, job_timeout=120.0)

    def progress(outcome, done, total):
        status = f"{outcome.seconds * 1e3:6.0f} ms" if outcome.ok \
            else f"FAILED ({outcome.error})"
        print(f"  [{done:2}/{total}] {outcome.job.name:<44} {status}")

    print("\nsweeping (streaming completions):")
    exploration = DesignSpaceExplorer(
        graphs,
        architectures=[minimal_board()],
        partitioners=[GreedyPartitioner()],
        runner=runner,
    ).explore(progress=progress)

    print(f"\n{len(exploration.points)} implementations, "
          f"{len(exploration.pareto())} Pareto-optimal "
          f"(cache: {cache.stats()}):\n")
    print(exploration.table())


if __name__ == "__main__":
    main()
