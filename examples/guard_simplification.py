#!/usr/bin/env python3
"""Symbolic guard simplification: before/after VHDL cascades.

Synthesizes the 4-band equalizer's communicating controllers, harvests
the reachability don't-cares from the composition product (every input
valuation each FSM can actually see, under every admissible
environment), and emits each controller FSM twice:

* the baseline priority cascade -- every transition spells its full
  conjunction of done-flag literals out;
* the symbolic cascade -- dead branches pruned, same-successor
  branches merged by guard disjunction, every guard re-covered by the
  ESPRESSO-lite extractor against the don't-cares.  A wait on a flag
  that is provably already latched becomes an unconditional arm; a
  join whose first producer always finishes earlier drops that
  literal.

The simplified controller is re-verified against the minimized STG
(exhaustive bisimulation tier), so the smaller cascades are *proved*
to implement the same schedule.
"""

from repro.apps import four_band_equalizer
from repro.codegen import fsm_to_vhdl, guard_literal_count
from repro.controllers import (harvest_care_sets,
                               simplify_controller_guards,
                               synthesize_system_controller,
                               verify_composition)
from repro.estimate import CostModel
from repro.graph import from_mapping
from repro.platform import minimal_board
from repro.schedule import list_schedule
from repro.stg import build_stg, minimize_stg


def cascade_of(text: str, state: str) -> list[str]:
    """The emitted case arm of one state (for side-by-side printing)."""
    lines = text.splitlines()
    start = next(i for i, line in enumerate(lines)
                 if line.strip() == f"when st_{state} =>")
    arm = [lines[start]]
    for line in lines[start + 1:]:
        stripped = line.strip()
        if stripped.startswith("when ") or stripped == "end case;":
            break
        arm.append(line)
    return arm


def main() -> None:
    graph = four_band_equalizer(words=8)
    arch = minimal_board()
    mapping = {n.name: ("fpga0" if n.name in ("band0", "gain0") else "dsp0")
               for n in graph.internal_nodes()}
    partition = from_mapping(graph, mapping, arch.fpga_names,
                             arch.processor_names)
    schedule = list_schedule(partition, CostModel(graph, arch))
    stg, _ = minimize_stg(build_stg(schedule))
    controller = synthesize_system_controller(stg)

    care = harvest_care_sets(controller)
    print("VHDL guard literals per controller FSM (baseline -> symbolic):")
    total_before = total_after = 0
    for fsm in controller.fsms:
        baseline = fsm_to_vhdl(fsm)
        symbolic = fsm_to_vhdl(fsm, simplify=True,
                               care_of=care.get(fsm.name))
        before = guard_literal_count(baseline)
        after = guard_literal_count(symbolic)
        total_before += before
        total_after += after
        print(f"  {fsm.name:<12} {before:>3} -> {after:>3}")
    saved = 1 - total_after / total_before
    print(f"  {'total':<12} {total_before:>3} -> {total_after:>3} "
          f"({saved:.0%} fewer)")

    # one concrete cascade, side by side: the dsp0 sequencer's second
    # wait on done_x is provably already latched -> unconditional arm
    seq = controller.sequencers["dsp0"]
    baseline = fsm_to_vhdl(seq)
    symbolic = fsm_to_vhdl(seq, simplify=True, care_of=care[seq.name])
    state = seq.states[3]  # the repeated wait
    print(f"\nbaseline cascade of seq_dsp0 state {state!r}:")
    print("\n".join(cascade_of(baseline, state)))
    print(f"\nsymbolic cascade of the same state (wait already proven):")
    print("\n".join(cascade_of(symbolic, state)))

    reduced, stats = simplify_controller_guards(controller, care_sets=care)
    check = verify_composition(stg, reduced, graph=graph)
    print(f"\ncontroller-level literal reduction: "
          f"{stats['literals_before']} -> {stats['literals_after']}")
    print(f"simplified controller vs minimized STG: "
          f"{'EQUIVALENT' if check.equivalent else 'MISMATCH'} "
          f"({check.tier} tier, {check.projections_checked} projections)")


if __name__ == "__main__":
    main()
