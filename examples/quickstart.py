#!/usr/bin/env python3
"""Quickstart: run the complete COOL flow on the 4-band equalizer.

Builds the equalizer task graph of paper Fig. 2, partitions it onto a
DSP56001 + XC4005 board with the MILP engine, co-synthesizes the
communicating controllers, generates VHDL/C/netlist, and co-simulates
the result against the reference interpreter.
"""

from repro.apps import four_band_equalizer
from repro.flow import CoolFlow
from repro.graph import execute
from repro.platform import minimal_board
from repro.schedule import gantt_chart


def main() -> None:
    graph = four_band_equalizer(words=16)
    stimuli = {"x": [100, 50, -25 & 0xFFFF, 75] + [0] * 12}

    flow = CoolFlow(minimal_board())
    result = flow.run(graph, stimuli=stimuli)

    print(result.report())
    print()
    print("static schedule:")
    print(gantt_chart(result.partition_result.schedule))
    print()

    reference = execute(graph, stimuli)
    simulated = result.sim_result.outputs["y"]
    print(f"reference output : {reference['y']}")
    print(f"co-simulated     : {simulated}")
    print(f"match            : {simulated == reference['y']}")

    print()
    print("generated files:")
    for name in sorted(result.vhdl_files):
        print(f"  {name:<24} {len(result.vhdl_files[name].splitlines())} lines")
    for name in sorted(result.c_files):
        print(f"  {name:<24} {len(result.c_files[name].splitlines())} lines")


if __name__ == "__main__":
    main()
