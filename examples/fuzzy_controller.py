#!/usr/bin/env python3
"""The paper's case study: the 31-node fuzzy controller on the COOL board.

Reproduces the Section 3 experiment: the fuzzy controller is specified
in the COOL language (~900 lines), elaborated, partitioned onto the
DSP56001 + 2x XC4005 + 64 kB SRAM board, fully co-synthesized and
co-simulated over a grid of the control surface.  The script reports
the design-time breakdown that the paper summarizes as "about 60
minutes, more than 90 % in hardware synthesis".
"""

from repro.apps.fuzzy import fuzzy_spec_text
from repro.flow import CoolFlow
from repro.graph import execute, to_signed
from repro.partition import GreedyPartitioner
from repro.platform import cool_board
from repro.spec import elaborate_text


def main() -> None:
    spec_text = fuzzy_spec_text(verbose=True)
    print(f"specification: {spec_text.count(chr(10))} lines of COOL code")

    graph = elaborate_text(spec_text)
    print(f"partitioning graph: {len(graph)} nodes "
          f"({len(graph.edges)} edges)")

    arch = cool_board()
    flow = CoolFlow(arch, partitioner=GreedyPartitioner())
    stimuli = {"err": [40], "derr": [-40 & 0xFFFF]}
    result = flow.run(graph, stimuli=stimuli)
    print()
    print(result.report())

    print()
    print("design-time breakdown (paper: <=60 min, >90% hw synthesis):")
    for stage, seconds in result.design_time.rows():
        print(f"  {stage:<28} {seconds:>9.1f} s")
    print(f"  {'total':<28} {result.design_time.total_s:>9.1f} s "
          f"({result.design_time.total_s / 60:.1f} min)")
    print(f"  hardware-synthesis share: "
          f"{result.design_time.hw_fraction:.1%}")

    print()
    print("control surface spot checks (co-sim vs reference):")
    for err, derr in ((-100, -100), (-50, 50), (0, 0), (80, 20)):
        st = {"err": [err & 0xFFFF], "derr": [derr & 0xFFFF]}
        sim = CoolFlow(arch, partitioner=GreedyPartitioner()).run(
            graph, stimuli=st).sim_result.outputs["u"][0]
        ref = execute(graph, st)["u"][0]
        print(f"  u({err:>4}, {derr:>4}) = {to_signed(sim, 16):>5} "
              f"(reference {to_signed(ref, 16):>5}, "
              f"match={sim == ref})")


if __name__ == "__main__":
    main()
