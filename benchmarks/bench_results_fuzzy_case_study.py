"""Paper Section 3: the fuzzy-controller case study.

The paper reports: ~900-line specification, 31-node partitioning graph,
target DSP56001 + 2x XC4005 (196 CLBs each) + 64 kB RAM; several
different HW/SW partitions implemented; full flow <= ~60 minutes with
hardware synthesis always > 90 % of the design time.

This benchmark implements several partitions of the same system, checks
every implementation functionally in co-simulation against the reference
interpreter over control-surface points, checks the board constraints,
and reproduces the design-time shape with the calibrated model.
"""

from repro.apps.fuzzy import fuzzy_spec_text
from repro.flow import CoolFlow
from repro.graph import execute
from repro.partition import (GaConfig, GeneticPartitioner,
                             GreedyPartitioner, MilpPartitioner)
from repro.platform import cool_board
from repro.spec import elaborate_text

SURFACE_POINTS = ((-100, -100), (-50, 50), (0, 0), (60, -30), (100, 100))


class _PureSoftware(GreedyPartitioner):
    name = "pure_software"

    def solve(self, problem):
        return {n.name: problem.arch.processor_names[0]
                for n in problem.graph.internal_nodes()}


PARTITIONERS = [
    ("pure software", _PureSoftware()),
    ("greedy", GreedyPartitioner()),
    ("milp", MilpPartitioner()),
    ("genetic", GeneticPartitioner(GaConfig(population=16, generations=10,
                                            seed=5))),
]


def case_study():
    spec = fuzzy_spec_text(verbose=True)
    graph = elaborate_text(spec)
    arch = cool_board()
    rows = []
    for label, partitioner in PARTITIONERS:
        flow = CoolFlow(arch, partitioner=partitioner)
        result = flow.run(graph)
        # verify a control-surface sample in co-simulation
        matches = 0
        for err, derr in SURFACE_POINTS:
            stimuli = {"err": [err & 0xFFFF], "derr": [derr & 0xFFFF]}
            sim = CoolFlow(arch, partitioner=partitioner).run(
                graph, stimuli=stimuli).sim_result
            if sim.outputs["u"] == execute(graph, stimuli)["u"]:
                matches += 1
        rows.append((label, result, matches))
    return spec, graph, arch, rows


def test_results_fuzzy_case_study(benchmark, run_once):
    spec, graph, arch, rows = run_once(benchmark, case_study)

    # -- the paper's system-size facts -------------------------------
    spec_lines = spec.count("\n")
    assert 800 <= spec_lines <= 1000          # "about 900 lines of code"
    assert len(graph) == 31                   # "31 nodes"
    assert arch.fpga("fpga0").clb_capacity == 196
    assert arch.memory.size_bytes == 64 * 1024

    print("\nSection 3 -- fuzzy controller case study")
    print(f"  specification: {spec_lines} lines; partitioning graph: "
          f"{len(graph)} nodes")
    header = (f"  {'partition':<16} {'hw':>3} {'sw':>3} "
              f"{'fpga0':>6} {'fpga1':>6} {'mem[w]':>7} {'makespan':>9} "
              f"{'design':>8} {'hw-syn':>7} {'surface':>8}")
    print(header)

    sw_makespan = None
    for label, result, matches in rows:
        # every implementation must be functionally correct ...
        assert matches == len(SURFACE_POINTS), label
        # ... and fit the paper's board
        for fpga in arch.fpgas:
            assert result.clbs_per_fpga[fpga.name] <= fpga.clb_capacity
        assert result.plan.memory_map.words_used <= arch.memory.words
        design = result.design_time
        if result.partition_result.partition.hw_nodes():
            # "not more than about 60 minutes" (we allow 75 for slack)
            assert design.total_s <= 75 * 60
            # "hardware synthesis ... more than 90% of the design time"
            assert design.hw_fraction > 0.90
        if label == "pure software":
            sw_makespan = result.makespan
        print(f"  {label:<16} "
              f"{len(result.partition_result.partition.hw_nodes()):>3} "
              f"{len(result.partition_result.partition.sw_nodes()):>3} "
              f"{result.clbs_per_fpga.get('fpga0', 0):>6} "
              f"{result.clbs_per_fpga.get('fpga1', 0):>6} "
              f"{result.plan.memory_map.words_used:>7} "
              f"{result.makespan:>9} "
              f"{design.total_s / 60:>7.1f}m "
              f"{design.hw_fraction:>6.1%} "
              f"{matches}/{len(SURFACE_POINTS):>3}")

    # hardware/software implementations must not be slower than pure SW
    best_mixed = min(r.makespan for label, r, _ in rows
                     if label != "pure software")
    assert best_mixed <= sw_makespan
