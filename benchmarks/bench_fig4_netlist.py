"""Paper Fig. 4: the generated netlist.

Regenerates the figure: system controller, data-path controllers, I/O
controller and bus arbiter wired to the processor, the FPGAs, the
memory card and the bus card; all controller VHDL passes the structural
checker (the role Synopsys played in 1998).
"""

from repro.apps import four_band_equalizer
from repro.codegen import check_vhdl, fsm_to_vhdl, generate_netlist, netlist_text
from repro.comm import refine_communication
from repro.controllers import synthesize_system_controller
from repro.estimate import CostModel
from repro.graph import from_mapping
from repro.platform import cool_board
from repro.schedule import list_schedule
from repro.stg import build_stg, minimize_stg


def generate():
    graph = four_band_equalizer(words=16)
    arch = cool_board()
    mapping = {n.name: "dsp0" for n in graph.internal_nodes()}
    mapping.update({"band0": "fpga0", "gain0": "fpga0",
                    "band1": "fpga1", "gain1": "fpga1"})
    partition = from_mapping(graph, mapping, arch.fpga_names,
                             arch.processor_names)
    schedule = list_schedule(partition, CostModel(graph, arch))
    stg, _ = minimize_stg(build_stg(schedule))
    controller = synthesize_system_controller(stg)
    plan = refine_communication(schedule, arch)
    netlist = generate_netlist(partition, arch, controller, plan)
    return graph, controller, plan, netlist


def test_fig4_generated_netlist(benchmark, run_once):
    graph, controller, plan, netlist = run_once(benchmark, generate)

    names = {c.name for c in netlist.components}
    # the pieces of the figure: controllers + units + memory + bus
    assert {"sysctl", "io_controller", "arbiter", "dsp0", "fpga0",
            "fpga1", "dpc_fpga0", "dpc_fpga1", "sram", "sysbus"} <= names
    assert netlist.validate() == []
    net_names = {n.name for n in netlist.nets}
    for node in graph.nodes:
        assert f"start_{node.name}" in net_names
        assert f"done_{node.name}" in net_names
    # hardware-to-hardware traffic on dedicated wires
    assert any(n.name.startswith("direct_") for n in netlist.nets) == \
        bool(plan.direct())

    # the VHDL of every synthesized piece is accepted
    for fsm in controller.fsms:
        assert check_vhdl(fsm_to_vhdl(fsm)) == []

    print("\nFig. 4 -- generated netlist:")
    print(netlist_text(netlist))
