"""Synthetic workload sweep: many generated designs through the batch layer.

Feeds a :func:`repro.workloads.workload_suite` population (>= 50 graphs
by default) through :class:`~repro.flow.batch.BatchRunner` /
:class:`~repro.flow.batch.DesignSpaceExplorer` and persists the numbers
to ``BENCH_workload_sweep.json`` at the repo root:

* ``backends`` -- wall-clock of the full sweep per backend, plus the
  determinism check: identical seed must produce *identical* ranked
  results on ``serial`` and ``thread``;
* ``shared_cache`` -- the same sweep twice on one shared
  :class:`~repro.flow.pipeline.StageCache`: the second pass is served
  stage results across jobs (the cheap way to re-rank a suite);
* ``process_isolation`` -- a deliberately unpicklable job under
  ``backend="process"`` must yield exactly one failed outcome instead
  of sinking the sweep.

Runs under pytest-benchmark (``pytest benchmarks/bench_workload_sweep.py``)
or standalone for CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_workload_sweep.py --graphs 8
"""

import argparse
import json
import sys
import threading
import time
from pathlib import Path

from repro.flow import BatchRunner, DesignSpaceExplorer, FlowJob, StageCache
from repro.partition import GreedyPartitioner
from repro.platform import minimal_board
from repro.workloads import build_graphs, workload_suite

RESULTS_PATH = Path(__file__).resolve().parents[1] / \
    "BENCH_workload_sweep.json"

DEFAULT_GRAPHS = 50
SUITE_SEED = 7


class _UnpicklablePartitioner(GreedyPartitioner):
    """Cannot cross a process boundary (holds a thread lock)."""

    def __init__(self):
        super().__init__()
        self._lock = threading.Lock()


def _ranked_view(exploration):
    """Comparable projection of a ranked exploration (no wall-clock)."""
    return [(p.label, p.graph, p.metrics, p.feasible)
            for p in exploration.ranked()]


def _explore(graphs, runner):
    explorer = DesignSpaceExplorer(graphs,
                                   architectures=[minimal_board()],
                                   partitioners=[GreedyPartitioner()],
                                   runner=runner)
    started = time.perf_counter()
    exploration = explorer.explore()
    return exploration, time.perf_counter() - started


def measure(n_graphs: int = DEFAULT_GRAPHS, seed: int = SUITE_SEED) -> dict:
    specs = workload_suite(n_graphs, seed=seed)
    graphs = build_graphs(specs)

    # 1. full sweep per backend + determinism across backends
    backends = {}
    views = {}
    for backend, workers in (("serial", None), ("thread", 4)):
        exploration, seconds = _explore(
            graphs, BatchRunner(max_workers=workers, backend=backend))
        views[backend] = _ranked_view(exploration)
        backends[backend] = {
            "seconds": round(seconds, 6),
            "jobs": len(exploration.outcomes),
            "ok": sum(o.ok for o in exploration.outcomes),
            "failed": sum(not o.ok for o in exploration.outcomes),
            "feasible": len(exploration.feasible_points()),
            "pareto": len(exploration.pareto()),
        }
    backends_agree = views["serial"] == views["thread"]

    # 2. shared-cache re-sweep: second pass over an unchanged suite.
    # snapshot() between the passes so the warm-pass hit rate is
    # reported per window (~1.0) instead of diluted by the cold pass
    cache = StageCache(max_entries=4096)
    runner = BatchRunner(backend="serial", stage_cache=cache)
    _, cold_s = _explore(graphs, runner)
    warm_window = cache.snapshot()
    warm_exploration, warm_s = _explore(graphs, runner)
    warm_stage_runs = sum(
        sum(o.result.stage_runs.values())
        for o in warm_exploration.outcomes if o.ok)

    # 3. process-backend isolation: one poisoned job in a tiny sweep
    # (graphs[-1] keeps this valid even for a --graphs 1 smoke run)
    arch = minimal_board()
    jobs = [FlowJob(graph=graphs[0], arch=arch,
                    partitioner=GreedyPartitioner(), label="good"),
            FlowJob(graph=graphs[-1], arch=arch,
                    partitioner=_UnpicklablePartitioner(), label="poison")]
    outcomes = BatchRunner(max_workers=2, backend="process").run(jobs)

    return {
        "suite": {
            "graphs": len(graphs),
            "seed": seed,
            "families": sorted({s.family for s in specs}),
            "total_nodes": sum(len(g) for g in graphs),
        },
        "backends": backends,
        "backends_agree": backends_agree,
        "shared_cache": {
            "cold_sweep_s": round(cold_s, 6),
            "warm_sweep_s": round(warm_s, 6),
            "warm_speedup": round(cold_s / warm_s, 2) if warm_s else None,
            "warm_stage_runs": warm_stage_runs,
            "cache": cache.stats(),
            "warm_cache": cache.stats(since=warm_window),
        },
        "process_isolation": {
            "jobs": len(outcomes),
            "ok_outcomes": sum(o.ok for o in outcomes),
            "failed_outcomes": sum(not o.ok for o in outcomes),
            "poison_error": next((o.error for o in outcomes if not o.ok),
                                 None),
        },
    }


def check(payload: dict) -> None:
    """The sweep-regression gate (shared by pytest and the CLI)."""
    assert payload["backends_agree"], \
        "identical seed must rank identically on serial and thread backends"
    for backend, stats in payload["backends"].items():
        assert stats["failed"] == 0, f"{backend} sweep had failures"
        assert stats["ok"] == payload["suite"]["graphs"]
    assert payload["shared_cache"]["warm_stage_runs"] == 0, \
        "re-sweeping an unchanged suite must be fully cache-served"
    assert payload["shared_cache"]["warm_sweep_s"] < \
        payload["shared_cache"]["cold_sweep_s"]
    warm_cache = payload["shared_cache"]["warm_cache"]
    assert warm_cache["misses"] == 0, "warm pass must never miss"
    assert warm_cache["hit_rate"] >= 0.99, \
        "warm-window hit rate must be ~1.0 (snapshot delta, not lifetime)"
    isolation = payload["process_isolation"]
    assert isolation["failed_outcomes"] == 1
    assert isolation["ok_outcomes"] == isolation["jobs"] - 1
    assert "pickle" in isolation["poison_error"].lower()
    assert "partitioner" in isolation["poison_error"], \
        "submission-time validation must name the offending field"


def report(payload: dict) -> str:
    lines = ["Workload sweep -- generated designs through the batch layer:"]
    suite = payload["suite"]
    lines.append(f"  suite               : {suite['graphs']} graphs "
                 f"({suite['total_nodes']} nodes, seed {suite['seed']})")
    for backend, stats in payload["backends"].items():
        lines.append(f"  sweep [{backend:>7}]     : {stats['seconds'] * 1e3:8.1f} ms "
                     f"({stats['ok']}/{stats['jobs']} ok, "
                     f"{stats['pareto']} Pareto)")
    cache = payload["shared_cache"]
    lines.append(f"  re-sweep cold/warm  : {cache['cold_sweep_s'] * 1e3:8.1f} / "
                 f"{cache['warm_sweep_s'] * 1e3:.1f} ms "
                 f"({cache['warm_speedup']}x, warm hit rate "
                 f"{cache['warm_cache']['hit_rate']})")
    isolation = payload["process_isolation"]
    lines.append(f"  process isolation   : {isolation['failed_outcomes']} "
                 f"poisoned job contained, sweep survived")
    return "\n".join(lines)


def test_workload_sweep_benchmark(benchmark, run_once):
    payload = run_once(benchmark, measure)
    assert payload["suite"]["graphs"] >= 50
    check(payload)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print("\n" + report(payload))
    print(f"  results -> {RESULTS_PATH.name}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Sweep generated workloads through the batch layer")
    parser.add_argument("--graphs", type=int, default=DEFAULT_GRAPHS,
                        help="suite size (default %(default)s)")
    parser.add_argument("--seed", type=int, default=SUITE_SEED,
                        help="suite seed (default %(default)s)")
    parser.add_argument("--no-write", action="store_true",
                        help="skip writing BENCH_workload_sweep.json "
                             "(CI smoke runs)")
    args = parser.parse_args(argv)
    payload = measure(args.graphs, args.seed)
    check(payload)
    if not args.no_write:
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(report(payload))
    if not args.no_write:
        print(f"  results -> {RESULTS_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
