"""Paper Fig. 2: coloured partitioning graph + static schedule of the
4-band equalizer.

Regenerates the figure's content: the equalizer graph is partitioned
(MILP engine), the colouring and the static schedule are printed, and
the shape claims are asserted -- a genuinely mixed partition whose
schedule respects dependencies and beats the pure-software baseline.
"""

from repro.apps import four_band_equalizer
from repro.graph import partition_to_dot
from repro.partition import (MilpPartitioner, PartitioningProblem,
                             evaluate_mapping)
from repro.platform import minimal_board
from repro.schedule import gantt_chart, validate_schedule


def partition_equalizer():
    graph = four_band_equalizer(words=16)
    problem = PartitioningProblem(graph, minimal_board())
    result = MilpPartitioner().partition(problem)
    sw = evaluate_mapping(problem, {n.name: "dsp0"
                                    for n in graph.internal_nodes()})
    return graph, problem, result, sw[1].makespan


def test_fig2_equalizer_partitioning(benchmark, run_once):
    graph, problem, result, sw_makespan = run_once(
        benchmark, partition_equalizer)

    # coloured graph: both hardware and software used
    assert result.partition.hw_nodes()
    assert result.partition.sw_nodes()
    # static schedule valid and better than pure software
    assert validate_schedule(result.schedule) == []
    assert result.makespan <= sw_makespan
    assert result.feasibility.feasible

    print("\nFig. 2 -- coloured partitioning graph (4-band equalizer):")
    for node in graph.nodes:
        print(f"  {node.name:<8} [{node.kind:<6}] -> "
              f"{result.partition.resource_of(node.name)}")
    print(f"\n  cut edges: {len(result.partition.cut_edges())}, "
          f"makespan {result.makespan} ticks "
          f"(pure software: {sw_makespan})")
    print("\nstatic schedule:")
    print(gantt_chart(result.schedule))
    # the DOT artefact of the figure
    dot = partition_to_dot(result.partition)
    assert "fillcolor" in dot
